#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally and offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test (default threads) =="
cargo test --workspace -q

echo "== cargo test (METADPA_THREADS=1, exact serial path) =="
# The pool contract: METADPA_THREADS=1 is the exact serial code path and
# every other thread count is bit-identical to it. Running the whole suite
# under both settings pins that contract in CI, not just in the dedicated
# determinism tests.
METADPA_THREADS=1 cargo test --workspace -q

echo "== cargo test (METADPA_SIMD=off, forced-scalar kernels) =="
# The SIMD dispatch contract: METADPA_SIMD=off resolves every matmul to
# the scalar kernel family — the byte-for-byte pre-SIMD code path — and
# the exact SIMD kernels the default dispatch picks on AVX2 hosts are
# bit-identical to it. Running the whole suite again with the env switch
# set proves the fallback is complete (no test depends on SIMD being on)
# and drives the differential suites' scalar side through the real
# process-global override, not just the thread-local test hook.
METADPA_SIMD=off cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== microbench smoke + perf gate =="
# Smoke-sized sweep (3 iters/case) feeding the BENCH regression gate
# against the checked-in baseline. On hardware that doesn't match the
# baseline's fingerprint the gate downgrades to warnings automatically;
# set METADPA_BENCH_STRICT=1 to fail regardless. The smoke tolerance is
# loose (50%) because 3-iteration runs on shared CI hardware are noisy —
# it still catches order-of-magnitude regressions; tracked perf work
# should use the full sweep with --tolerance 0.15 on pinned hardware.
cargo bench -p metadpa-bench --bench blocks -- --smoke --bench-out "$PWD/BENCH_ci.json"
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check BENCH_ci.json --baseline benchmarks/BENCH_baseline.json --tolerance 0.5

echo "== parallel kernels bench + perf gate =="
# Serial vs parallel matmul on the same inputs. The >= 2x speedup floor is
# enforced by the bench itself on 4+ core hosts (warn-only below that, like
# the fingerprint downgrade in obs-report check); the BENCH record is gated
# against the checked-in baseline either way.
cargo bench -p metadpa-bench --bench parallel -- --smoke --bench-out "$PWD/BENCH_parallel_ci.json"
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check BENCH_parallel_ci.json --baseline benchmarks/BENCH_parallel_baseline.json --tolerance 0.5

echo "== blocked kernels bench + SIMD/alloc gates =="
# Blocked-vs-naive matmul throughput, the SIMD and f32-serving rows, and
# the training epoch's allocation budget. The bench enforces its own
# floors: >= 2x blocked throughput on 4+ core hosts (warn-only below),
# >= 2x exact-SIMD matmul and >= 3x fused f32 catalogue ranking on hosts
# with AVX2+FMA (warn-only elsewhere — the rows compare dispatch paths
# that don't exist without the features), and >= 5x fewer allocations per
# epoch through the workspace API everywhere. The BENCH record is
# additionally gated against the checked-in baseline.
cargo bench -p metadpa-bench --bench kernels -- --smoke --bench-out "$PWD/BENCH_kernel_ci.json"
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check BENCH_kernel_ci.json --baseline benchmarks/BENCH_kernel_baseline.json --tolerance 0.5

echo "== sparse bench (streaming generator + CSR input path) + perf gate =="
# A full chunked-generation pass plus the CSR CVAE-input feed. The bench
# enforces its own memory floor everywhere: the streaming pass's peak
# live-bytes watermark must stay under 256 MB (the smoke shape's dense
# interaction matrix alone would be 1.6 GB), proving nothing of shape
# n_users x n_items is ever materialized. Wall times are gated against the
# checked-in baseline with the usual fingerprint downgrade.
cargo bench -p metadpa-bench --bench sparse -- --smoke --bench-out "$PWD/BENCH_sparse_ci.json"
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check BENCH_sparse_ci.json --baseline benchmarks/BENCH_sparse_baseline.json --tolerance 0.5

echo "== serve smoke (export -> load -> every route -> shutdown) =="
# Exercise the full serving path end to end: fit + export a tiny artifact,
# reload it, walk every HTTP route (health, warm/cold recommend, adapt,
# the 422 path, metrics) over loopback, then shut down cleanly.
cargo run --release -q -p metadpa-serve --bin metadpa-serve -- \
  export --out serve_smoke.ckpt --seed 7
cargo run --release -q -p metadpa-serve --bin metadpa-serve -- \
  smoke --artifact serve_smoke.ckpt

echo "== serve loadgen + perf gate =="
# Short loopback load burst; must clear the 1k req/s floor and stay within
# the (loose, shared-hardware) tolerance of the checked-in baseline. Like
# the microbench gate above, a host-fingerprint mismatch downgrades the
# comparison to warnings unless METADPA_BENCH_STRICT=1.
cargo run --release -q -p metadpa-bench --bin serve-loadgen -- \
  --duration-ms 2000 --min-rps 1000 --bench-out "$PWD/BENCH_serve_ci.json"
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check BENCH_serve_ci.json --baseline benchmarks/BENCH_serve_baseline.json --tolerance 0.5

echo "== traced serve smoke + trace integrity gate =="
# Re-run the serve smoke with request tracing on, then verify the trace:
# the smoke drives exactly 7 loopback requests, and check-trace demands
# one request record per request, unique request IDs, a parse-clean
# stream, and windowed p99 fields in the closing metrics snapshot.
cargo run --release -q -p metadpa-serve --bin metadpa-serve -- \
  smoke --artifact serve_smoke.ckpt --trace-out trace_smoke.jsonl
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check-trace trace_smoke.jsonl --expect-requests 7

echo "== traced loadgen + trace/BENCH cross-check =="
# A short traced load burst, cross-checked against its own BENCH record:
# every recommend the loadgen counted must appear in the trace exactly
# once. (No --min-rps: tracing adds per-request I/O, and this stage gates
# integrity, not throughput — the untraced stage above gates perf.)
cargo run --release -q -p metadpa-bench --bin serve-loadgen -- \
  --duration-ms 1000 --trace-out trace_load.jsonl --bench-out "$PWD/BENCH_trace_ci.json"
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check-trace trace_load.jsonl --expect-bench BENCH_trace_ci.json

echo "== feedback smoke + replay gate =="
# The streaming-feedback loop end to end: the loadgen mixes seeded
# POST /v1/feedback events into its traffic, the background adapter tails
# the log and graduates users live (the loadgen itself fails if the log
# does not drain or any graduation errors), then check-feedback replays
# the recorded log through the graduation state machine and demands the
# live adapter's trace match that oracle exactly — same run-ledger key,
# contiguous sequence, identical graduation/refresh counts.
cargo run --release -q -p metadpa-bench --bin serve-loadgen -- \
  --duration-ms 1200 --feedback-frac 0.3 --feedback-threshold 3 \
  --feedback-log feedback_ci.jsonl --trace-out trace_feedback.jsonl
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check-feedback feedback_ci.jsonl --threshold 3 --trace trace_feedback.jsonl

echo "== traced training smoke + train gate + lineage =="
# Fit + export with training telemetry on, then gate the training trace:
# check-train demands one run-ledger ID on every record, contiguous
# per-phase epoch sequences, zero sentinel anomalies, a clean (untruncated)
# stream, and an overall loss improvement. lineage then joins the training
# trace against the exported checkpoint's stamped run ID — the train →
# export chain must agree on one key, end to end.
cargo run --release -q -p metadpa-serve --bin metadpa-serve -- \
  export --out train_smoke.ckpt --seed 7 --train-trace-out train_trace.jsonl
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  check-train train_trace.jsonl
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  lineage train_trace.jsonl --ckpt train_smoke.ckpt
cargo run --release -q -p metadpa-bench --bin obs-report -- \
  train-tail train_trace.jsonl --once >/dev/null

echo "== obs stream smoke (record -> report -> diff) =="
cargo run --release -q -p metadpa-bench --bin exp_tables_1_2 -- \
  --fast --obs-out obs_smoke.jsonl >/dev/null
cargo run --release -q -p metadpa-bench --bin obs-report -- report obs_smoke.jsonl
cargo run --release -q -p metadpa-bench --bin obs-report -- diff obs_smoke.jsonl obs_smoke.jsonl

echo "CI OK"

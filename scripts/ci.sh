#!/usr/bin/env bash
# Tier-1 verification: everything CI runs, runnable locally and offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"

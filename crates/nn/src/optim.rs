//! First-order optimizers.
//!
//! Optimizers drive any [`Module`] through [`Module::visit_params`]: state
//! (e.g. Adam moments) is keyed by visit order, which is stable for a given
//! model structure. The usual cycle is
//!
//! ```text
//! zero_grad(model); ...forward/backward...; optimizer.step(model);
//! ```

use metadpa_tensor::Matrix;

use crate::module::Module;
use crate::param::Param;

/// A first-order gradient optimizer.
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients of `module`.
    fn step(&mut self, module: &mut dyn Module);
}

/// Global L2 norm over every parameter gradient of `module`, in visit
/// order — the grad-norm tap shared by the optimizers' gauges and the
/// training-telemetry `train_epoch` records. Read-only: never touches
/// parameter values, so calling it cannot perturb training.
pub fn global_grad_norm(module: &mut dyn Module) -> f64 {
    let mut sq_norm = 0.0f64;
    module.visit_params(&mut |p| {
        let n = p.grad.frobenius_norm() as f64;
        sq_norm += n * n;
    });
    sq_norm.sqrt()
}

/// Plain stochastic gradient descent with optional L2 weight decay.
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and no weight decay.
    ///
    /// # Panics
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        Self::with_weight_decay(lr, 0.0)
    }

    /// Creates SGD with learning rate and L2 weight decay.
    ///
    /// # Panics
    /// Panics if `lr` is not positive or `weight_decay` is negative.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive, got {lr}");
        assert!(weight_decay >= 0.0, "Sgd: weight decay must be non-negative");
        Self { lr, weight_decay }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (used by schedules in the harness).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "Sgd::set_lr: learning rate must be positive");
        self.lr = lr;
    }

    /// Applies an SGD step to a single parameter (used by [`Embedding`]-style
    /// components that live outside the `Module` tree).
    ///
    /// [`Embedding`]: crate::Embedding
    pub fn step_param(&self, p: &mut Param) {
        if self.weight_decay > 0.0 {
            // Fused decay: v += (v * decay) * (-lr) in place, bit-identical
            // to the old scale-then-add_scaled pair without the temporary.
            let (decay, lr) = (self.weight_decay, self.lr);
            p.value.map_inplace(|v| v + (v * decay) * (-lr));
        }
        let lr = self.lr;
        p.value.add_scaled_inplace(&p.grad, -lr);
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, module: &mut dyn Module) {
        metadpa_obs::counter_add!("nn.optim.sgd.steps", 1u64);
        if metadpa_obs::enabled() {
            metadpa_obs::gauge_set!("nn.optim.sgd.grad_norm", global_grad_norm(module));
        }
        module.visit_params(&mut |p| self.step_param(p));
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// First/second moment estimates, keyed by parameter visit order.
    moments: Vec<(Matrix, Matrix)>,
    /// Global step counter (shared across parameters).
    t: u32,
}

impl Adam {
    /// Creates Adam with the conventional β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Panics
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive, got {lr}");
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, moments: Vec::new(), t: 0 }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Resets moment estimates (e.g. when reusing an optimizer on a freshly
    /// restored parameter snapshot).
    pub fn reset_state(&mut self) {
        self.moments.clear();
        self.t = 0;
    }

    /// Advances and returns the global step counter. Callers driving
    /// parameters manually via [`Adam::step_param_slot`] call this once per
    /// optimization step and pass the returned value to every slot update.
    pub fn next_step(&mut self) -> u32 {
        self.t += 1;
        self.t
    }

    /// Applies an Adam update to a single parameter using the moment slot
    /// `slot` (callers outside the `Module` tree manage their own slots).
    pub fn step_param_slot(&mut self, p: &mut Param, slot: usize, t: u32) {
        while self.moments.len() <= slot {
            self.moments.push((Matrix::zeros(0, 0), Matrix::zeros(0, 0)));
        }
        let (m, v) = &mut self.moments[slot];
        if m.shape() != p.value.shape() {
            *m = Matrix::zeros(p.value.rows(), p.value.cols());
            *v = Matrix::zeros(p.value.rows(), p.value.cols());
        }
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let lr = self.lr;
        let eps = self.eps;
        for i in 0..p.value.len() {
            let g = p.grad.as_slice()[i];
            let mi = b1 * m.as_slice()[i] + (1.0 - b1) * g;
            let vi = b2 * v.as_slice()[i] + (1.0 - b2) * g * g;
            m.as_mut_slice()[i] = mi;
            v.as_mut_slice()[i] = vi;
            let m_hat = mi / bias1;
            let v_hat = vi / bias2;
            p.value.as_mut_slice()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, module: &mut dyn Module) {
        metadpa_obs::counter_add!("nn.optim.adam.steps", 1u64);
        if metadpa_obs::enabled() {
            metadpa_obs::gauge_set!("nn.optim.adam.grad_norm", global_grad_norm(module));
        }
        self.t += 1;
        let t = self.t;
        // Collect updates by visit order. visit_params borrows self mutably
        // inside the closure, so stage the slot counter locally.
        let mut slot = 0usize;
        // Split borrow: temporarily move the moments vector out.
        let mut this = std::mem::replace(
            self,
            Adam {
                lr: self.lr,
                beta1: self.beta1,
                beta2: self.beta2,
                eps: self.eps,
                moments: Vec::new(),
                t,
            },
        );
        module.visit_params(&mut |p| {
            this.step_param_slot(p, slot, t);
            slot += 1;
        });
        *self = this;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::loss::mse;
    use crate::module::{zero_grad, Mode};
    use metadpa_tensor::SeededRng;

    /// Trains y = 2x + 1 with a single Dense(1,1); both optimizers must
    /// drive the loss close to zero.
    fn fit_line(optimizer: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut rng = SeededRng::new(10);
        let mut layer = Dense::new(1, 1, &mut rng);
        let x = Matrix::from_vec(8, 1, (0..8).map(|v| v as f32 / 4.0).collect());
        let y = x.map(|v| 2.0 * v + 1.0);
        let mut last = f32::INFINITY;
        for _ in 0..steps {
            zero_grad(&mut layer);
            let pred = layer.forward(&x, Mode::Train);
            let (loss, grad) = mse(&pred, &y);
            let _ = layer.backward(&grad);
            optimizer.step(&mut layer);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_fits_a_line() {
        let mut opt = Sgd::new(0.3);
        let loss = fit_line(&mut opt, 500);
        assert!(loss < 1e-4, "final loss {loss}");
    }

    #[test]
    fn adam_fits_a_line() {
        let mut opt = Adam::new(0.05);
        let loss = fit_line(&mut opt, 500);
        assert!(loss < 1e-4, "final loss {loss}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut p = Param::new(Matrix::filled(1, 1, 1.0));
        // Zero gradient; only decay acts.
        let opt = Sgd::with_weight_decay(0.1, 0.5);
        opt.step_param(&mut p);
        assert!(p.value.get(0, 0) < 1.0);
        assert!((p.value.get(0, 0) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With a constant gradient, Adam's bias-corrected first step is
        // exactly -lr * sign(g).
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.fill(3.0);
        let mut opt = Adam::new(0.01);
        opt.step_param_slot(&mut p, 0, 1);
        assert!((p.value.get(0, 0) + 0.01).abs() < 1e-5, "got {}", p.value.get(0, 0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn adam_reset_clears_moments() {
        let mut opt = Adam::new(0.01);
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.fill(1.0);
        opt.step_param_slot(&mut p, 0, 1);
        assert!(!opt.moments.is_empty());
        opt.reset_state();
        assert!(opt.moments.is_empty());
        assert_eq!(opt.t, 0);
    }
}

//! The Gaussian KL term of the Dual-CVAE (paper Eq. 3).
//!
//! The paper replaces the standard-normal prior of a vanilla VAE with a
//! *content-conditioned anchor*: the KL divergence is taken between the
//! approximate posterior `N(μ, σ²)` and `N(z^x, I)`, where `z^x` is the
//! output of the dense content encoder `E^x`. This is what lets the trained
//! decoder reconstruct ratings *from content alone* at augmentation time
//! (§IV-B): the latent distribution is tied to the content embedding.
//!
//! Per latent dimension `l` the term is
//! `0.5 * (σ_l² + (μ_l - z^x_l)² - log σ_l² - 1)`,
//! parameterized by `logvar = log σ²` for unconstrained optimization.

use metadpa_tensor::Matrix;

/// Result of evaluating the anchored Gaussian KL term.
pub struct KlResult {
    /// Mean KL over the batch (summed over latent dimensions, averaged over
    /// rows).
    pub loss: f32,
    /// Gradient w.r.t. `mu`.
    pub grad_mu: Matrix,
    /// Gradient w.r.t. `logvar`.
    pub grad_logvar: Matrix,
    /// Gradient w.r.t. the content anchor `z^x`.
    pub grad_anchor: Matrix,
}

/// Evaluates `KL(N(mu, exp(logvar)) || N(anchor, I))`, batch-averaged.
///
/// All three inputs are `batch x latent_dim`. Gradients:
/// * `d/dμ = (μ - a) / B`
/// * `d/dlogvar = 0.5 (e^logvar - 1) / B`
/// * `d/da = (a - μ) / B`
///
/// # Panics
/// Panics if shapes differ or the batch is empty.
pub fn gaussian_kl_to_anchor(mu: &Matrix, logvar: &Matrix, anchor: &Matrix) -> KlResult {
    assert_eq!(mu.shape(), logvar.shape(), "gaussian_kl: mu/logvar shape mismatch");
    assert_eq!(mu.shape(), anchor.shape(), "gaussian_kl: mu/anchor shape mismatch");
    assert!(mu.rows() > 0, "gaussian_kl: empty batch");
    let b = mu.rows() as f32;
    let mut total = 0.0f64;
    let mut grad_mu = Matrix::zeros(mu.rows(), mu.cols());
    let mut grad_logvar = Matrix::zeros(mu.rows(), mu.cols());
    let mut grad_anchor = Matrix::zeros(mu.rows(), mu.cols());
    for i in 0..mu.len() {
        let m = mu.as_slice()[i];
        let lv = logvar.as_slice()[i].clamp(-20.0, 20.0);
        let a = anchor.as_slice()[i];
        let var = lv.exp();
        let diff = m - a;
        total += (0.5 * (var + diff * diff - lv - 1.0)) as f64;
        grad_mu.as_mut_slice()[i] = diff / b;
        grad_logvar.as_mut_slice()[i] = 0.5 * (var - 1.0) / b;
        grad_anchor.as_mut_slice()[i] = -diff / b;
    }
    KlResult { loss: (total / b as f64) as f32, grad_mu, grad_logvar, grad_anchor }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_tensor::SeededRng;

    #[test]
    fn kl_is_zero_when_posterior_equals_anchor_prior() {
        // mu == anchor, logvar == 0 (unit variance) -> KL = 0.
        let mu = Matrix::from_vec(2, 3, vec![0.5; 6]);
        let logvar = Matrix::zeros(2, 3);
        let anchor = mu.clone();
        let r = gaussian_kl_to_anchor(&mu, &logvar, &anchor);
        assert!(r.loss.abs() < 1e-6);
        assert!(r.grad_mu.as_slice().iter().all(|g| g.abs() < 1e-6));
        assert!(r.grad_logvar.as_slice().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn kl_is_positive_otherwise() {
        let mu = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let logvar = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let anchor = Matrix::zeros(1, 2);
        let r = gaussian_kl_to_anchor(&mu, &logvar, &anchor);
        assert!(r.loss > 0.0);
    }

    #[test]
    fn kl_known_value() {
        // Single dim: mu=1, anchor=0, var=1 -> 0.5 * (1 + 1 - 0 - 1) = 0.5.
        let r = gaussian_kl_to_anchor(
            &Matrix::from_vec(1, 1, vec![1.0]),
            &Matrix::zeros(1, 1),
            &Matrix::zeros(1, 1),
        );
        assert!((r.loss - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(7);
        let mu = rng.normal_matrix(2, 3);
        let logvar = rng.normal_matrix(2, 3).scale(0.3);
        let anchor = rng.normal_matrix(2, 3);
        let r = gaussian_kl_to_anchor(&mu, &logvar, &anchor);
        let eps = 1e-3;
        let check = |analytic: &Matrix, which: usize| {
            for i in 0..analytic.len() {
                let perturb = |delta: f32| {
                    let mut m = mu.clone();
                    let mut lv = logvar.clone();
                    let mut a = anchor.clone();
                    match which {
                        0 => m.as_mut_slice()[i] += delta,
                        1 => lv.as_mut_slice()[i] += delta,
                        _ => a.as_mut_slice()[i] += delta,
                    }
                    gaussian_kl_to_anchor(&m, &lv, &a).loss
                };
                let numeric = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                let got = analytic.as_slice()[i];
                assert!(
                    (numeric - got).abs() < 2e-3,
                    "which={which} i={i}: numeric {numeric} vs analytic {got}"
                );
            }
        };
        check(&r.grad_mu, 0);
        check(&r.grad_logvar, 1);
        check(&r.grad_anchor, 2);
    }

    #[test]
    fn extreme_logvar_is_clamped_to_finite_loss() {
        let r = gaussian_kl_to_anchor(
            &Matrix::zeros(1, 1),
            &Matrix::from_vec(1, 1, vec![1e6]),
            &Matrix::zeros(1, 1),
        );
        assert!(r.loss.is_finite());
    }
}

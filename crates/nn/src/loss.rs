//! Scalar loss functions with analytic gradients.
//!
//! Losses are free functions returning `(loss, grad)` pairs rather than
//! modules: the gradient of a scalar loss with respect to its input is the
//! natural seed for [`crate::Module::backward`].
//!
//! The paper uses binary cross-entropy for all implicit-feedback objectives
//! (reconstruction in Eq. 2, cross-domain reconstruction in Eq. 5, the
//! preference model in §IV-C) and mean squared error for the latent
//! alignment term of Eq. 4.

use metadpa_tensor::Matrix;

use crate::activation::sigmoid;

/// Binary cross-entropy *with logits*, averaged over all elements.
///
/// Computes `mean(max(z,0) - z*y + ln(1 + e^-|z|))`, the numerically stable
/// form, and returns the gradient w.r.t. the logits, `(σ(z) - y) / N`.
///
/// Targets may be soft labels in `[0, 1]` — the augmented "diverse ratings"
/// of §IV-B are continuous values in that interval.
///
/// # Panics
/// Panics if shapes differ or the input is empty.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    let mut grad = Matrix::default();
    let loss = bce_with_logits_into(logits, targets, &mut grad);
    (loss, grad)
}

/// [`bce_with_logits`] writing the gradient into a caller-owned buffer —
/// bit-identical, zero allocations in steady state.
///
/// # Panics
/// Panics if shapes differ or the input is empty.
pub fn bce_with_logits_into(logits: &Matrix, targets: &Matrix, grad: &mut Matrix) -> f32 {
    assert_eq!(
        logits.shape(),
        targets.shape(),
        "bce_with_logits: shape mismatch {:?} vs {:?}",
        logits.shape(),
        targets.shape()
    );
    assert!(!logits.is_empty(), "bce_with_logits: empty input");
    let n = logits.len() as f32;
    let total: f64 = logits
        .as_slice()
        .iter()
        .zip(targets.as_slice().iter())
        .map(|(&z, &y)| (z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln()) as f64)
        .sum();
    logits.zip_map_into(targets, |z, y| (sigmoid(z) - y) / n, grad);
    (total / n as f64) as f32
}

/// Weighted binary cross-entropy with logits.
///
/// Each element contributes `w_ij * bce_ij`; the average is over the *sum of
/// weights*. Used when positive interactions should count more than sampled
/// negatives.
///
/// # Panics
/// Panics if shapes differ or all weights are zero.
pub fn weighted_bce_with_logits(
    logits: &Matrix,
    targets: &Matrix,
    weights: &Matrix,
) -> (f32, Matrix) {
    assert_eq!(logits.shape(), targets.shape(), "weighted_bce: logits/targets shape mismatch");
    assert_eq!(logits.shape(), weights.shape(), "weighted_bce: logits/weights shape mismatch");
    let total_w: f32 = weights.sum();
    assert!(total_w > 0.0, "weighted_bce_with_logits: weights must not all be zero");
    let mut total = 0.0f64;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for i in 0..logits.len() {
        let z = logits.as_slice()[i];
        let y = targets.as_slice()[i];
        let w = weights.as_slice()[i];
        let stable = z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        total += (w * stable) as f64;
        grad.as_mut_slice()[i] = w * (sigmoid(z) - y) / total_w;
    }
    ((total / total_w as f64) as f32, grad)
}

/// Mean squared error, averaged over all elements; gradient w.r.t.
/// `predictions` is `2 (p - t) / N`.
///
/// # Panics
/// Panics if shapes differ or the input is empty.
pub fn mse(predictions: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        predictions.shape(),
        targets.shape(),
        "mse: shape mismatch {:?} vs {:?}",
        predictions.shape(),
        targets.shape()
    );
    assert!(!predictions.is_empty(), "mse: empty input");
    let n = predictions.len() as f32;
    let total: f64 = predictions
        .as_slice()
        .iter()
        .zip(targets.as_slice().iter())
        .map(|(&p, &t)| ((p - t) * (p - t)) as f64)
        .sum();
    let grad = predictions.zip_map(targets, |p, t| 2.0 * (p - t) / n);
    ((total / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_perfect_prediction_is_near_zero() {
        let logits = Matrix::from_vec(1, 2, vec![20.0, -20.0]);
        let targets = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (loss, _) = bce_with_logits(&logits, &targets);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn bce_at_zero_logit_is_ln2() {
        let logits = Matrix::zeros(1, 1);
        let targets = Matrix::from_vec(1, 1, vec![1.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((grad.get(0, 0) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(1, 3, vec![0.3, -1.1, 0.8]);
        let targets = Matrix::from_vec(1, 3, vec![1.0, 0.0, 0.4]);
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let (lp, _) = bce_with_logits(&plus, &targets);
            let (lm, _) = bce_with_logits(&minus, &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[i]).abs() < 1e-3,
                "index {i}: numeric {numeric} vs analytic {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let logits = Matrix::from_vec(1, 2, vec![500.0, -500.0]);
        let targets = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss.is_finite());
        assert!(grad.all_finite());
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let t = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = mse(&p, &t);
        // ((1)^2 + (2)^2) / 2 = 2.5
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad, Matrix::from_vec(1, 2, vec![1.0, 2.0]));
    }

    #[test]
    fn weighted_bce_zero_weight_entries_do_not_contribute() {
        let logits = Matrix::from_vec(1, 2, vec![5.0, -3.0]);
        let targets = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let weights = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss_w, grad_w) = weighted_bce_with_logits(&logits, &targets, &weights);
        // Only the second element contributes; compare with plain BCE on it.
        let (loss_ref, _) = bce_with_logits(
            &Matrix::from_vec(1, 1, vec![-3.0]),
            &Matrix::from_vec(1, 1, vec![0.0]),
        );
        assert!((loss_w - loss_ref).abs() < 1e-5);
        assert_eq!(grad_w.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bce_rejects_shape_mismatch() {
        let _ = bce_with_logits(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }

    #[test]
    fn bce_soft_labels_minimum_at_target() {
        // For a soft target y, BCE over logits is minimized when sigmoid(z)=y.
        let y = 0.3f32;
        let z_opt = (y / (1.0 - y)).ln();
        let targets = Matrix::from_vec(1, 1, vec![y]);
        let (_, grad) = bce_with_logits(&Matrix::from_vec(1, 1, vec![z_opt]), &targets);
        assert!(grad.get(0, 0).abs() < 1e-6);
    }
}

//! Inverted dropout.

use metadpa_tensor::{Matrix, SeededRng};

use crate::module::{Mode, Module};
use crate::param::Param;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)` so the expected
/// activation is unchanged; during evaluation the layer is the identity.
///
/// The layer owns its RNG (forked from the model seed) so dropout masks are
/// reproducible.
pub struct Dropout {
    p: f32,
    rng: SeededRng,
    cached_mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, rng: &mut SeededRng) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout::new: p={p} must be in [0, 1)");
        Self { p, rng: rng.fork(0xD20), cached_mask: None }
    }
}

impl Module for Dropout {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        if mode == Mode::Eval || self.p == 0.0 {
            self.cached_mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Matrix::from_fn(input.rows(), input.cols(), |_, _| {
            if self.rng.bernoulli(keep) {
                scale
            } else {
                0.0
            }
        });
        let out = input.hadamard(&mask);
        self.cached_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match &self.cached_mask {
            Some(mask) => grad_output.hadamard(mask),
            None => grad_output.clone(),
        }
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dropout::new(0.5, &mut rng);
        let x = Matrix::filled(4, 4, 2.0);
        assert_eq!(layer.forward(&x, Mode::Eval), x);
        // Backward after eval forward passes gradients through unchanged.
        let g = Matrix::filled(4, 4, 1.0);
        assert_eq!(layer.backward(&g), g);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dropout::new(0.3, &mut rng);
        let x = Matrix::filled(200, 50, 1.0);
        let y = layer.forward(&x, Mode::Train);
        // Mean should stay near 1 thanks to inverted scaling.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {} drifted", y.mean());
        // Roughly 30% of entries zeroed.
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count() as f32;
        let frac = zeros / y.len() as f32;
        assert!((frac - 0.3).abs() < 0.03, "zero fraction {frac}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = SeededRng::new(3);
        let mut layer = Dropout::new(0.5, &mut rng);
        let x = Matrix::filled(10, 10, 1.0);
        let y = layer.forward(&x, Mode::Train);
        let dx = layer.backward(&Matrix::filled(10, 10, 1.0));
        // Gradient must be zero exactly where the output was zeroed.
        for (yv, dv) in y.as_slice().iter().zip(dx.as_slice().iter()) {
            assert_eq!(*yv == 0.0, *dv == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn rejects_p_of_one() {
        let mut rng = SeededRng::new(4);
        let _ = Dropout::new(1.0, &mut rng);
    }

    #[test]
    fn zero_p_is_identity_in_train() {
        let mut rng = SeededRng::new(5);
        let mut layer = Dropout::new(0.0, &mut rng);
        let x = Matrix::filled(3, 3, 1.5);
        assert_eq!(layer.forward(&x, Mode::Train), x);
    }
}

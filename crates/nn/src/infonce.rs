//! InfoNCE mutual-information estimator (van den Oord et al., 2018).
//!
//! Both paper constraints are built on this estimator:
//!
//! * **MDI** (Multi-domain InfoMax, Eq. 6): *maximize* `I(z_s, z_t)` between
//!   the latent representations of the source and target CVAEs, i.e. add
//!   `β₁ · L_InfoNCE(z_s, z_t)` to the objective (InfoNCE is a lower bound
//!   on MI, so minimizing the NCE loss maximizes the bound).
//! * **ME** (Mutually-Exclusive, Eq. 7): *minimize* `I(r̂_s, r̂_t)` between
//!   the two decoders' outputs to push generated ratings apart, i.e. add
//!   `-β₂ · L_InfoNCE(r̂_s, r̂_t)` — the [`InfoNce::forward_negated`] form.
//!
//! Given two aligned batches `A, B ∈ R^{n x d}` (row *i* of each side comes
//! from the same shared user), the loss treats `(A_i, B_i)` as the positive
//! pair and every other row of `B` as a negative:
//!
//! `L = -(1/n) Σ_i log( exp(S_ii) / Σ_j exp(S_ij) )`, `S = A Bᵀ / τ`.

use metadpa_tensor::Matrix;

use crate::activation::softmax_rows;

/// Result of an InfoNCE evaluation.
pub struct InfoNceResult {
    /// The scalar loss (negated for the ME form).
    pub loss: f32,
    /// Gradient w.r.t. the first batch.
    pub grad_a: Matrix,
    /// Gradient w.r.t. the second batch.
    pub grad_b: Matrix,
}

/// InfoNCE estimator with a fixed temperature.
#[derive(Clone, Copy, Debug)]
pub struct InfoNce {
    temperature: f32,
}

impl InfoNce {
    /// Creates an estimator; `temperature` scales the similarity logits.
    ///
    /// # Panics
    /// Panics if `temperature` is not strictly positive.
    pub fn new(temperature: f32) -> Self {
        assert!(temperature > 0.0, "InfoNce::new: temperature must be positive");
        Self { temperature }
    }

    /// Computes the InfoNCE loss and its gradients for two `n x d` batches
    /// whose rows are aligned positive pairs.
    ///
    /// # Panics
    /// Panics if shapes differ or the batch has fewer than 2 rows (a single
    /// row has no negatives and the loss degenerates to zero).
    pub fn forward(&self, a: &Matrix, b: &Matrix) -> InfoNceResult {
        assert_eq!(
            a.shape(),
            b.shape(),
            "InfoNce::forward: shape mismatch {:?} vs {:?}",
            a.shape(),
            b.shape()
        );
        let n = a.rows();
        assert!(n >= 2, "InfoNce::forward: need at least 2 rows for negatives, got {n}");
        let inv_t = 1.0 / self.temperature;

        // Similarity logits S = A B^T / temperature  (n x n).
        let scores = a.matmul_nt(b).scale(inv_t);
        let probs = softmax_rows(&scores);

        // Loss: mean over rows of -log p_ii.
        let mut total = 0.0f64;
        for i in 0..n {
            let p = probs.get(i, i).max(1e-30);
            total -= (p.ln()) as f64;
        }
        let loss = (total / n as f64) as f32;

        // dL/dS = (P - I) / n; then dA = dS B / t, dB = dS^T A / t.
        let mut dscores = probs;
        for i in 0..n {
            let v = dscores.get(i, i) - 1.0;
            dscores.set(i, i, v);
        }
        let dscores = dscores.scale(inv_t / n as f32);
        let grad_a = dscores.matmul(b);
        let grad_b = dscores.matmul_tn(a);
        InfoNceResult { loss, grad_a, grad_b }
    }

    /// The negated form used by the ME constraint: returns `-loss` and
    /// negated gradients, so *minimizing* the returned value pushes the two
    /// batches apart (minimizes the MI lower bound).
    pub fn forward_negated(&self, a: &Matrix, b: &Matrix) -> InfoNceResult {
        let r = self.forward(a, b);
        InfoNceResult { loss: -r.loss, grad_a: r.grad_a.scale(-1.0), grad_b: r.grad_b.scale(-1.0) }
    }

    /// The configured temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }
}

impl Default for InfoNce {
    /// The conventional temperature of 0.1 used for both constraints.
    fn default() -> Self {
        Self::new(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_tensor::SeededRng;

    #[test]
    fn aligned_batches_have_lower_loss_than_shuffled() {
        let mut rng = SeededRng::new(1);
        let a = rng.normal_matrix(8, 4);
        // Positive pairs: b ≈ a (high MI). Negative control: rows shuffled.
        let b = &a + &rng.normal_matrix(8, 4).scale(0.05);
        let mut shuffled_rows: Vec<usize> = (1..8).chain(std::iter::once(0)).collect();
        shuffled_rows.rotate_left(3);
        let b_shuffled = b.gather_rows(&shuffled_rows);
        let nce = InfoNce::new(0.1);
        let aligned = nce.forward(&a, &b).loss;
        let misaligned = nce.forward(&a, &b_shuffled).loss;
        assert!(
            aligned < misaligned,
            "aligned loss {aligned} should be below misaligned {misaligned}"
        );
    }

    #[test]
    fn loss_is_ln_n_for_uninformative_scores() {
        // If A is all zeros, all logits are equal and p_ii = 1/n.
        let a = Matrix::zeros(5, 3);
        let b = Matrix::zeros(5, 3);
        let nce = InfoNce::new(1.0);
        let r = nce.forward(&a, &b);
        assert!((r.loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(3);
        let a = rng.normal_matrix(4, 3);
        let b = rng.normal_matrix(4, 3);
        let nce = InfoNce::new(0.5);
        let r = nce.forward(&a, &b);
        let eps = 1e-2;
        for i in 0..a.len() {
            let mut plus = a.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = a.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric =
                (nce.forward(&plus, &b).loss - nce.forward(&minus, &b).loss) / (2.0 * eps);
            let got = r.grad_a.as_slice()[i];
            assert!(
                (numeric - got).abs() < 5e-3,
                "grad_a[{i}]: numeric {numeric} vs analytic {got}"
            );
        }
        for i in 0..b.len() {
            let mut plus = b.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = b.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric =
                (nce.forward(&a, &plus).loss - nce.forward(&a, &minus).loss) / (2.0 * eps);
            let got = r.grad_b.as_slice()[i];
            assert!(
                (numeric - got).abs() < 5e-3,
                "grad_b[{i}]: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn negated_form_flips_loss_and_gradients() {
        let mut rng = SeededRng::new(5);
        let a = rng.normal_matrix(3, 2);
        let b = rng.normal_matrix(3, 2);
        let nce = InfoNce::default();
        let pos = nce.forward(&a, &b);
        let neg = nce.forward_negated(&a, &b);
        assert!((pos.loss + neg.loss).abs() < 1e-6);
        for (g1, g2) in pos.grad_a.as_slice().iter().zip(neg.grad_a.as_slice().iter()) {
            assert!((g1 + g2).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 rows")]
    fn single_row_batch_is_rejected() {
        let nce = InfoNce::default();
        let _ = nce.forward(&Matrix::zeros(1, 2), &Matrix::zeros(1, 2));
    }

    #[test]
    fn descending_the_loss_increases_alignment() {
        // One gradient step on A should increase the diagonal similarity
        // advantage.
        let mut rng = SeededRng::new(8);
        let mut a = rng.normal_matrix(6, 4);
        let b = rng.normal_matrix(6, 4);
        let nce = InfoNce::new(0.2);
        let before = nce.forward(&a, &b).loss;
        for _ in 0..20 {
            let r = nce.forward(&a, &b);
            a.add_scaled_inplace(&r.grad_a, -0.5);
        }
        let after = nce.forward(&a, &b).loss;
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }
}

//! Fully connected (affine) layer.

use metadpa_tensor::{Matrix, SeededRng};

use crate::init::xavier_uniform;
use crate::module::{Mode, Module};
use crate::param::Param;

/// A fully connected layer computing `y = x W + b`.
///
/// * `W` has shape `in_dim x out_dim`, initialized Xavier-uniform.
/// * `b` has shape `1 x out_dim`, initialized to zero.
///
/// The backward pass accumulates `dW = x^T g`, `db = Σ_rows g` and returns
/// `dx = g W^T`.
pub struct Dense {
    weight: Param,
    bias: Param,
    /// Input cached by the last forward pass. The buffer is retained across
    /// steps: `forward` copies into it, `forward_into` steals the caller's
    /// buffer outright (ownership handoff instead of a clone).
    cached_input: Option<Matrix>,
    /// Workspace for `backward_into`: dW/db must be computed into a zeroed
    /// scratch and then added to the accumulators so the per-element
    /// addition order matches `backward` bit for bit.
    ws_dw: Matrix,
    ws_db: Matrix,
}

impl Dense {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        Self {
            weight: Param::new(xavier_uniform(in_dim, out_dim, rng)),
            bias: Param::zeros(1, out_dim),
            cached_input: None,
            ws_dw: Matrix::default(),
            ws_db: Matrix::default(),
        }
    }

    /// Creates a layer from explicit weight and bias matrices (for tests).
    ///
    /// # Panics
    /// Panics if `bias` is not `1 x weight.cols()`.
    pub fn from_parts(weight: Matrix, bias: Matrix) -> Self {
        assert_eq!(
            (1, weight.cols()),
            bias.shape(),
            "Dense::from_parts: bias must be 1x{}",
            weight.cols()
        );
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
            ws_dw: Matrix::default(),
            ws_db: Matrix::default(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Immutable access to the weight parameter (for inspection in tests).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Immutable access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }
}

impl Module for Dense {
    fn forward(&mut self, input: &Matrix, _mode: Mode) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_dim(),
            "Dense::forward: input dim {} does not match layer in_dim {}",
            input.cols(),
            self.in_dim()
        );
        let mut out = input.matmul(&self.weight.value);
        out.add_row_broadcast_inplace(&self.bias.value);
        match &mut self.cached_input {
            Some(cache) => cache.assign(input),
            None => self.cached_input = Some(input.clone()),
        }
        out
    }

    fn forward_into(&mut self, input: &mut Matrix, _mode: Mode, out: &mut Matrix) {
        assert_eq!(
            input.cols(),
            self.in_dim(),
            "Dense::forward: input dim {} does not match layer in_dim {}",
            input.cols(),
            self.in_dim()
        );
        input.matmul_into(&self.weight.value, out);
        out.add_row_broadcast_inplace(&self.bias.value);
        // Ownership handoff: steal the caller's buffer for the activation
        // cache (the trait declares `input` dead after the call) and give
        // the previous cache back as the caller's scratch.
        std::mem::swap(self.cached_input.get_or_insert_with(Matrix::default), input);
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("Dense::backward called before forward");
        assert_eq!(
            grad_output.shape(),
            (input.rows(), self.out_dim()),
            "Dense::backward: grad shape {:?} does not match output shape {:?}",
            grad_output.shape(),
            (input.rows(), self.out_dim())
        );
        // dW += x^T g  (fused transpose product).
        self.weight.grad.add_inplace(&input.matmul_tn(grad_output));
        // db += column sums of g.
        self.bias.grad.add_inplace(&grad_output.sum_rows());
        // dx = g W^T.
        grad_output.matmul_nt(&self.weight.value)
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        let Self { weight, bias, cached_input, ws_dw, ws_db } = self;
        let input = cached_input.as_ref().expect("Dense::backward called before forward");
        assert_eq!(
            grad_output.shape(),
            (input.rows(), weight.value.cols()),
            "Dense::backward: grad shape {:?} does not match output shape {:?}",
            grad_output.shape(),
            (input.rows(), weight.value.cols())
        );
        // Same zeroed-product-then-add sequence as `backward`, but into the
        // layer workspace instead of fresh matrices.
        input.matmul_tn_into(grad_output, ws_dw);
        weight.grad.add_inplace(ws_dw);
        grad_output.sum_rows_into(ws_db);
        bias.grad.add_inplace(ws_db);
        grad_output.matmul_nt_into(&weight.value, out);
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::row_vector(&[0.5, -0.5]);
        let mut layer = Dense::from_parts(w, b);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(&x, Mode::Train);
        assert_eq!(y, Matrix::from_vec(1, 2, vec![4.5, 5.5]));
    }

    #[test]
    fn backward_accumulates_param_grads() {
        let w = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        let b = Matrix::row_vector(&[0.0]);
        let mut layer = Dense::from_parts(w, b);
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let _ = layer.forward(&x, Mode::Train);
        let g = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
        let dx = layer.backward(&g);
        // dW = x^T g = [[4], [6]]; db = [2]; dx = g W^T = [[1,1],[1,1]].
        assert_eq!(layer.weight().grad, Matrix::from_vec(2, 1, vec![4.0, 6.0]));
        assert_eq!(layer.bias().grad, Matrix::row_vector(&[2.0]));
        assert_eq!(dx, Matrix::from_vec(2, 2, vec![1.0; 4]));
        // A second backward accumulates.
        let _ = layer.forward(&x, Mode::Train);
        let _ = layer.backward(&g);
        assert_eq!(layer.weight().grad, Matrix::from_vec(2, 1, vec![8.0, 12.0]));
    }

    #[test]
    #[should_panic(expected = "called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(2, 2, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    #[should_panic(expected = "input dim")]
    fn forward_rejects_wrong_input_dim() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        let _ = layer.forward(&Matrix::zeros(1, 4), Mode::Train);
    }
}

//! Central-difference gradient verification.
//!
//! Because every backward pass in this workspace is hand-derived, the test
//! suite leans on numerical verification: for a module `f` and an arbitrary
//! upstream gradient `G`, define the scalar `L(x, θ) = Σ f(x; θ) ⊙ G` and
//! compare the analytic gradients produced by `backward(G)` against central
//! differences of `L`. This catches transposition, scaling, and caching
//! bugs that unit tests on tiny known values can miss.

use metadpa_tensor::Matrix;

use crate::module::{snapshot, zero_grad, Mode, Module};

/// Outcome of a gradient check.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest relative error over the input gradient.
    pub max_input_error: f32,
    /// Largest relative error over all parameter gradients.
    pub max_param_error: f32,
}

impl GradCheckReport {
    /// True when both errors are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_input_error <= tol && self.max_param_error <= tol
    }
}

fn relative_error(numeric: f32, analytic: f32) -> f32 {
    let scale = 1.0f32.max(numeric.abs()).max(analytic.abs());
    (numeric - analytic).abs() / scale
}

/// Verifies `module`'s backward pass at the point `(input, current params)`
/// against central differences with step `eps`.
///
/// The check uses [`Mode::Eval`] so stochastic layers (dropout) behave
/// deterministically.
pub fn check_module(
    module: &mut dyn Module,
    input: &Matrix,
    upstream: &Matrix,
    eps: f32,
) -> GradCheckReport {
    // Analytic pass.
    zero_grad(module);
    let out = module.forward(input, Mode::Eval);
    assert_eq!(
        out.shape(),
        upstream.shape(),
        "check_module: upstream gradient shape {:?} must match output {:?}",
        upstream.shape(),
        out.shape()
    );
    let analytic_input = module.backward(upstream);
    let mut analytic_params: Vec<Matrix> = Vec::new();
    module.visit_params(&mut |p| analytic_params.push(p.grad.clone()));

    let loss = |module: &mut dyn Module, x: &Matrix| -> f32 {
        module.forward(x, Mode::Eval).dot_flat(upstream)
    };

    // Numeric input gradient.
    let mut max_input_error = 0.0f32;
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        let numeric = (loss(module, &plus) - loss(module, &minus)) / (2.0 * eps);
        max_input_error =
            max_input_error.max(relative_error(numeric, analytic_input.as_slice()[i]));
    }

    // Numeric parameter gradients: perturb each scalar parameter in turn.
    let saved = snapshot(module);
    let mut max_param_error = 0.0f32;
    let total_params: usize = saved.iter().map(Matrix::len).sum();
    for flat in 0..total_params {
        // Locate (matrix, element) for this flat index.
        let mut remaining = flat;
        let mut which = 0;
        while remaining >= saved[which].len() {
            remaining -= saved[which].len();
            which += 1;
        }
        let perturb_and_eval = |module: &mut dyn Module, delta: f32| -> f32 {
            let mut idx = 0;
            module.visit_params(&mut |p| {
                if idx == which {
                    p.value.as_mut_slice()[remaining] += delta;
                }
                idx += 1;
            });
            let v = loss(module, input);
            // Restore.
            let mut idx2 = 0;
            module.visit_params(&mut |p| {
                if idx2 == which {
                    p.value.as_mut_slice()[remaining] -= delta;
                }
                idx2 += 1;
            });
            v
        };
        let numeric =
            (perturb_and_eval(module, eps) - perturb_and_eval(module, -eps)) / (2.0 * eps);
        let analytic = analytic_params[which].as_slice()[remaining];
        max_param_error = max_param_error.max(relative_error(numeric, analytic));
    }

    GradCheckReport { max_input_error, max_param_error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Relu, Sigmoid, Softmax, Tanh};
    use crate::dense::Dense;
    use crate::mlp::{Activation, Mlp};
    use crate::sequential::Sequential;
    use metadpa_tensor::SeededRng;

    fn run(module: &mut dyn Module, in_dim: usize, out_dim: usize, seed: u64) -> GradCheckReport {
        let mut rng = SeededRng::new(seed);
        let input = rng.normal_matrix(4, in_dim);
        let upstream = rng.normal_matrix(4, out_dim);
        check_module(module, &input, &upstream, 1e-2)
    }

    #[test]
    fn dense_gradients_verify() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(5, 3, &mut rng);
        let report = run(&mut layer, 5, 3, 11);
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn sigmoid_gradients_verify() {
        let mut layer = Sigmoid::new();
        let report = run(&mut layer, 4, 4, 12);
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn tanh_gradients_verify() {
        let mut layer = Tanh::new();
        let report = run(&mut layer, 4, 4, 13);
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn relu_gradients_verify_away_from_kink() {
        // Shift inputs away from 0 so finite differences do not straddle the
        // non-differentiable point.
        let mut layer = Relu::new();
        let mut rng = SeededRng::new(14);
        let input = rng.normal_matrix(4, 4).map(|v| if v.abs() < 0.1 { v + 0.5 } else { v });
        let upstream = rng.normal_matrix(4, 4);
        let report = check_module(&mut layer, &input, &upstream, 1e-3);
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn softmax_gradients_verify() {
        let mut layer = Softmax::new();
        let report = run(&mut layer, 5, 5, 15);
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn deep_mlp_gradients_verify() {
        let mut rng = SeededRng::new(16);
        let mut mlp = Mlp::new(&[6, 8, 5, 2], Activation::Tanh, &mut rng);
        let report = run(&mut mlp, 6, 2, 17);
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn sequential_of_mixed_layers_verifies() {
        let mut rng = SeededRng::new(18);
        let mut net = Sequential::new()
            .push(Dense::new(4, 6, &mut rng))
            .push(Tanh::new())
            .push(Dense::new(6, 3, &mut rng))
            .push(Sigmoid::new());
        let report = run(&mut net, 4, 3, 19);
        assert!(report.passes(1e-2), "{report:?}");
    }
}

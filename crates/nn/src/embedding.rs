//! Index-based embedding table for id-embedding models (NeuMF, TDAR).
//!
//! Unlike the content encoders (which are [`crate::Dense`] layers over dense
//! review vectors), collaborative-filtering baselines embed user/item *ids*.
//! An embedding lookup is a row gather, and its backward pass is a row
//! scatter-add, so it does not fit the `Matrix -> Matrix` [`crate::Module`]
//! contract; it exposes its own `forward`/`backward` pair instead.

use metadpa_tensor::{Matrix, SeededRng};

use crate::init::embedding_normal;
use crate::param::Param;

/// A `num_entities x dim` embedding table.
pub struct Embedding {
    table: Param,
    cached_indices: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates a table with `N(0, 0.01)` initialization.
    pub fn new(num_entities: usize, dim: usize, rng: &mut SeededRng) -> Self {
        Self { table: Param::new(embedding_normal(num_entities, dim, rng)), cached_indices: None }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Number of entities in the table.
    pub fn num_entities(&self) -> usize {
        self.table.value.rows()
    }

    /// Looks up a batch of ids, returning a `len(indices) x dim` matrix and
    /// caching the indices for the backward pass.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn forward(&mut self, indices: &[usize]) -> Matrix {
        let out = self.table.value.gather_rows(indices);
        self.cached_indices = Some(indices.to_vec());
        out
    }

    /// Scatter-adds `grad_output` rows into the rows selected by the last
    /// forward call.
    ///
    /// # Panics
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward(&mut self, grad_output: &Matrix) {
        let indices =
            self.cached_indices.as_ref().expect("Embedding::backward called before forward");
        assert_eq!(
            grad_output.shape(),
            (indices.len(), self.dim()),
            "Embedding::backward: grad shape {:?} does not match ({}, {})",
            grad_output.shape(),
            indices.len(),
            self.dim()
        );
        for (row, &idx) in indices.iter().enumerate() {
            let g = grad_output.row(row);
            let dst = self.table.grad.row_mut(idx);
            for (d, &v) in dst.iter_mut().zip(g.iter()) {
                *d += v;
            }
        }
    }

    /// Re-gathers the rows of the most recent forward call (used by models
    /// whose backward pass needs the looked-up values, e.g. the GMF
    /// Hadamard product in NeuMF).
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn refetch(&self) -> Matrix {
        let indices =
            self.cached_indices.as_ref().expect("Embedding::refetch called before forward");
        self.table.value.gather_rows(indices)
    }

    /// Access to the underlying parameter (for optimizers).
    pub fn param_mut(&mut self) -> &mut Param {
        &mut self.table
    }

    /// Immutable access to the underlying parameter.
    pub fn param(&self) -> &Param {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_gathers_rows() {
        let mut rng = SeededRng::new(1);
        let mut emb = Embedding::new(5, 3, &mut rng);
        let out = emb.forward(&[4, 0, 4]);
        assert_eq!(out.shape(), (3, 3));
        assert_eq!(out.row(0), emb.param().value.row(4));
        assert_eq!(out.row(1), emb.param().value.row(0));
        assert_eq!(out.row(0), out.row(2));
    }

    #[test]
    fn backward_scatter_adds_duplicates() {
        let mut rng = SeededRng::new(2);
        let mut emb = Embedding::new(3, 2, &mut rng);
        let _ = emb.forward(&[1, 1]);
        let g = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        emb.backward(&g);
        // Row 1 receives both gradient rows summed.
        assert_eq!(emb.param().grad.row(1), &[4.0, 6.0]);
        assert_eq!(emb.param().grad.row(0), &[0.0, 0.0]);
        assert_eq!(emb.param().grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = SeededRng::new(3);
        let mut emb = Embedding::new(3, 2, &mut rng);
        emb.backward(&Matrix::zeros(1, 2));
    }
}

//! Learning-rate schedules and gradient clipping.
//!
//! The experiment schedules in this reproduction are short enough that the
//! paper-faithful runs use constant learning rates, but the substrate
//! offers the standard tools for longer runs: step decay, cosine
//! annealing, linear warmup, and global-norm gradient clipping (useful
//! when the Dual-CVAE objective's InfoNCE terms spike early in training).

use crate::module::Module;

/// A learning-rate schedule: maps a 0-based step index to a rate.
pub trait LrSchedule {
    /// Learning rate to use at `step`.
    fn lr_at(&self, step: usize) -> f32;
}

/// Constant rate.
#[derive(Clone, Copy, Debug)]
pub struct Constant(pub f32);

impl LrSchedule for Constant {
    fn lr_at(&self, _step: usize) -> f32 {
        self.0
    }
}

/// Multiplies the base rate by `factor` every `every` steps.
#[derive(Clone, Copy, Debug)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base: f32,
    /// Multiplier applied at each boundary.
    pub factor: f32,
    /// Steps between decays.
    pub every: usize,
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, step: usize) -> f32 {
        assert!(self.every > 0, "StepDecay: `every` must be positive");
        self.base * self.factor.powi((step / self.every) as i32)
    }
}

/// Cosine annealing from `base` to `floor` over `total_steps`, constant at
/// `floor` afterwards.
#[derive(Clone, Copy, Debug)]
pub struct CosineAnnealing {
    /// Initial learning rate.
    pub base: f32,
    /// Final learning rate.
    pub floor: f32,
    /// Steps over which to anneal.
    pub total_steps: usize,
}

impl LrSchedule for CosineAnnealing {
    fn lr_at(&self, step: usize) -> f32 {
        if self.total_steps == 0 || step >= self.total_steps {
            return self.floor;
        }
        let progress = step as f32 / self.total_steps as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.floor + (self.base - self.floor) * cos
    }
}

/// Linear warmup from 0 to `base` over `warmup_steps`, then delegates to
/// the inner schedule (with the warmup offset removed).
pub struct Warmup<S: LrSchedule> {
    /// Steps of linear warmup.
    pub warmup_steps: usize,
    /// Peak rate reached at the end of warmup.
    pub base: f32,
    /// Schedule used after warmup.
    pub inner: S,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn lr_at(&self, step: usize) -> f32 {
        if step < self.warmup_steps {
            self.base * (step + 1) as f32 / self.warmup_steps as f32
        } else {
            self.inner.lr_at(step - self.warmup_steps)
        }
    }
}

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
///
/// # Panics
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(module: &mut dyn Module, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
    let mut total_sq = 0.0f64;
    module.visit_params(&mut |p| {
        total_sq += p.grad.as_slice().iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>();
    });
    let norm = (total_sq as f32).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        module.visit_params(&mut |p| p.grad.map_inplace(|g| g * scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use metadpa_tensor::SeededRng;

    #[test]
    fn constant_is_constant() {
        let s = Constant(0.1);
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1000), 0.1);
    }

    #[test]
    fn step_decay_halves_at_boundaries() {
        let s = StepDecay { base: 1.0, factor: 0.5, every: 10 };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = CosineAnnealing { base: 1.0, floor: 0.1, total_steps: 100 };
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(10_000) - 0.1).abs() < 1e-6);
        let mut last = f32::INFINITY;
        for step in 0..=100 {
            let lr = s.lr_at(step);
            assert!(lr <= last + 1e-6, "cosine must not increase");
            last = lr;
        }
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup { warmup_steps: 10, base: 1.0, inner: Constant(1.0) };
        assert!(s.lr_at(0) <= 0.11);
        assert!(s.lr_at(4) < s.lr_at(9));
        assert_eq!(s.lr_at(10), 1.0);
        assert_eq!(s.lr_at(50), 1.0);
    }

    #[test]
    fn clipping_bounds_the_global_norm() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(4, 4, &mut rng);
        layer.visit_params(&mut |p| p.grad.fill(10.0));
        let pre = clip_grad_norm(&mut layer, 1.0);
        assert!(pre > 1.0);
        let mut post_sq = 0.0f32;
        layer.visit_params(&mut |p| {
            post_sq += p.grad.as_slice().iter().map(|g| g * g).sum::<f32>();
        });
        assert!((post_sq.sqrt() - 1.0).abs() < 1e-4, "post norm {}", post_sq.sqrt());
    }

    #[test]
    fn clipping_is_noop_below_threshold() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        layer.visit_params(&mut |p| p.grad.fill(1e-4));
        let before: Vec<f32> = {
            let mut v = Vec::new();
            layer.visit_params(&mut |p| v.extend_from_slice(p.grad.as_slice()));
            v
        };
        let _ = clip_grad_norm(&mut layer, 10.0);
        let mut after = Vec::new();
        layer.visit_params(&mut |p| after.extend_from_slice(p.grad.as_slice()));
        assert_eq!(before, after);
    }
}

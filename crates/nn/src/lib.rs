//! # metadpa-nn
//!
//! A modular neural-network substrate with hand-derived, finite-difference
//! verified backward passes.
//!
//! The calibration note for this reproduction — *"DL crates thin;
//! meta-learning unsupported"* — means the paper's dependency on a
//! PyTorch-class framework has to be rebuilt. Every model in the paper is a
//! small feed-forward network (CVAE encoders/decoders, an MLP preference
//! scorer, review-text towers), so this crate implements exactly the
//! operator set those models need:
//!
//! * layers: [`Dense`], [`Relu`], [`LeakyRelu`], [`Sigmoid`], [`Tanh`],
//!   [`Softmax`], [`Dropout`], [`Sequential`], plus an index-based
//!   [`Embedding`] table for id-embedding baselines such as NeuMF;
//! * losses: [`loss::bce_with_logits`], [`loss::mse`],
//!   [`kl::gaussian_kl_to_anchor`] (the Eq. 3 form used by the Dual-CVAE),
//!   and [`infonce::InfoNce`] (the mutual-information estimator backing both
//!   the MDI and ME constraints);
//! * optimizers: [`Sgd`] and [`Adam`], operating through
//!   [`Module::visit_params`] so the same code drives any composite model;
//! * [`grad_check`]: central-difference gradient verification used
//!   throughout the test suite — each differentiable component in this
//!   workspace carries a test proving its analytic gradient matches a
//!   numerical one.
//!
//! Meta-learning (first-order MAML) is built on top of this crate in
//! `metadpa-core::meta` using [`snapshot`]/[`restore`] parameter vectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod dense;
pub mod dropout;
pub mod embedding;
pub mod grad_check;
pub mod infonce;
pub mod init;
pub mod kl;
pub mod layer_norm;
pub mod loss;
pub mod mlp;
pub mod module;
pub mod optim;
pub mod param;
pub mod schedule;
pub mod sequential;
pub mod workspace;

pub use activation::{LeakyRelu, Relu, Sigmoid, Softmax, Tanh};
pub use dense::Dense;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use layer_norm::LayerNorm;
pub use mlp::Mlp;
pub use module::{restore, snapshot, snapshot_into, zero_grad, Mode, Module};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use schedule::{clip_grad_norm, LrSchedule};
pub use sequential::Sequential;
pub use workspace::Workspace;

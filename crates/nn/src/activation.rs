//! Elementwise and row-wise activation layers.
//!
//! The paper's networks use ReLU in hidden layers, sigmoid for implicit
//! feedback outputs, tanh in the CVAE encoders (following HCVAE), and a
//! row-wise softmax on the decoder output layer (§IV-A: "we employ the
//! softmax function as the activation function in the output layer").

use metadpa_tensor::Matrix;

use crate::module::{Mode, Module};
use crate::param::Param;

/// Rectified linear unit, `max(0, x)`.
#[derive(Default)]
pub struct Relu {
    cached_input: Option<Matrix>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Relu {
    fn forward(&mut self, input: &Matrix, _mode: Mode) -> Matrix {
        match &mut self.cached_input {
            Some(cache) => cache.assign(input),
            None => self.cached_input = Some(input.clone()),
        }
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("Relu::backward called before forward");
        input.zip_map(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })
    }

    fn forward_into(&mut self, input: &mut Matrix, _mode: Mode, out: &mut Matrix) {
        input.map_into(|v| v.max(0.0), out);
        std::mem::swap(self.cached_input.get_or_insert_with(Matrix::default), input);
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        let input = self.cached_input.as_ref().expect("Relu::backward called before forward");
        input.zip_map_into(grad_output, |x, g| if x > 0.0 { g } else { 0.0 }, out);
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}
}

/// Leaky rectified linear unit with a configurable negative slope.
pub struct LeakyRelu {
    slope: f32,
    cached_input: Option<Matrix>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU; `slope` is the gradient for negative inputs.
    pub fn new(slope: f32) -> Self {
        Self { slope, cached_input: None }
    }
}

impl Module for LeakyRelu {
    fn forward(&mut self, input: &Matrix, _mode: Mode) -> Matrix {
        match &mut self.cached_input {
            Some(cache) => cache.assign(input),
            None => self.cached_input = Some(input.clone()),
        }
        let s = self.slope;
        input.map(|v| if v > 0.0 { v } else { s * v })
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("LeakyRelu::backward called before forward");
        let s = self.slope;
        input.zip_map(grad_output, |x, g| if x > 0.0 { g } else { s * g })
    }

    fn forward_into(&mut self, input: &mut Matrix, _mode: Mode, out: &mut Matrix) {
        let s = self.slope;
        input.map_into(|v| if v > 0.0 { v } else { s * v }, out);
        std::mem::swap(self.cached_input.get_or_insert_with(Matrix::default), input);
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        let input = self.cached_input.as_ref().expect("LeakyRelu::backward called before forward");
        let s = self.slope;
        input.zip_map_into(grad_output, |x, g| if x > 0.0 { g } else { s * g }, out);
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}
}

/// Logistic sigmoid, `1 / (1 + e^-x)`.
#[derive(Default)]
pub struct Sigmoid {
    cached_output: Option<Matrix>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Numerically stable scalar sigmoid, exposed for loss implementations.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Module for Sigmoid {
    fn forward(&mut self, input: &Matrix, _mode: Mode) -> Matrix {
        let out = input.map(sigmoid);
        match &mut self.cached_output {
            Some(cache) => cache.assign(&out),
            None => self.cached_output = Some(out.clone()),
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let out = self.cached_output.as_ref().expect("Sigmoid::backward called before forward");
        out.zip_map(grad_output, |y, g| y * (1.0 - y) * g)
    }

    fn forward_into(&mut self, input: &mut Matrix, _mode: Mode, out: &mut Matrix) {
        input.map_into(sigmoid, out);
        self.cached_output.get_or_insert_with(Matrix::default).assign(out);
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        let y = self.cached_output.as_ref().expect("Sigmoid::backward called before forward");
        y.zip_map_into(grad_output, |y, g| y * (1.0 - y) * g, out);
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}
}

/// Hyperbolic tangent.
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Matrix>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Tanh {
    fn forward(&mut self, input: &Matrix, _mode: Mode) -> Matrix {
        let out = input.map(f32::tanh);
        match &mut self.cached_output {
            Some(cache) => cache.assign(&out),
            None => self.cached_output = Some(out.clone()),
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let out = self.cached_output.as_ref().expect("Tanh::backward called before forward");
        out.zip_map(grad_output, |y, g| (1.0 - y * y) * g)
    }

    fn forward_into(&mut self, input: &mut Matrix, _mode: Mode, out: &mut Matrix) {
        input.map_into(f32::tanh, out);
        self.cached_output.get_or_insert_with(Matrix::default).assign(out);
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        let y = self.cached_output.as_ref().expect("Tanh::backward called before forward");
        y.zip_map_into(grad_output, |y, g| (1.0 - y * y) * g, out);
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}
}

/// Row-wise softmax.
///
/// Each row of the input is normalized independently:
/// `y_ij = exp(x_ij) / Σ_k exp(x_ik)` (computed with the max-subtraction
/// trick for stability).
#[derive(Default)]
pub struct Softmax {
    cached_output: Option<Matrix>,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Row-wise softmax as a free function (used by InfoNCE and tests).
pub fn softmax_rows(input: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    softmax_rows_into(input, &mut out);
    out
}

/// Row-wise softmax into a caller-owned buffer — the zero-allocation twin of
/// [`softmax_rows`], bit-identical to it.
pub fn softmax_rows_into(input: &Matrix, out: &mut Matrix) {
    out.assign(input);
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            total += *v;
        }
        let inv = 1.0 / total;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

impl Module for Softmax {
    fn forward(&mut self, input: &Matrix, _mode: Mode) -> Matrix {
        let out = softmax_rows(input);
        match &mut self.cached_output {
            Some(cache) => cache.assign(&out),
            None => self.cached_output = Some(out.clone()),
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let y = self.cached_output.as_ref().expect("Softmax::backward called before forward");
        // dx_i = y_i * (g_i - Σ_j g_j y_j), row-wise.
        let mut out = Matrix::zeros(y.rows(), y.cols());
        for r in 0..y.rows() {
            let yr = y.row(r);
            let gr = grad_output.row(r);
            let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
            for ((o, &yv), &gv) in out.row_mut(r).iter_mut().zip(yr.iter()).zip(gr.iter()) {
                *o = yv * (gv - dot);
            }
        }
        out
    }

    fn forward_into(&mut self, input: &mut Matrix, _mode: Mode, out: &mut Matrix) {
        softmax_rows_into(input, out);
        self.cached_output.get_or_insert_with(Matrix::default).assign(out);
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        let y = self.cached_output.as_ref().expect("Softmax::backward called before forward");
        // Seed `out` with y, then rescale rows in place: o = y * (g - g·y).
        out.assign(y);
        for r in 0..out.rows() {
            let dot: f32 = y.row(r).iter().zip(grad_output.row(r)).map(|(&a, &b)| a * b).sum();
            for (o, &gv) in out.row_mut(r).iter_mut().zip(grad_output.row(r)) {
                *o *= gv - dot;
            }
        }
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_and_gates_gradient() {
        let mut layer = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.5, 2.0]);
        let y = layer.forward(&x, Mode::Train);
        assert_eq!(y, Matrix::from_vec(1, 4, vec![0.0, 0.0, 0.5, 2.0]));
        let g = Matrix::filled(1, 4, 1.0);
        let dx = layer.backward(&g);
        assert_eq!(dx, Matrix::from_vec(1, 4, vec![0.0, 0.0, 1.0, 1.0]));
    }

    #[test]
    fn leaky_relu_passes_scaled_negative() {
        let mut layer = LeakyRelu::new(0.1);
        let x = Matrix::from_vec(1, 2, vec![-1.0, 1.0]);
        let y = layer.forward(&x, Mode::Train);
        assert_eq!(y, Matrix::from_vec(1, 2, vec![-0.1, 1.0]));
        let dx = layer.backward(&Matrix::filled(1, 2, 2.0));
        assert_eq!(dx, Matrix::from_vec(1, 2, vec![0.2, 2.0]));
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let mut layer = Sigmoid::new();
        let x = Matrix::from_vec(1, 3, vec![-100.0, 0.0, 100.0]);
        let y = layer.forward(&x, Mode::Eval);
        assert!(y.get(0, 0) < 1e-6);
        assert!((y.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(y.get(0, 2) > 1.0 - 1e-6);
        assert!(y.all_finite());
    }

    #[test]
    fn stable_sigmoid_matches_naive_in_safe_range() {
        for x in [-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let naive = 1.0 / (1.0 + (-x).exp());
            assert!((sigmoid(x) - naive).abs() < 1e-6);
        }
    }

    #[test]
    fn tanh_gradient_at_zero_is_one() {
        let mut layer = Tanh::new();
        let _ = layer.forward(&Matrix::zeros(1, 1), Mode::Train);
        let dx = layer.backward(&Matrix::filled(1, 1, 1.0));
        assert!((dx.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_handle_large_inputs() {
        let x = Matrix::from_vec(2, 3, vec![1000.0, 1000.0, 1000.0, 1.0, 2.0, 3.0]);
        let y = softmax_rows(&x);
        assert!(y.all_finite());
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!((y.get(0, 0) - 1.0 / 3.0).abs() < 1e-5);
        assert!(y.get(1, 2) > y.get(1, 1) && y.get(1, 1) > y.get(1, 0));
    }

    #[test]
    fn softmax_backward_is_orthogonal_to_ones() {
        // Softmax outputs sum to 1, so the Jacobian maps the all-ones
        // upstream gradient to zero.
        let mut layer = Softmax::new();
        let x = Matrix::from_vec(1, 4, vec![0.3, -1.2, 2.0, 0.7]);
        let _ = layer.forward(&x, Mode::Train);
        let dx = layer.backward(&Matrix::filled(1, 4, 1.0));
        assert!(dx.as_slice().iter().all(|v| v.abs() < 1e-6));
    }
}

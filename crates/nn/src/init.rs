//! Parameter initialization schemes.
//!
//! Xavier/Glorot uniform is the default for the sigmoid/tanh-heavy CVAE
//! stacks; He (Kaiming) normal is used ahead of ReLU layers in the MLP
//! preference model, matching the initializations the paper's reference
//! implementations inherit from their frameworks.

use metadpa_tensor::{Matrix, SeededRng};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.uniform_matrix(fan_in, fan_out, -a, a)
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`.
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    rng.normal_matrix(fan_in, fan_out).scale(std)
}

/// Small-scale normal initialization for embedding tables: `N(0, 0.01)`,
/// the convention used by NeuMF-style id embeddings.
pub fn embedding_normal(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
    rng.normal_matrix(rows, cols).scale(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = SeededRng::new(1);
        let w = xavier_uniform(100, 50, &mut rng);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        assert_eq!(w.shape(), (100, 50));
        // Should actually use the range, not cluster at zero.
        assert!(w.as_slice().iter().any(|v| v.abs() > bound * 0.5));
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut rng = SeededRng::new(2);
        let w = he_normal(200, 100, &mut rng);
        let std_target = (2.0f32 / 200.0).sqrt();
        let mean = w.mean();
        let var = w.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01);
        assert!((var.sqrt() - std_target).abs() < std_target * 0.1);
    }

    #[test]
    fn embedding_normal_is_small() {
        let mut rng = SeededRng::new(3);
        let w = embedding_normal(50, 16, &mut rng);
        assert!(w.as_slice().iter().all(|v| v.abs() < 0.1));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        assert_eq!(xavier_uniform(10, 10, &mut a), xavier_uniform(10, 10, &mut b));
    }
}

//! Reusable buffer pools for zero-allocation forward/backward passes.

use metadpa_tensor::Matrix;

/// A small indexed pool of reusable matrices.
///
/// Models that assemble their inputs from several pieces (embedding gathers,
/// feature `hstack`s, CVAE concatenations) own a `Workspace` and `take`/`put`
/// slots around each step. A slot keeps whatever capacity its last use grew
/// it to, so steady-state training reuses the same allocations; taking a slot
/// leaves an empty 0x0 matrix behind (no allocation) and is safe to do for
/// several slots at once, which sidesteps borrow conflicts between buffers
/// used in the same expression.
#[derive(Default)]
pub struct Workspace {
    slots: Vec<Matrix>,
}

impl Workspace {
    /// Creates a workspace with `slots` empty buffers.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        Self { slots: (0..slots).map(|_| Matrix::default()).collect() }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the workspace has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Moves slot `i` out, leaving an empty matrix behind.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn take(&mut self, i: usize) -> Matrix {
        std::mem::take(&mut self.slots[i])
    }

    /// Returns a buffer to slot `i` so its capacity is reused next step.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn put(&mut self, i: usize, m: Matrix) {
        self.slots[i] = m;
    }

    /// Mutable access to slot `i` in place (for buffers that never need to
    /// leave the workspace).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn slot_mut(&mut self, i: usize) -> &mut Matrix {
        &mut self.slots[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_reuses_capacity() {
        let mut ws = Workspace::new(2);
        assert_eq!(ws.len(), 2);
        let mut a = ws.take(0);
        a.assign(&Matrix::filled(4, 4, 1.0));
        let ptr = a.as_slice().as_ptr();
        ws.put(0, a);
        // Taking again hands back the same allocation.
        let b = ws.take(0);
        assert_eq!(b.as_slice().as_ptr(), ptr);
        assert_eq!(b.shape(), (4, 4));
        ws.put(0, b);
        // The vacated slot is an empty matrix, not a hole.
        let c = ws.take(1);
        assert_eq!(c.shape(), (0, 0));
        ws.put(1, c);
    }
}

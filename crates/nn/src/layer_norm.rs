//! Layer normalization (Ba et al., 2016).
//!
//! Normalizes each row of the input to zero mean and unit variance, then
//! applies a learned affine transform `y = γ ⊙ x̂ + β`. Useful ahead of the
//! deeper baseline towers and available to downstream users of the
//! substrate; the backward pass is hand-derived and covered by the crate's
//! gradient-check tests.

use metadpa_tensor::Matrix;

use crate::module::{Mode, Module};
use crate::param::Param;

/// Per-row layer normalization with learned gain and bias.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    /// Cached normalized input and per-row inverse std from the last
    /// forward pass.
    cache: Option<(Matrix, Vec<f32>)>,
}

impl LayerNorm {
    /// Creates a layer over `dim`-wide rows with γ = 1, β = 0.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Matrix::filled(1, dim, 1.0)),
            beta: Param::zeros(1, dim),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }
}

impl Module for LayerNorm {
    fn forward(&mut self, input: &Matrix, _mode: Mode) -> Matrix {
        assert_eq!(
            input.cols(),
            self.dim(),
            "LayerNorm::forward: input width {} != {}",
            input.cols(),
            self.dim()
        );
        let d = input.cols() as f32;
        let mut normalized = Matrix::zeros(input.rows(), input.cols());
        let mut inv_stds = Vec::with_capacity(input.rows());
        let mut out = Matrix::zeros(input.rows(), input.cols());
        for r in 0..input.rows() {
            let row = input.row(r);
            let mean = row.iter().sum::<f32>() / d;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            for (c, &v) in row.iter().enumerate() {
                let xhat = (v - mean) * inv_std;
                normalized.set(r, c, xhat);
                out.set(r, c, xhat * self.gamma.value.get(0, c) + self.beta.value.get(0, c));
            }
        }
        self.cache = Some((normalized, inv_stds));
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let (xhat, inv_stds) =
            self.cache.as_ref().expect("LayerNorm::backward called before forward");
        let d = xhat.cols() as f32;
        let mut dx = Matrix::zeros(xhat.rows(), xhat.cols());
        for (r, &inv_std) in inv_stds.iter().enumerate() {
            // dβ and dγ accumulate per column.
            let g_row = grad_output.row(r);
            let x_row = xhat.row(r);
            // dL/dxhat = g ⊙ γ.
            let dxhat: Vec<f32> =
                g_row.iter().enumerate().map(|(c, &g)| g * self.gamma.value.get(0, c)).collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(x_row.iter()).map(|(&a, &b)| a * b).sum();
            for c in 0..xhat.cols() {
                // Standard LayerNorm backward:
                // dx = (1/σ) * (dxhat - mean(dxhat) - xhat * mean(dxhat ⊙ xhat))
                let v = inv_std * (dxhat[c] - sum_dxhat / d - x_row[c] * sum_dxhat_xhat / d);
                dx.set(r, c, v);
                // Parameter grads.
                let gg = self.gamma.grad.get(0, c) + g_row[c] * x_row[c];
                self.gamma.grad.set(0, c, gg);
                let gb = self.beta.grad.get(0, c) + g_row[c];
                self.beta.grad.set(0, c, gb);
            }
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::check_module;
    use metadpa_tensor::SeededRng;

    #[test]
    fn output_rows_are_normalized_with_default_affine() {
        let mut ln = LayerNorm::new(6);
        let mut rng = SeededRng::new(1);
        let x = rng.normal_matrix(4, 6).scale(3.0);
        let y = ln.forward(&x, Mode::Train);
        for r in 0..4 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 6.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gradients_verify_numerically() {
        let mut ln = LayerNorm::new(5);
        let mut rng = SeededRng::new(2);
        // Move gamma/beta off their defaults so their grads are nontrivial.
        ln.visit_params(&mut |p| p.value.map_inplace(|v| v + 0.3));
        let x = rng.normal_matrix(3, 5);
        let upstream = rng.normal_matrix(3, 5);
        let report = check_module(&mut ln, &x, &upstream, 1e-2);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn scale_invariance_of_input() {
        // LayerNorm(x) == LayerNorm(a * x) for a > 0 (up to eps effects).
        let mut ln = LayerNorm::new(4);
        let mut rng = SeededRng::new(3);
        let x = rng.normal_matrix(2, 4);
        let y1 = ln.forward(&x, Mode::Eval);
        let y2 = ln.forward(&x.scale(10.0), Mode::Eval);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice().iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn rejects_wrong_width() {
        let mut ln = LayerNorm::new(4);
        let _ = ln.forward(&Matrix::zeros(1, 5), Mode::Train);
    }
}

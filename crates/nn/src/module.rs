//! The [`Module`] trait: the composition contract for all layers and models.

use metadpa_tensor::Matrix;

use crate::param::Param;

/// Whether a forward pass is part of training or evaluation.
///
/// Only [`crate::Dropout`] currently distinguishes the two, but the mode is
/// threaded through every module so composite models behave like their
/// framework counterparts (`model.train()` / `model.eval()`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic regularizers are active.
    Train,
    /// Evaluation: the network computes its deterministic function.
    Eval,
}

/// A differentiable component with cached activations.
///
/// The contract mirrors classic define-by-run layers:
///
/// 1. [`Module::forward`] consumes a `batch x in_dim` matrix and returns a
///    `batch x out_dim` matrix, caching whatever it needs for the backward
///    pass.
/// 2. [`Module::backward`] consumes the gradient of the loss with respect to
///    the output of the *most recent* forward call, **accumulates** parameter
///    gradients, and returns the gradient with respect to the input.
/// 3. [`Module::visit_params`] exposes every trainable [`Param`] in a stable
///    order, which optimizers and the MAML snapshot/restore helpers rely on.
///
/// Calling `backward` before `forward`, or with a mismatched batch size, is a
/// programming error and panics.
pub trait Module {
    /// Runs the layer on `input`, caching activations for `backward`.
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix;

    /// Backpropagates `grad_output` (gradient w.r.t. the last forward
    /// output), accumulating parameter gradients and returning the gradient
    /// w.r.t. the input.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Zero-allocation twin of [`Module::forward`]: writes the output into
    /// the caller-owned buffer `out`, bit-identical to `forward`.
    ///
    /// `input` is taken by mutable reference so the layer may *steal* its
    /// storage for the activation cache (an ownership handoff instead of a
    /// clone); the contents of `input` are unspecified after the call. The
    /// default implementation falls back to the allocating path, so modules
    /// that never override it keep working unchanged.
    fn forward_into(&mut self, input: &mut Matrix, mode: Mode, out: &mut Matrix) {
        *out = self.forward(input, mode);
    }

    /// Zero-allocation twin of [`Module::backward`]: writes the input
    /// gradient into `out`, bit-identical to `backward`.
    ///
    /// Like `forward_into`, the layer may scribble on or steal
    /// `grad_output`; its contents are unspecified after the call.
    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        *out = self.backward(grad_output);
    }

    /// Visits every trainable parameter in a stable order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param));

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

/// Clears the gradient accumulators of every parameter in `module`.
pub fn zero_grad(module: &mut dyn Module) {
    module.visit_params(&mut |p| p.zero_grad());
}

/// Copies the current parameter values out of `module` in visit order.
///
/// Together with [`restore`] this implements the cheap "save θ, adapt,
/// rewind" cycle at the heart of the MAML inner loop (paper Eq. 1).
pub fn snapshot(module: &mut dyn Module) -> Vec<Matrix> {
    let mut out = Vec::new();
    snapshot_into(module, &mut out);
    out
}

/// Copies parameter values into `out`, reusing its existing matrices.
///
/// The zero-allocation twin of [`snapshot`]: after the first call on a given
/// buffer only element data is copied, so a MAML inner loop that snapshots θ
/// every meta-batch allocates nothing in steady state.
pub fn snapshot_into(module: &mut dyn Module, out: &mut Vec<Matrix>) {
    let mut idx = 0;
    module.visit_params(&mut |p| {
        match out.get_mut(idx) {
            Some(slot) => slot.assign(&p.value),
            None => out.push(p.value.clone()),
        }
        idx += 1;
    });
    out.truncate(idx);
}

/// Writes parameter values saved by [`snapshot`] back into `module`.
///
/// # Panics
/// Panics if `saved` does not match the module's parameter structure.
pub fn restore(module: &mut dyn Module, saved: &[Matrix]) {
    let mut idx = 0;
    module.visit_params(&mut |p| {
        assert!(idx < saved.len(), "restore: snapshot has too few parameter matrices");
        assert_eq!(
            p.value.shape(),
            saved[idx].shape(),
            "restore: shape mismatch at parameter {idx}"
        );
        // assign() copies into the parameter's existing storage (same shape
        // guaranteed above), so a restore never reallocates.
        p.value.assign(&saved[idx]);
        idx += 1;
    });
    assert_eq!(idx, saved.len(), "restore: snapshot has too many parameter matrices");
}

/// Copies the current parameter values out of `module` as a named-tensor
/// list: `{prefix}.p000`, `{prefix}.p001`, … in visit order.
///
/// [`Module::visit_params`] guarantees a stable order, so the index-based
/// names are a durable identity — this is the serialization hook the
/// checkpoint format (`metadpa-serve`) builds on.
pub fn named_snapshot(module: &mut dyn Module, prefix: &str) -> Vec<(String, Matrix)> {
    let mut out = Vec::new();
    module.visit_params(&mut |p| {
        out.push((format!("{prefix}.p{:03}", out.len()), p.value.clone()));
    });
    out
}

/// Writes a named-tensor list produced by [`named_snapshot`] back into
/// `module`, verifying names and shapes.
///
/// Unlike [`restore`] this is fallible rather than panicking: loading a
/// checkpoint from disk must surface mismatches (wrong architecture, wrong
/// prefix, truncated table) as typed errors, not aborts.
pub fn restore_named(
    module: &mut dyn Module,
    prefix: &str,
    tensors: &[(String, Matrix)],
) -> Result<(), String> {
    let mut idx = 0usize;
    let mut error: Option<String> = None;
    module.visit_params(&mut |p| {
        if error.is_some() {
            return;
        }
        let Some((name, value)) = tensors.get(idx) else {
            error = Some(format!(
                "missing tensor {prefix}.p{idx:03}: checkpoint has only {} tensors",
                tensors.len()
            ));
            return;
        };
        let want = format!("{prefix}.p{idx:03}");
        if name != &want {
            error = Some(format!("tensor {idx} is named {name:?}, expected {want:?}"));
            return;
        }
        if value.shape() != p.value.shape() {
            error = Some(format!(
                "tensor {want} has shape {:?}, module expects {:?}",
                value.shape(),
                p.value.shape()
            ));
            return;
        }
        p.value.assign(value);
        idx += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }
    if idx != tensors.len() {
        return Err(format!(
            "checkpoint has {} tensors under {prefix:?}, module consumed {idx}",
            tensors.len()
        ));
    }
    Ok(())
}

/// Copies the current gradients out of `module` in visit order.
///
/// Used by first-order MAML: query-set gradients computed at the adapted
/// parameters are harvested with this function and then applied to the
/// meta-parameters.
pub fn snapshot_grads(module: &mut dyn Module) -> Vec<Matrix> {
    let mut out = Vec::new();
    snapshot_grads_into(module, &mut out);
    out
}

/// Copies gradients into `out`, reusing its existing matrices — the
/// zero-allocation twin of [`snapshot_grads`].
pub fn snapshot_grads_into(module: &mut dyn Module, out: &mut Vec<Matrix>) {
    let mut idx = 0;
    module.visit_params(&mut |p| {
        match out.get_mut(idx) {
            Some(slot) => slot.assign(&p.grad),
            None => out.push(p.grad.clone()),
        }
        idx += 1;
    });
    out.truncate(idx);
}

/// Accumulates externally harvested gradients into `module`'s accumulators.
///
/// # Panics
/// Panics if `grads` does not match the module's parameter structure.
pub fn accumulate_grads(module: &mut dyn Module, grads: &[Matrix]) {
    let mut idx = 0;
    module.visit_params(&mut |p| {
        assert!(idx < grads.len(), "accumulate_grads: too few gradient matrices");
        p.grad.add_inplace(&grads[idx]);
        idx += 1;
    });
    assert_eq!(idx, grads.len(), "accumulate_grads: too many gradient matrices");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use metadpa_tensor::SeededRng;

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        let saved = snapshot(&mut layer);
        // Perturb.
        layer.visit_params(&mut |p| p.value.map_inplace(|v| v + 1.0));
        let perturbed = snapshot(&mut layer);
        assert_ne!(saved, perturbed);
        restore(&mut layer, &saved);
        assert_eq!(snapshot(&mut layer), saved);
    }

    #[test]
    #[should_panic(expected = "too few parameter matrices")]
    fn restore_rejects_short_snapshot() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        restore(&mut layer, &[]);
    }

    #[test]
    fn param_count_counts_scalars() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        // 3x2 weight + 1x2 bias.
        assert_eq!(layer.param_count(), 8);
    }

    #[test]
    fn named_snapshot_round_trips_and_rejects_mismatches() {
        let mut rng = SeededRng::new(7);
        let mut layer = Dense::new(3, 2, &mut rng);
        let named = named_snapshot(&mut layer, "demo");
        assert_eq!(named.len(), 2, "weight + bias");
        assert_eq!(named[0].0, "demo.p000");
        assert_eq!(named[1].0, "demo.p001");

        layer.visit_params(&mut |p| p.value.map_inplace(|v| v - 0.5));
        restore_named(&mut layer, "demo", &named).expect("round trip");
        assert_eq!(snapshot(&mut layer), named.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>());

        // Wrong prefix, short table, extra tensors, wrong shape: all typed
        // errors, never panics.
        assert!(restore_named(&mut layer, "other", &named).unwrap_err().contains("named"));
        assert!(restore_named(&mut layer, "demo", &named[..1]).unwrap_err().contains("missing"));
        let mut extra = named.clone();
        extra.push(("demo.p002".into(), Matrix::zeros(1, 1)));
        assert!(restore_named(&mut layer, "demo", &extra).unwrap_err().contains("consumed"));
        let mut bad_shape = named.clone();
        bad_shape[0].1 = Matrix::zeros(9, 9);
        assert!(restore_named(&mut layer, "demo", &bad_shape).unwrap_err().contains("shape"));
    }

    #[test]
    fn accumulate_grads_adds() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        let ones: Vec<Matrix> =
            snapshot(&mut layer).iter().map(|m| Matrix::filled(m.rows(), m.cols(), 1.0)).collect();
        accumulate_grads(&mut layer, &ones);
        accumulate_grads(&mut layer, &ones);
        layer.visit_params(&mut |p| {
            assert!(p.grad.as_slice().iter().all(|&g| (g - 2.0).abs() < 1e-6));
        });
    }
}

//! Trainable parameters: a value matrix paired with its gradient accumulator.

use metadpa_tensor::Matrix;

/// A trainable parameter.
///
/// `grad` always has the same shape as `value` and is *accumulated into* by
/// backward passes, so gradients from multiple loss terms (the Dual-CVAE
/// objective of Eq. 8 sums five of them) combine by simply running several
/// backward passes before an optimizer step.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current parameter values.
    pub value: Matrix,
    /// Accumulated gradient of the loss with respect to `value`.
    pub grad: Matrix,
}

impl Param {
    /// Creates a parameter with the given initial value and a zero gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Creates a zero-initialized parameter of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::new(Matrix::zeros(rows, cols))
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_of_same_shape() {
        let p = Param::new(Matrix::filled(2, 3, 1.5));
        assert_eq!(p.grad.shape(), (2, 3));
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Param::zeros(2, 2);
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }
}

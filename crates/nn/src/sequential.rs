//! Sequential composition of modules.

use metadpa_tensor::Matrix;

use crate::module::{Mode, Module};
use crate::param::Param;

/// A chain of modules applied in order.
///
/// `forward` threads the activation through every layer; `backward` replays
/// the chain in reverse. An empty `Sequential` is the identity.
///
/// Layers are `Send` so composed models can move across threads — the
/// serving stack shares one model behind a mutex.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module + Send>>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer, builder-style.
    pub fn push(mut self, layer: impl Module + Send + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Module + Send>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the chain contains no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        // Two ping-pong buffers instead of one fresh activation per layer;
        // `forward_into` is bit-identical layer by layer.
        let mut current = input.clone();
        let mut out = Matrix::default();
        self.forward_into(&mut current, mode, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut current = grad_output.clone();
        let mut out = Matrix::default();
        self.backward_into(&mut current, &mut out);
        out
    }

    fn forward_into(&mut self, input: &mut Matrix, mode: Mode, out: &mut Matrix) {
        // Ping-pong between the two caller buffers. Layers may steal the
        // source buffer for their activation cache (handing their previous
        // cache back), so both matrices are plain scratch throughout.
        let mut src_is_input = true;
        for layer in &mut self.layers {
            if src_is_input {
                layer.forward_into(input, mode, out);
            } else {
                layer.forward_into(out, mode, input);
            }
            src_is_input = !src_is_input;
        }
        if src_is_input {
            // Even-length chain (including the empty identity): the result
            // sits in `input`; move it to `out` without copying.
            std::mem::swap(input, out);
        }
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        let mut src_is_grad = true;
        for layer in self.layers.iter_mut().rev() {
            if src_is_grad {
                layer.backward_into(grad_output, out);
            } else {
                layer.backward_into(out, grad_output);
            }
            src_is_grad = !src_is_grad;
        }
        if src_is_grad {
            std::mem::swap(grad_output, out);
        }
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use metadpa_tensor::SeededRng;

    #[test]
    fn empty_sequential_is_identity() {
        let mut seq = Sequential::new();
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(seq.forward(&x, Mode::Train), x);
        assert_eq!(seq.backward(&x), x);
        assert!(seq.is_empty());
    }

    #[test]
    fn chain_composes_forward() {
        // Dense(identity weights) then ReLU: negative entries clamp.
        let w = Matrix::identity(2);
        let b = Matrix::row_vector(&[0.0, 0.0]);
        let mut seq = Sequential::new().push(Dense::from_parts(w, b)).push(Relu::new());
        let x = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        let y = seq.forward(&x, Mode::Train);
        assert_eq!(y, Matrix::from_vec(1, 2, vec![0.0, 2.0]));
        assert_eq!(seq.len(), 2);
    }

    #[test]
    fn backward_reverses_the_chain() {
        let w = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 2.0]);
        let b = Matrix::row_vector(&[0.0, 0.0]);
        let mut seq = Sequential::new().push(Dense::from_parts(w, b)).push(Relu::new());
        let x = Matrix::from_vec(1, 2, vec![-1.0, 1.0]);
        let _ = seq.forward(&x, Mode::Train);
        let dx = seq.backward(&Matrix::filled(1, 2, 1.0));
        // ReLU gates the first coordinate (pre-activation -2 < 0), Dense
        // doubles the surviving gradient.
        assert_eq!(dx, Matrix::from_vec(1, 2, vec![0.0, 2.0]));
    }

    #[test]
    fn visit_params_walks_all_layers() {
        let mut rng = SeededRng::new(1);
        let mut seq = Sequential::new()
            .push(Dense::new(4, 3, &mut rng))
            .push(Relu::new())
            .push(Dense::new(3, 2, &mut rng));
        // (4*3 + 3) + (3*2 + 2).
        assert_eq!(seq.param_count(), 23);
    }
}

//! Convenience builder for the multi-layer perceptrons used throughout the
//! paper (CVAE encoder/decoder stacks, the preference prediction model of
//! Eq. 11, and several baseline towers).

use metadpa_tensor::{Matrix, SeededRng};

use crate::activation::Relu;
use crate::dense::Dense;
use crate::module::{Mode, Module};
use crate::param::Param;
use crate::sequential::Sequential;

/// Hidden activation choice for [`Mlp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// ReLU hidden units (the preference model default).
    Relu,
    /// Tanh hidden units (the CVAE encoder default, following HCVAE).
    Tanh,
    /// Sigmoid hidden units.
    Sigmoid,
}

/// A feed-forward network: `Dense -> act -> ... -> Dense`, with a *linear*
/// final layer so callers can attach the output nonlinearity that matches
/// their loss (e.g. `bce_with_logits`, softmax, or a VAE split head).
pub struct Mlp {
    net: Sequential,
    in_dim: usize,
    out_dim: usize,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `&[64, 32, 16, 1]`
    /// gives `Dense(64,32) -> act -> Dense(32,16) -> act -> Dense(16,1)`.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], activation: Activation, rng: &mut SeededRng) -> Self {
        assert!(sizes.len() >= 2, "Mlp::new: need at least input and output sizes");
        let mut net = Sequential::new();
        for w in sizes.windows(2).enumerate() {
            let (idx, pair) = w;
            net.add(Box::new(Dense::new(pair[0], pair[1], rng)));
            let is_last = idx == sizes.len() - 2;
            if !is_last {
                match activation {
                    Activation::Relu => net.add(Box::new(Relu::new())),
                    Activation::Tanh => net.add(Box::new(crate::activation::Tanh::new())),
                    Activation::Sigmoid => net.add(Box::new(crate::activation::Sigmoid::new())),
                }
            }
        }
        Self { net, in_dim: sizes[0], out_dim: *sizes.last().expect("non-empty sizes") }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Module for Mlp {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        self.net.forward(input, mode)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        self.net.backward(grad_output)
    }

    fn forward_into(&mut self, input: &mut Matrix, mode: Mode, out: &mut Matrix) {
        self.net.forward_into(input, mode, out);
    }

    fn backward_into(&mut self, grad_output: &mut Matrix, out: &mut Matrix) {
        self.net.backward_into(grad_output, out);
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use crate::module::zero_grad;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn shapes_flow_through() {
        let mut rng = SeededRng::new(1);
        let mut mlp = Mlp::new(&[8, 16, 4], Activation::Relu, &mut rng);
        let x = rng.normal_matrix(5, 8);
        let y = mlp.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (5, 4));
        let dx = mlp.backward(&Matrix::zeros(5, 4));
        assert_eq!(dx.shape(), (5, 8));
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 4);
    }

    #[test]
    fn param_count_matches_architecture() {
        let mut rng = SeededRng::new(2);
        let mut mlp = Mlp::new(&[4, 3, 2], Activation::Tanh, &mut rng);
        // (4*3+3) + (3*2+2) = 15 + 8 = 23.
        assert_eq!(mlp.param_count(), 23);
    }

    #[test]
    fn learns_xor_like_nonlinear_function() {
        // y = x0 * x1 on {-1, 1}^2 is not linearly separable; a small MLP
        // must fit it, demonstrating end-to-end backprop through hidden
        // layers.
        let mut rng = SeededRng::new(3);
        let mut mlp = Mlp::new(&[2, 16, 1], Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(4, 2, vec![-1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, 1.0]);
        let y = Matrix::from_vec(4, 1, vec![1.0, -1.0, -1.0, 1.0]);
        let mut opt = Adam::new(0.02);
        let mut final_loss = f32::INFINITY;
        for _ in 0..800 {
            zero_grad(&mut mlp);
            let pred = mlp.forward(&x, Mode::Train);
            let (loss, grad) = mse(&pred, &y);
            let _ = mlp.backward(&grad);
            opt.step(&mut mlp);
            final_loss = loss;
        }
        assert!(final_loss < 1e-2, "XOR loss {final_loss}");
    }

    #[test]
    #[should_panic(expected = "need at least input and output")]
    fn rejects_single_size() {
        let mut rng = SeededRng::new(4);
        let _ = Mlp::new(&[4], Activation::Relu, &mut rng);
    }
}

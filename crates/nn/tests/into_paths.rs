//! The `_into` forward/backward paths must be bit-identical to the
//! allocating paths, layer by layer and through `Sequential`'s ping-pong
//! buffer scheme, at every `METADPA_THREADS` setting.

use metadpa_nn::module::{snapshot_grads, zero_grad};
use metadpa_nn::{Dense, LeakyRelu, Mode, Module, Relu, Sequential, Sigmoid, Softmax, Tanh};
use metadpa_tensor::pool::with_threads;
use metadpa_tensor::{Matrix, SeededRng};

fn assert_bits(name: &str, want: &Matrix, got: &Matrix) {
    assert_eq!(want.shape(), got.shape(), "{name}: shape drift");
    for (i, (a, b)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: element {i} differs: {a} vs {b}");
    }
}

/// A chain touching every activation plus three Dense layers (odd and even
/// prefixes are both exercised by the ping-pong logic).
fn build_model(seed: u64) -> Sequential {
    let mut rng = SeededRng::new(seed);
    Sequential::new()
        .push(Dense::new(6, 8, &mut rng))
        .push(Relu::new())
        .push(Dense::new(8, 8, &mut rng))
        .push(LeakyRelu::new(0.1))
        .push(Tanh::new())
        .push(Dense::new(8, 4, &mut rng))
        .push(Softmax::new())
        .push(Sigmoid::new())
}

#[test]
fn sequential_forward_backward_into_is_bit_identical() {
    for threads in [1usize, 2, 7] {
        with_threads(threads, || {
            let mut reference = build_model(3);
            let mut tested = build_model(3);
            let mut rng = SeededRng::new(99);
            // Reused buffers across steps: nothing from a previous step may
            // leak into the next.
            let (mut input, mut out) = (Matrix::default(), Matrix::default());
            let (mut grad, mut dx) = (Matrix::default(), Matrix::default());
            for step in 0..3 {
                let x = rng.normal_matrix(5, 6);
                let g = rng.normal_matrix(5, 4);
                zero_grad(&mut reference);
                zero_grad(&mut tested);

                let want_y = reference.forward(&x, Mode::Train);
                let want_dx = reference.backward(&g);

                input.assign(&x);
                tested.forward_into(&mut input, Mode::Train, &mut out);
                grad.assign(&g);
                tested.backward_into(&mut grad, &mut dx);

                assert_bits(&format!("forward step {step} threads {threads}"), &want_y, &out);
                assert_bits(&format!("backward step {step} threads {threads}"), &want_dx, &dx);
                let want_grads = snapshot_grads(&mut reference);
                let got_grads = snapshot_grads(&mut tested);
                for (i, (w, g2)) in want_grads.iter().zip(&got_grads).enumerate() {
                    assert_bits(&format!("param grad {i} step {step}"), w, g2);
                }
            }
        });
    }
}

#[test]
fn empty_sequential_forward_into_is_identity() {
    let mut seq = Sequential::new();
    let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    let mut input = x.clone();
    let mut out = Matrix::default();
    seq.forward_into(&mut input, Mode::Train, &mut out);
    assert_eq!(out, x);
    let mut grad = x.clone();
    let mut dx = Matrix::default();
    seq.backward_into(&mut grad, &mut dx);
    assert_eq!(dx, x);
}

#[test]
fn dense_forward_into_steals_the_input_buffer() {
    let mut rng = SeededRng::new(5);
    let mut layer = Dense::new(3, 2, &mut rng);
    let mut input = rng.normal_matrix(4, 3);
    let input_ptr = input.as_slice().as_ptr();
    let mut out = Matrix::default();
    layer.forward_into(&mut input, Mode::Train, &mut out);
    // Backward still sees the stolen activation (same storage, no copy)...
    let mut grad = rng.normal_matrix(4, 2);
    let mut dx = Matrix::default();
    layer.backward_into(&mut grad, &mut dx);
    assert_eq!(dx.shape(), (4, 3));
    // ...and the caller's buffer was swapped, not cloned: a second forward
    // hands the first buffer back.
    let mut second = rng.normal_matrix(4, 3);
    layer.forward_into(&mut second, Mode::Train, &mut out);
    assert_eq!(second.as_slice().as_ptr(), input_ptr, "handoff must recycle the cache buffer");
}

#[test]
fn default_into_impls_fall_back_to_allocating_paths() {
    // A module that only implements the allocating API must work through
    // the `_into` entry points unchanged.
    struct Doubler;
    impl Module for Doubler {
        fn forward(&mut self, input: &Matrix, _mode: Mode) -> Matrix {
            input.scale(2.0)
        }
        fn backward(&mut self, grad_output: &Matrix) -> Matrix {
            grad_output.scale(2.0)
        }
        fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut metadpa_nn::Param)) {}
    }
    let mut seq = Sequential::new().push(Doubler).push(Doubler);
    let mut input = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
    let mut out = Matrix::default();
    seq.forward_into(&mut input, Mode::Eval, &mut out);
    assert_eq!(out, Matrix::from_vec(1, 2, vec![4.0, -8.0]));
}

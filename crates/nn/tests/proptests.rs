//! Property-based verification of the NN substrate: random architectures,
//! random points, gradients must match finite differences; optimizers must
//! descend.
//!
//! The randomized `proptest` suite is opt-in (`--features proptest`): the
//! build environment is offline, so the `proptest` crate cannot be a
//! default dev-dependency. To run it, restore `proptest = "1"` under
//! `[dev-dependencies]` and enable the feature. The `deterministic` module
//! below always compiles and checks the same invariants at fixed seeds.

use metadpa_nn::grad_check::check_module;
use metadpa_nn::loss::{bce_with_logits, mse};
use metadpa_nn::mlp::{Activation, Mlp};
use metadpa_nn::module::{zero_grad, Mode, Module};
use metadpa_nn::{Adam, Dense, Optimizer, Sequential, Sigmoid, Tanh};
use metadpa_tensor::SeededRng;

const SEEDS: [u64; 6] = [0, 1, 7, 42, 1234, 9999];

mod deterministic {
    use super::*;

    /// Any Dense layer at any random point has verifiable gradients.
    #[test]
    fn dense_gradcheck_holds_everywhere() {
        for (i, &seed) in SEEDS.iter().enumerate() {
            let (in_dim, out_dim, batch) = (1 + i % 7, 1 + (i * 3) % 7, 1 + i % 4);
            let mut rng = SeededRng::new(seed);
            let mut layer = Dense::new(in_dim, out_dim, &mut rng);
            let input = rng.normal_matrix(batch, in_dim);
            let upstream = rng.normal_matrix(batch, out_dim);
            let report = check_module(&mut layer, &input, &upstream, 1e-2);
            assert!(report.passes(5e-3), "{report:?}");
        }
    }

    /// Random two-hidden-layer MLPs with smooth activations gradcheck.
    #[test]
    fn random_mlp_gradcheck() {
        for (i, &seed) in SEEDS.iter().enumerate() {
            let (h1, h2) = (2 + i % 5, 2 + (i * 2) % 5);
            let mut rng = SeededRng::new(seed);
            let mut mlp = Mlp::new(&[4, h1, h2, 2], Activation::Tanh, &mut rng);
            let input = rng.normal_matrix(3, 4);
            let upstream = rng.normal_matrix(3, 2);
            let report = check_module(&mut mlp, &input, &upstream, 1e-2);
            assert!(report.passes(2e-2), "{report:?}");
        }
    }

    /// BCE-with-logits gradients match finite differences, incl. soft labels.
    #[test]
    fn bce_gradcheck() {
        for &seed in &SEEDS {
            let mut rng = SeededRng::new(seed);
            let logits = rng.normal_matrix(2, 4);
            let targets = rng.uniform_matrix(2, 4, 0.0, 1.0);
            let (_, grad) = bce_with_logits(&logits, &targets);
            let eps = 1e-2;
            for i in 0..logits.len() {
                let mut p = logits.clone();
                p.as_mut_slice()[i] += eps;
                let mut m = logits.clone();
                m.as_mut_slice()[i] -= eps;
                let numeric = (bce_with_logits(&p, &targets).0 - bce_with_logits(&m, &targets).0)
                    / (2.0 * eps);
                assert!((numeric - grad.as_slice()[i]).abs() < 5e-3);
            }
        }
    }

    /// Adam steps on a quadratic reduce the loss.
    #[test]
    fn adam_descends_quadratics() {
        for &seed in &SEEDS {
            let mut rng = SeededRng::new(seed);
            let mut layer = Dense::new(3, 1, &mut rng);
            let x = rng.normal_matrix(6, 3);
            let y = rng.normal_matrix(6, 1);
            let mut opt = Adam::new(0.01);
            let loss_at = |layer: &mut Dense| {
                let pred = layer.forward(&x, Mode::Eval);
                mse(&pred, &y).0
            };
            let before = loss_at(&mut layer);
            for _ in 0..50 {
                zero_grad(&mut layer);
                let pred = layer.forward(&x, Mode::Train);
                let (_, grad) = mse(&pred, &y);
                let _ = layer.backward(&grad);
                opt.step(&mut layer);
            }
            let after = loss_at(&mut layer);
            assert!(after <= before + 1e-6, "loss rose: {before} -> {after}");
        }
    }

    /// snapshot -> perturb -> restore is exact for arbitrary composites.
    #[test]
    fn snapshot_restore_exact() {
        use metadpa_nn::module::{restore, snapshot};
        for &seed in &SEEDS {
            let mut rng = SeededRng::new(seed);
            let mut net = Sequential::new()
                .push(Dense::new(3, 4, &mut rng))
                .push(Tanh::new())
                .push(Dense::new(4, 2, &mut rng))
                .push(Sigmoid::new());
            let saved = snapshot(&mut net);
            net.visit_params(&mut |p| p.value.map_inplace(|v| v * 1.7 - 0.3));
            restore(&mut net, &saved);
            assert_eq!(snapshot(&mut net), saved);
        }
    }

    /// Forward in Eval mode is deterministic: two calls agree exactly.
    #[test]
    fn eval_forward_is_deterministic() {
        for &seed in &SEEDS {
            let mut rng = SeededRng::new(seed);
            let mut net = Sequential::new()
                .push(Dense::new(4, 4, &mut rng))
                .push(metadpa_nn::Dropout::new(0.5, &mut rng))
                .push(Dense::new(4, 2, &mut rng));
            let x = rng.normal_matrix(3, 4);
            let a = net.forward(&x, Mode::Eval);
            let b = net.forward(&x, Mode::Eval);
            assert_eq!(a, b);
        }
    }

    /// Gradient accumulation is additive: two backward passes produce twice
    /// the gradient of one.
    #[test]
    fn backward_accumulates_linearly() {
        for &seed in &SEEDS {
            let mut rng = SeededRng::new(seed);
            let mut layer = Dense::new(3, 2, &mut rng);
            let x = rng.normal_matrix(2, 3);
            let g = rng.normal_matrix(2, 2);

            zero_grad(&mut layer);
            let _ = layer.forward(&x, Mode::Train);
            let _ = layer.backward(&g);
            let mut single = Vec::new();
            layer.visit_params(&mut |p| single.push(p.grad.clone()));

            zero_grad(&mut layer);
            let _ = layer.forward(&x, Mode::Train);
            let _ = layer.backward(&g);
            let _ = layer.forward(&x, Mode::Train);
            let _ = layer.backward(&g);
            let mut double = Vec::new();
            layer.visit_params(&mut |p| double.push(p.grad.clone()));

            for (s, d) in single.iter().zip(double.iter()) {
                for (a, b) in s.as_slice().iter().zip(d.as_slice().iter()) {
                    assert!((2.0 * a - b).abs() < 1e-4 * (1.0 + b.abs()));
                }
            }
        }
    }

    /// InfoNCE prefers the true (diagonal) pairing over a derangement when
    /// the two sides are strongly correlated.
    #[test]
    fn infonce_prefers_true_pairing() {
        use metadpa_nn::infonce::InfoNce;
        for &seed in &SEEDS {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(6, 5);
            let b = &a.scale(1.0) + &rng.normal_matrix(6, 5).scale(0.01);
            let nce = InfoNce::new(0.2);
            let aligned = nce.forward(&a, &b).loss;
            // Cyclic shift = a derangement: every row mismatched.
            let shifted: Vec<usize> = (0..6).map(|i| (i + 1) % 6).collect();
            let misaligned = nce.forward(&a, &b.gather_rows(&shifted)).loss;
            assert!(aligned < misaligned);
        }
    }
}

#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any Dense layer at any random point has verifiable gradients.
        #[test]
        fn dense_gradcheck_holds_everywhere(
            seed in 0u64..10_000,
            in_dim in 1usize..8,
            out_dim in 1usize..8,
            batch in 1usize..5,
        ) {
            let mut rng = SeededRng::new(seed);
            let mut layer = Dense::new(in_dim, out_dim, &mut rng);
            let input = rng.normal_matrix(batch, in_dim);
            let upstream = rng.normal_matrix(batch, out_dim);
            let report = check_module(&mut layer, &input, &upstream, 1e-2);
            prop_assert!(report.passes(5e-3), "{report:?}");
        }

        /// Random two-hidden-layer MLPs with smooth activations gradcheck.
        #[test]
        fn random_mlp_gradcheck(
            seed in 0u64..10_000,
            h1 in 2usize..7,
            h2 in 2usize..7,
        ) {
            let mut rng = SeededRng::new(seed);
            let mut mlp = Mlp::new(&[4, h1, h2, 2], Activation::Tanh, &mut rng);
            let input = rng.normal_matrix(3, 4);
            let upstream = rng.normal_matrix(3, 2);
            let report = check_module(&mut mlp, &input, &upstream, 1e-2);
            prop_assert!(report.passes(2e-2), "{report:?}");
        }

        /// One Adam run on a quadratic always reduces the loss.
        #[test]
        fn adam_descends_quadratics(seed in 0u64..10_000) {
            let mut rng = SeededRng::new(seed);
            let mut layer = Dense::new(3, 1, &mut rng);
            let x = rng.normal_matrix(6, 3);
            let y = rng.normal_matrix(6, 1);
            let mut opt = Adam::new(0.01);
            let loss_at = |layer: &mut Dense| {
                let pred = layer.forward(&x, Mode::Eval);
                mse(&pred, &y).0
            };
            let before = loss_at(&mut layer);
            for _ in 0..50 {
                zero_grad(&mut layer);
                let pred = layer.forward(&x, Mode::Train);
                let (_, grad) = mse(&pred, &y);
                let _ = layer.backward(&grad);
                opt.step(&mut layer);
            }
            let after = loss_at(&mut layer);
            prop_assert!(after <= before + 1e-6, "loss rose: {before} -> {after}");
        }

        /// snapshot -> perturb -> restore is exact for arbitrary composites.
        #[test]
        fn snapshot_restore_exact(seed in 0u64..10_000) {
            use metadpa_nn::module::{restore, snapshot};
            let mut rng = SeededRng::new(seed);
            let mut net = Sequential::new()
                .push(Dense::new(3, 4, &mut rng))
                .push(Tanh::new())
                .push(Dense::new(4, 2, &mut rng))
                .push(Sigmoid::new());
            let saved = snapshot(&mut net);
            net.visit_params(&mut |p| p.value.map_inplace(|v| v * 1.7 - 0.3));
            restore(&mut net, &saved);
            prop_assert_eq!(snapshot(&mut net), saved);
        }
    }
}

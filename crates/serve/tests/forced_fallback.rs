//! End-to-end forced-fallback parity: train → export → serve must produce
//! identical bytes and identical scores whether the exact SIMD kernels or
//! the scalar kernels run underneath.
//!
//! `METADPA_SIMD=off` resolves every matmul to the scalar family — the
//! byte-for-byte pre-SIMD code path. The default dispatch resolves to the
//! exact-parity SIMD kernels on AVX2 hosts. The contract is that the two
//! are indistinguishable from outside: the same training run yields the
//! same θ, the same exported artifact bytes, and the same served scores.
//!
//! In-process the suite models the env switch with the thread-local
//! [`Policy::ForcedScalar`] override (the env var is read once per
//! process, so it cannot be toggled here). `scripts/ci.sh` then runs this
//! whole test binary a second time with `METADPA_SIMD=off` actually set,
//! which drives the same assertions through the real env path — on that
//! pass both sides resolve to scalar and the test pins that the scalar
//! route is self-consistent.

use metadpa_core::artifact::{artifact_from_learner, Artifact, Precision};
use metadpa_core::augmentation::DiversityReport;
use metadpa_core::{MamlConfig, MetaLearner, PreferenceConfig};
use metadpa_data::task::Task;
use metadpa_serve::{load_artifact, save_artifact};
use metadpa_tensor::simd::{self, Policy};
use metadpa_tensor::{Matrix, SeededRng};

const N_USERS: usize = 10;
const N_ITEMS: usize = 24;
const CONTENT_DIM: usize = 6;

/// A small but non-trivial task universe: enough items and epochs that
/// the training matmuls cross the blocking thresholds and the dispatch
/// choice actually matters.
fn toy_world(rng: &mut SeededRng) -> (Vec<Task>, Matrix, Matrix) {
    let user_content = Matrix::from_fn(N_USERS, CONTENT_DIM, |u, c| {
        let sign = if u % 2 == 0 { 1.0 } else { -1.0 };
        sign * (0.3 + 0.1 * c as f32) + 0.01 * rng.normal()
    });
    let item_content = Matrix::from_fn(N_ITEMS, CONTENT_DIM, |i, c| {
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        sign * (0.3 + 0.05 * c as f32) + 0.01 * rng.normal()
    });
    let mut tasks = Vec::new();
    for u in 0..N_USERS {
        let mut pairs: Vec<(usize, f32)> =
            (0..N_ITEMS).map(|i| (i, if (u % 2) == (i % 2) { 1.0 } else { 0.0 })).collect();
        rng.shuffle(&mut pairs);
        let (s, q) = pairs.split_at(N_ITEMS / 2);
        tasks.push(Task { user: u, support: s.to_vec(), query: q.to_vec() });
    }
    (tasks, user_content, item_content)
}

/// Train a learner and export an artifact, entirely under `policy`.
fn train_and_export(policy: Policy, precision: Precision) -> Artifact {
    simd::with_policy(policy, || {
        let mut rng = SeededRng::new(4242);
        let (tasks, user_content, item_content) = toy_world(&mut rng);
        let pref = PreferenceConfig { content_dim: CONTENT_DIM, embed_dim: 5, hidden: [8, 4] };
        let maml = MamlConfig { finetune_steps: 2, ..MamlConfig::default() };
        let mut learner = MetaLearner::new(pref, maml, &mut rng);
        learner.meta_train(&tasks, &user_content, &item_content);
        let mut artifact = artifact_from_learner(
            &mut learner,
            "forced-fallback",
            "rev".into(),
            "fp".into(),
            DiversityReport::default(),
            user_content,
            item_content,
            String::new(),
        );
        artifact.meta.precision = precision;
        artifact
    })
}

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("metadpa_fallback_{tag}_{}.ckpt", std::process::id()))
        .to_string_lossy()
        .to_string()
}

fn export_bytes(tag: &str, artifact: &Artifact) -> Vec<u8> {
    let path = temp_path(tag);
    save_artifact(&path, artifact).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn training_and_export_bytes_are_identical_with_simd_on_and_off() {
    let auto = train_and_export(Policy::Auto, Precision::F64);
    let scalar = train_and_export(Policy::ForcedScalar, Precision::F64);
    let auto_bytes = export_bytes("auto", &auto);
    let scalar_bytes = export_bytes("scalar", &scalar);
    assert_eq!(
        auto_bytes, scalar_bytes,
        "the default dispatch must reproduce the scalar training run byte for byte"
    );
}

#[test]
fn served_scores_are_identical_with_simd_on_and_off() {
    // One artifact (default precision), scored under both dispatch
    // resolutions: warm users and a cold content vector must come out
    // bit-identical, ranks and scores both.
    let path = temp_path("serve");
    save_artifact(&path, &train_and_export(Policy::Auto, Precision::F64)).expect("save");
    let cold: Vec<f32> = (0..CONTENT_DIM).map(|c| 0.1 * c as f32 - 0.25).collect();

    let run = |policy: Policy| {
        simd::with_policy(policy, || {
            let mut rec =
                load_artifact(&path).expect("load").into_recommender().expect("recommender");
            let mut out = Vec::new();
            for user in 0..N_USERS {
                out.push(rec.recommend(user, 5, None).expect("warm"));
            }
            out.push(rec.recommend_content(&cold, 5, None).expect("cold"));
            out
        })
    };
    let auto = run(Policy::Auto);
    let scalar = run(Policy::ForcedScalar);
    let _ = std::fs::remove_file(&path);

    for (req, (a, s)) in auto.iter().zip(&scalar).enumerate() {
        assert_eq!(a.len(), s.len(), "request {req}: list length");
        for ((ai, av), (si, sv)) in a.iter().zip(s) {
            assert_eq!(ai, si, "request {req}: item rank drift");
            assert_eq!(av.to_bits(), sv.to_bits(), "request {req}: score drift: {av} vs {sv}");
        }
    }
}

#[test]
fn f32_artifacts_serve_close_to_the_default_artifact() {
    // The f32 artifact runs the fused kernels; it trades bit-parity for
    // throughput, so the contract is closeness, not identity: same
    // universe, scores within the documented epsilon (DESIGN.md §14).
    let f64_path = temp_path("f64");
    let f32_path = temp_path("f32");
    save_artifact(&f64_path, &train_and_export(Policy::Auto, Precision::F64)).expect("save f64");
    save_artifact(&f32_path, &train_and_export(Policy::Auto, Precision::F32)).expect("save f32");

    let mut exact =
        load_artifact(&f64_path).expect("load").into_recommender().expect("recommender");
    let mut fused =
        load_artifact(&f32_path).expect("load").into_recommender().expect("recommender");
    assert_eq!(exact.meta().precision, Precision::F64);
    assert_eq!(fused.meta().precision, Precision::F32);

    for user in 0..N_USERS {
        exact.recommend(user, N_ITEMS, None).expect("warm f64");
        let a: Vec<f32> = exact.last_scores().to_vec();
        fused.recommend(user, N_ITEMS, None).expect("warm f32");
        let b: Vec<f32> = fused.last_scores().to_vec();
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
            assert!(
                (x - y).abs() <= tol,
                "user {user} item {i}: fused score {y} vs exact {x} (tol {tol})"
            );
        }
    }
    let _ = std::fs::remove_file(&f64_path);
    let _ = std::fs::remove_file(&f32_path);
}

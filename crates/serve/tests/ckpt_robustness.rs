//! Robustness of the `metadpa-ckpt/v1` loader: every way a file can be
//! damaged must surface as a typed [`CkptError`] naming the file and a
//! byte offset — never a panic, never a silent success.

use metadpa_core::artifact::{artifact_from_learner, Artifact};
use metadpa_core::augmentation::DiversityReport;
use metadpa_core::{MamlConfig, MetaLearner, PreferenceConfig};
use metadpa_serve::ckpt::{self, CkptErrorKind};
use metadpa_serve::{load_artifact, save_artifact};
use metadpa_tensor::SeededRng;

fn tiny_artifact(seed: u64) -> Artifact {
    let pref = PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] };
    let maml = MamlConfig { finetune_steps: 2, ..MamlConfig::default() };
    let mut rng = SeededRng::new(seed);
    let mut learner = MetaLearner::new(pref, maml, &mut rng);
    let user_content = rng.uniform_matrix(4, 6, -1.0, 1.0);
    let item_content = rng.uniform_matrix(9, 6, -1.0, 1.0);
    artifact_from_learner(
        &mut learner,
        "robustness",
        "rev".into(),
        "fp".into(),
        DiversityReport::default(),
        user_content,
        item_content,
        String::new(),
    )
}

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("metadpa_ckpt_{tag}_{}.ckpt", std::process::id()))
        .to_string_lossy()
        .to_string()
}

#[test]
fn save_load_save_is_byte_identical() {
    let artifact = tiny_artifact(1);
    let first = temp_path("first");
    let second = temp_path("second");
    save_artifact(&first, &artifact).expect("first save");
    let reloaded = load_artifact(&first).expect("load");
    save_artifact(&second, &reloaded).expect("second save");
    let a = std::fs::read(&first).expect("read first");
    let b = std::fs::read(&second).expect("read second");
    assert_eq!(a, b, "save -> load -> save must be byte-identical");
    let _ = std::fs::remove_file(&first);
    let _ = std::fs::remove_file(&second);
}

#[test]
fn every_truncation_fails_typed_and_never_panics() {
    let artifact = tiny_artifact(2);
    let bytes = ckpt::encode(&metadpa_serve::artifact_io::to_checkpoint(&artifact));
    // Every strict prefix must fail cleanly. Step through the small file
    // densely near the front (where the structure lives) and coarsely in
    // the payload.
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(97));
    for cut in cuts {
        let err = ckpt::decode("trunc", &bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes must not decode"));
        assert!(
            matches!(
                err.kind,
                CkptErrorKind::Truncated | CkptErrorKind::Corrupt | CkptErrorKind::Malformed
            ),
            "cut {cut}: unexpected kind {:?}",
            err.kind
        );
        assert_eq!(err.path, "trunc", "errors must name the file");
        assert!(err.offset <= cut as u64, "offset {} past the cut {cut}", err.offset);
    }
}

#[test]
fn every_single_byte_flip_is_caught() {
    let artifact = tiny_artifact(3);
    let bytes = ckpt::encode(&metadpa_serve::artifact_io::to_checkpoint(&artifact));
    // Flip one bit in every byte position (coarser in the big payload).
    let mut positions: Vec<usize> = (0..128.min(bytes.len())).collect();
    positions.extend((128..bytes.len()).step_by(211));
    for pos in positions {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0x01;
        match ckpt::decode("flip", &mutated) {
            // A flipped payload bit that still decodes structurally must
            // die on the CRC; flips in length fields may die structurally
            // first. Either way: typed, with the file name attached.
            Err(err) => assert_eq!(err.path, "flip", "byte {pos}"),
            Ok(_) => panic!("flipping byte {pos} went undetected"),
        }
    }
}

#[test]
fn wrong_magic_and_future_version_name_the_offset() {
    let artifact = tiny_artifact(4);
    let bytes = ckpt::encode(&metadpa_serve::artifact_io::to_checkpoint(&artifact));

    let mut not_ours = bytes.clone();
    not_ours[..8].copy_from_slice(b"PNGJPEG!");
    let err = ckpt::decode("magic", &not_ours).unwrap_err();
    assert_eq!(err.kind, CkptErrorKind::BadMagic);
    assert_eq!(err.offset, 0);
    assert!(err.to_string().contains("not a metadpa checkpoint"), "{err}");

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&42u32.to_le_bytes());
    let err = ckpt::decode("future", &future).unwrap_err();
    assert_eq!(err.kind, CkptErrorKind::UnsupportedVersion);
    assert_eq!(err.offset, 8);
    assert!(err.to_string().contains("version 42"), "{err}");
}

#[test]
fn io_errors_and_garbage_files_are_typed() {
    let err = load_artifact("/nonexistent/dir/nope.ckpt").unwrap_err();
    assert_eq!(err.kind, CkptErrorKind::Io);

    let path = temp_path("garbage");
    std::fs::write(&path, b"this is not a checkpoint at all").expect("write garbage");
    let err = load_artifact(&path).unwrap_err();
    assert_eq!(err.kind, CkptErrorKind::BadMagic);
    assert!(err.to_string().contains(&path), "error must name the file: {err}");
    let _ = std::fs::remove_file(&path);

    let empty = temp_path("empty");
    std::fs::write(&empty, b"").expect("write empty");
    let err = load_artifact(&empty).unwrap_err();
    assert_eq!(err.kind, CkptErrorKind::Truncated);
    let _ = std::fs::remove_file(&empty);
}

#[test]
fn damaged_artifacts_never_reach_the_recommender() {
    // The full path a server takes at startup: load + into_recommender.
    // Remove the item-content tensor by rewriting the checkpoint.
    let artifact = tiny_artifact(5);
    let mut ckpt = metadpa_serve::artifact_io::to_checkpoint(&artifact);
    ckpt.tensors.retain(|(n, _)| n != "content.item");
    let path = temp_path("no_items");
    ckpt::save(&path, &ckpt).expect("save");
    let err = load_artifact(&path).unwrap_err();
    assert_eq!(err.kind, CkptErrorKind::Malformed);
    assert!(err.to_string().contains("content.item"), "{err}");
    let _ = std::fs::remove_file(&path);
}

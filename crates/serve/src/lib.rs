//! # metadpa-serve
//!
//! The serving side of the MetaDPA reproduction: versioned model
//! checkpoints and a cold-start inference server whose distinguishing
//! feature is *serve-time MAML adaptation* — the same inner loop that
//! meta-testing uses offline ([`metadpa_core::MetaLearner::fine_tune`])
//! runs per request on a cold user's handful of support ratings.
//!
//! Three layers, each usable on its own:
//!
//! 1. [`ckpt`] — the `metadpa-ckpt/v1` on-disk format: a zero-dependency
//!    binary container for named tensors plus a JSON metadata blob,
//!    CRC-protected, with typed load errors that name the file and byte
//!    offset ([`ckpt::CkptError`]).
//! 2. [`artifact_io`] — maps [`metadpa_core::Artifact`] (what a fitted
//!    pipeline exports) onto that container, so a model round-trips
//!    through disk bit-exactly.
//! 3. [`engine`] + [`http`] + [`server`] — a thread-safe inference engine
//!    with an LRU-bounded per-user adaptation cache, a minimal HTTP/1.1
//!    server on `std::net` with a fixed worker pool and graceful shutdown,
//!    and the route table (`/v1/recommend`, `/v1/adapt`, `/v1/feedback`,
//!    `/health`, `/metrics`). The engine implements
//!    [`metadpa_feedback::FeedbackSink`], so the streaming feedback
//!    adapter can graduate cold users into the adapted cache live.
//!
//! Everything is `std`-only, matching the workspace's offline-build
//! constraint; JSON is read and written with `metadpa_obs::json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact_io;
pub mod ckpt;
pub mod engine;
pub mod http;
pub mod server;

pub use artifact_io::{load_artifact, save_artifact};
pub use ckpt::{Checkpoint, CkptError, CkptErrorKind};
pub use engine::Engine;
pub use http::{Server, ServerConfig};
pub use server::{router, router_with_feedback};

//! Persisting [`Artifact`] values in the `metadpa-ckpt/v1` container.
//!
//! The artifact's metadata becomes the checkpoint's JSON blob (schema
//! [`metadpa_core::artifact::ARTIFACT_SCHEMA`]); its tensors are the
//! preference-model parameter table (`preference.pNNN`, in visit order)
//! followed by the two content matrices (`content.user`, `content.item`).
//! All floats survive the f32 → f64 → f32 trip exactly, so
//! save → load → [`Artifact::into_recommender`] scores bit-identically
//! to the model that was exported.

use metadpa_core::artifact::{
    Artifact, ArtifactMeta, Precision, ScoreFingerprint, ARTIFACT_SCHEMA, PARAM_PREFIX,
};
use metadpa_core::augmentation::DiversityReport;
use metadpa_core::{MamlConfig, PreferenceConfig};
use metadpa_obs::json::{self, JsonValue, ObjectWriter};
use metadpa_tensor::Matrix;

use crate::ckpt::{self, Checkpoint, CkptError, CkptErrorKind};

/// Tensor name of the user-content matrix.
pub const USER_CONTENT_TENSOR: &str = "content.user";
/// Tensor name of the item-content matrix.
pub const ITEM_CONTENT_TENSOR: &str = "content.item";

/// Byte offset of the metadata blob inside a v1 checkpoint (magic +
/// version + meta_len); metadata-level load errors point here.
const META_OFFSET: u64 = 20;

fn f32_array_json(vals: &[f32]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json::number(*v as f64));
    }
    s.push(']');
    s
}

fn meta_to_json(meta: &ArtifactMeta) -> String {
    let mut pref = ObjectWriter::new();
    pref.u64_field("content_dim", meta.preference.content_dim as u64)
        .u64_field("embed_dim", meta.preference.embed_dim as u64)
        .u64_field("hidden0", meta.preference.hidden[0] as u64)
        .u64_field("hidden1", meta.preference.hidden[1] as u64);
    let mut maml = ObjectWriter::new();
    maml.f64_field("inner_lr", meta.maml.inner_lr as f64)
        .f64_field("outer_lr", meta.maml.outer_lr as f64)
        .u64_field("inner_steps", meta.maml.inner_steps as u64)
        .u64_field("meta_batch", meta.maml.meta_batch as u64)
        .u64_field("epochs", meta.maml.epochs as u64)
        .u64_field("finetune_steps", meta.maml.finetune_steps as u64)
        .u64_field("seed", meta.maml.seed);
    let mut div = ObjectWriter::new();
    div.u64_field("k", meta.diversity.k as u64)
        .f64_field("mean_pairwise_distance", meta.diversity.mean_pairwise_distance as f64)
        .f64_field("mean_confidence", meta.diversity.mean_confidence as f64);
    let mut fp = ObjectWriter::new();
    fp.raw_field("probs", &f32_array_json(&meta.score_fingerprint.probs))
        .raw_field("quantiles", &f32_array_json(&meta.score_fingerprint.quantiles));
    let mut w = ObjectWriter::new();
    w.str_field("schema", &meta.schema)
        .str_field("model", &meta.model_name)
        .str_field("git_rev", &meta.git_rev)
        .str_field("data_fingerprint", &meta.data_fingerprint)
        .raw_field("preference", &pref.finish())
        .raw_field("maml", &maml.finish())
        .raw_field("diversity", &div.finish())
        .raw_field("score_fingerprint", &fp.finish())
        .str_field("run_id", &meta.run_id);
    // Emitted only for f32-precision artifacts: the field doubles as the
    // checkpoint codec's payload-width switch
    // ([`crate::ckpt::F32_ENCODING_MARKER`]), and omitting it for the
    // default keeps every f64 export byte-identical to older writers.
    if meta.precision == Precision::F32 {
        w.str_field("tensor_encoding", meta.precision.as_str());
    }
    w.finish()
}

fn meta_err(path: &str, message: impl Into<String>) -> CkptError {
    CkptError {
        path: path.to_string(),
        offset: META_OFFSET,
        kind: CkptErrorKind::Malformed,
        message: message.into(),
    }
}

fn get<'a>(obj: &'a JsonValue, key: &str, path: &str) -> Result<&'a JsonValue, CkptError> {
    obj.get(key).ok_or_else(|| meta_err(path, format!("metadata is missing {key:?}")))
}

fn get_str(obj: &JsonValue, key: &str, path: &str) -> Result<String, CkptError> {
    get(obj, key, path)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| meta_err(path, format!("metadata field {key:?} must be a string")))
}

fn get_usize(obj: &JsonValue, key: &str, path: &str) -> Result<usize, CkptError> {
    get(obj, key, path)?
        .as_u64()
        .map(|v| v as usize)
        .ok_or_else(|| meta_err(path, format!("metadata field {key:?} must be an integer")))
}

fn get_f32(obj: &JsonValue, key: &str, path: &str) -> Result<f32, CkptError> {
    get(obj, key, path)?
        .as_f64()
        .map(|v| v as f32)
        .ok_or_else(|| meta_err(path, format!("metadata field {key:?} must be a number")))
}

fn meta_from_json(path: &str, meta_json: &str) -> Result<ArtifactMeta, CkptError> {
    let root = json::parse(meta_json)
        .map_err(|e| meta_err(path, format!("metadata does not parse as JSON: {e}")))?;
    let schema = get_str(&root, "schema", path)?;
    if schema != ARTIFACT_SCHEMA {
        return Err(meta_err(
            path,
            format!("artifact schema {schema:?} is not the supported {ARTIFACT_SCHEMA:?}"),
        ));
    }
    let pref = get(&root, "preference", path)?;
    let preference = PreferenceConfig {
        content_dim: get_usize(pref, "content_dim", path)?,
        embed_dim: get_usize(pref, "embed_dim", path)?,
        hidden: [get_usize(pref, "hidden0", path)?, get_usize(pref, "hidden1", path)?],
    };
    let m = get(&root, "maml", path)?;
    let maml = MamlConfig {
        inner_lr: get_f32(m, "inner_lr", path)?,
        outer_lr: get_f32(m, "outer_lr", path)?,
        inner_steps: get_usize(m, "inner_steps", path)?,
        meta_batch: get_usize(m, "meta_batch", path)?,
        epochs: get_usize(m, "epochs", path)?,
        finetune_steps: get_usize(m, "finetune_steps", path)?,
        seed: get(m, "seed", path)?
            .as_u64()
            .ok_or_else(|| meta_err(path, "metadata field \"seed\" must be an integer"))?,
    };
    let d = get(&root, "diversity", path)?;
    let diversity = DiversityReport {
        k: get_usize(d, "k", path)?,
        mean_pairwise_distance: get_f32(d, "mean_pairwise_distance", path)?,
        mean_confidence: get_f32(d, "mean_confidence", path)?,
    };
    // Optional: checkpoints written before drift fingerprints existed have
    // no "score_fingerprint" blob and load with an empty sketch.
    let score_fingerprint = match root.get("score_fingerprint") {
        Some(fp) => {
            let arr = |key: &str| -> Result<Vec<f32>, CkptError> {
                get(fp, key, path)?
                    .as_arr()
                    .ok_or_else(|| {
                        meta_err(path, format!("score_fingerprint field {key:?} must be an array"))
                    })?
                    .iter()
                    .map(|v| {
                        v.as_f64().map(|x| x as f32).ok_or_else(|| {
                            meta_err(
                                path,
                                format!("score_fingerprint {key:?} entries must be numbers"),
                            )
                        })
                    })
                    .collect()
            };
            let probs = arr("probs")?;
            let quantiles = arr("quantiles")?;
            if probs.len() != quantiles.len() {
                return Err(meta_err(path, "score_fingerprint probs/quantiles lengths differ"));
            }
            ScoreFingerprint { probs, quantiles }
        }
        None => ScoreFingerprint::default(),
    };
    // Optional: checkpoints written before the run ledger existed carry
    // no "run_id" and load unstamped.
    let run_id =
        root.get("run_id").and_then(JsonValue::as_str).map(str::to_string).unwrap_or_default();
    // Optional: absent on every checkpoint written before the f32 tensor
    // encoding existed, which all used (and keep using) the f64 payload.
    let precision = match root.get("tensor_encoding").and_then(JsonValue::as_str) {
        None => Precision::F64,
        Some("f32") => Precision::F32,
        Some(other) => {
            return Err(meta_err(path, format!("unknown tensor_encoding {other:?}")));
        }
    };
    Ok(ArtifactMeta {
        schema,
        model_name: get_str(&root, "model", path)?,
        git_rev: get_str(&root, "git_rev", path)?,
        data_fingerprint: get_str(&root, "data_fingerprint", path)?,
        preference,
        maml,
        diversity,
        score_fingerprint,
        run_id,
        precision,
    })
}

/// Converts an artifact to its checkpoint representation.
pub fn to_checkpoint(artifact: &Artifact) -> Checkpoint {
    let mut tensors = artifact.params.clone();
    tensors.push((USER_CONTENT_TENSOR.to_string(), artifact.user_content.clone()));
    tensors.push((ITEM_CONTENT_TENSOR.to_string(), artifact.item_content.clone()));
    Checkpoint { meta_json: meta_to_json(&artifact.meta), tensors }
}

/// Rebuilds an artifact from a loaded checkpoint; `path` labels errors.
pub fn from_checkpoint(path: &str, ckpt: Checkpoint) -> Result<Artifact, CkptError> {
    let meta = meta_from_json(path, &ckpt.meta_json)?;
    let mut params: Vec<(String, Matrix)> = Vec::new();
    let mut user_content: Option<Matrix> = None;
    let mut item_content: Option<Matrix> = None;
    for (name, m) in ckpt.tensors {
        if name.starts_with(&format!("{PARAM_PREFIX}.")) {
            params.push((name, m));
        } else if name == USER_CONTENT_TENSOR {
            user_content = Some(m);
        } else if name == ITEM_CONTENT_TENSOR {
            item_content = Some(m);
        } else {
            return Err(meta_err(path, format!("unknown tensor {name:?} in artifact checkpoint")));
        }
    }
    let user_content = user_content
        .ok_or_else(|| meta_err(path, format!("missing {USER_CONTENT_TENSOR:?} tensor")))?;
    let item_content = item_content
        .ok_or_else(|| meta_err(path, format!("missing {ITEM_CONTENT_TENSOR:?} tensor")))?;
    Ok(Artifact { meta, params, user_content, item_content })
}

/// Saves an artifact as a `metadpa-ckpt/v1` file.
pub fn save_artifact(path: &str, artifact: &Artifact) -> Result<(), CkptError> {
    ckpt::save(path, &to_checkpoint(artifact))
}

/// Loads an artifact from a `metadpa-ckpt/v1` file.
pub fn load_artifact(path: &str) -> Result<Artifact, CkptError> {
    from_checkpoint(path, ckpt::load(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::artifact::artifact_from_learner;
    use metadpa_core::MetaLearner;
    use metadpa_tensor::SeededRng;

    fn tiny_artifact(seed: u64) -> Artifact {
        let pref = PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] };
        let maml = MamlConfig { finetune_steps: 2, ..MamlConfig::default() };
        let mut rng = SeededRng::new(seed);
        let mut learner = MetaLearner::new(pref, maml, &mut rng);
        let user_content = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let item_content = rng.uniform_matrix(9, 6, -1.0, 1.0);
        artifact_from_learner(
            &mut learner,
            "unit",
            "deadbeef".into(),
            "0123456789abcdef".into(),
            DiversityReport { k: 2, mean_pairwise_distance: 0.5, mean_confidence: 0.75 },
            user_content,
            item_content,
            format!("run-{seed:016x}-00000000deadbeef-1"),
        )
    }

    #[test]
    fn artifact_round_trips_through_the_checkpoint_container() {
        let artifact = tiny_artifact(3);
        let ckpt = to_checkpoint(&artifact);
        let back = from_checkpoint("mem", ckpt.clone()).expect("round trip");
        assert_eq!(back.meta.model_name, "unit");
        assert_eq!(back.meta.git_rev, "deadbeef");
        assert_eq!(back.meta.data_fingerprint, "0123456789abcdef");
        assert_eq!(back.meta.preference.content_dim, 6);
        assert_eq!(back.meta.preference.hidden, [8, 4]);
        assert_eq!(back.meta.maml.inner_lr, artifact.meta.maml.inner_lr, "f32 exact");
        assert_eq!(back.meta.maml.seed, artifact.meta.maml.seed);
        assert_eq!(back.meta.diversity.k, 2);
        assert_eq!(back.meta.score_fingerprint, artifact.meta.score_fingerprint, "f32 exact");
        assert!(!back.meta.score_fingerprint.is_empty(), "export stamps a fingerprint");
        assert_eq!(back.meta.run_id, "run-0000000000000003-00000000deadbeef-1");
        assert_eq!(back.params, artifact.params, "parameters are bit-exact");
        assert_eq!(back.user_content, artifact.user_content);
        assert_eq!(back.item_content, artifact.item_content);
        // And the full byte layout is stable: encode(to_checkpoint(load(x))) == x.
        let bytes = ckpt::encode(&ckpt);
        assert_eq!(ckpt::encode(&to_checkpoint(&back)), bytes);
    }

    #[test]
    fn f32_precision_artifacts_round_trip_with_the_narrow_encoding() {
        let mut artifact = tiny_artifact(8);
        artifact.meta.precision = Precision::F32;
        let ckpt = to_checkpoint(&artifact);
        assert!(
            ckpt.meta_json.contains(ckpt::F32_ENCODING_MARKER),
            "f32 metadata must carry the codec's payload-width marker: {}",
            ckpt.meta_json
        );
        let back = from_checkpoint("mem", ckpt.clone()).expect("round trip");
        assert_eq!(back.meta.precision, Precision::F32);
        assert_eq!(back.params, artifact.params, "f32 payload is lossless for f32 data");
        assert_eq!(back.user_content, artifact.user_content);
        assert_eq!(back.item_content, artifact.item_content);
        assert_eq!(ckpt::encode(&to_checkpoint(&back)), ckpt::encode(&ckpt), "stable bytes");

        // The default stays the default: no marker, f64 payload, and the
        // loaded precision field says so.
        let default = to_checkpoint(&tiny_artifact(8));
        assert!(!default.meta_json.contains("tensor_encoding"));
        let back = from_checkpoint("mem", default).expect("default round trip");
        assert_eq!(back.meta.precision, Precision::F64);

        // An unknown encoding is malformed, not silently misread.
        let mut alien = to_checkpoint(&artifact);
        alien.meta_json = alien.meta_json.replace("\"f32\"", "\"f16\"");
        let err = from_checkpoint("mem", alien).unwrap_err();
        assert!(err.to_string().contains("tensor_encoding"), "{err}");
    }

    #[test]
    fn save_and_load_through_a_real_file() {
        let artifact = tiny_artifact(4);
        let path = std::env::temp_dir()
            .join(format!("metadpa_artifact_{}.ckpt", std::process::id()))
            .to_string_lossy()
            .to_string();
        save_artifact(&path, &artifact).expect("save");
        let back = load_artifact(&path).expect("load");
        assert_eq!(back.params, artifact.params);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoints_predating_score_fingerprints_still_load() {
        let artifact = tiny_artifact(6);
        let mut ckpt = to_checkpoint(&artifact);
        // Simulate an older writer: drop the trailing score_fingerprint blob.
        let cut = ckpt.meta_json.find(",\"score_fingerprint\"").expect("field present");
        ckpt.meta_json.truncate(cut);
        ckpt.meta_json.push('}');
        let back = from_checkpoint("mem", ckpt).expect("pre-fingerprint checkpoint loads");
        assert!(back.meta.score_fingerprint.is_empty(), "defaults to an empty sketch");
        assert_eq!(back.params, artifact.params);
    }

    #[test]
    fn checkpoints_predating_the_run_ledger_still_load() {
        let artifact = tiny_artifact(7);
        let mut ckpt = to_checkpoint(&artifact);
        // Simulate an older writer: drop the trailing run_id field.
        let cut = ckpt.meta_json.find(",\"run_id\"").expect("field present");
        ckpt.meta_json.truncate(cut);
        ckpt.meta_json.push('}');
        let back = from_checkpoint("mem", ckpt).expect("pre-ledger checkpoint loads");
        assert_eq!(back.meta.run_id, "", "defaults to an unstamped run");
        assert_eq!(back.params, artifact.params);
    }

    #[test]
    fn foreign_schema_and_missing_tensors_are_malformed() {
        let artifact = tiny_artifact(5);
        let mut ckpt = to_checkpoint(&artifact);
        ckpt.meta_json = ckpt.meta_json.replace("metadpa-artifact/v1", "someone-else/v9");
        let err = from_checkpoint("mem", ckpt).unwrap_err();
        assert_eq!(err.kind, CkptErrorKind::Malformed);
        assert!(err.to_string().contains("someone-else/v9"), "{err}");

        let mut no_items = to_checkpoint(&artifact);
        no_items.tensors.retain(|(n, _)| n != ITEM_CONTENT_TENSOR);
        let err = from_checkpoint("mem", no_items).unwrap_err();
        assert!(err.to_string().contains("content.item"), "{err}");

        let mut alien = to_checkpoint(&artifact);
        alien.tensors.push(("mystery".into(), Matrix::zeros(1, 1)));
        let err = from_checkpoint("mem", alien).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }
}

//! A minimal HTTP/1.1 server on `std::net` — no external dependencies.
//!
//! Deliberately small: a fixed pool of worker threads all `accept()` on
//! clones of one listener, each connection serves exactly one request
//! (`Connection: close`), and shutdown is graceful — a flag flips, the
//! workers are woken with loopback connects, and every thread is joined
//! before [`Server::shutdown`] returns. That is all a single-artifact
//! inference server needs, and it keeps the whole transport auditable in
//! one file.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One parsed request: method, path and raw body.
#[derive(Clone, Debug)]
pub struct Request {
    /// HTTP method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/v1/recommend` (query strings not split).
    pub path: String,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// One response: status code, content type and body.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code (the reason phrase is derived from it).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self { status, content_type: "application/json", body }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self { status, content_type: "text/plain; charset=utf-8", body }
    }
}

/// The application: maps a request to a response. Must be panic-free for
/// well-formed input; panics kill only the offending worker's connection.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Transport configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:8080"`; port 0 picks an ephemeral
    /// port (read it back from [`Server::addr`]).
    pub addr: String,
    /// Worker threads, all accepting on the same listener.
    pub workers: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Maximum accepted body size in bytes; larger requests get 413.
    pub max_body: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout: Duration::from_secs(5),
            max_body: 1 << 20,
        }
    }
}

/// A running server; dropping it without [`Server::shutdown`] leaves the
/// workers running for the life of the process.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    // The peer may already be gone; nothing useful to do about it.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(resp.body.as_bytes());
    let _ = stream.flush();
}

/// A transport-level rejection: the response to send plus the
/// `serve.errors.<status>.<cause>` taxonomy cause it is counted under.
struct Reject {
    resp: Response,
    cause: &'static str,
}

impl Reject {
    fn text(status: u16, cause: &'static str, body: String) -> Self {
        Self { resp: Response::text(status, body), cause }
    }
}

/// Reads and parses one request. Returns `Ok(None)` when the peer closed
/// without sending anything (e.g. a shutdown wake-up connect).
fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Option<Request>, Reject> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the header terminator.
    let header_end = loop {
        if let Some(pos) = find_subsequence(&buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(Reject::text(400, "transport", "request head too large\n".into()));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(Reject::text(
                    400,
                    "transport",
                    "connection closed mid-request\n".into(),
                ));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(Reject::text(
                    408,
                    "timeout",
                    "timed out reading request head\n".into(),
                ));
            }
            Err(_) => return Ok(None),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(Reject::text(400, "transport", "malformed request line\n".into()));
    };
    // A missing Content-Length means "no body" (GETs); a present but
    // unparseable one is a hard 400 — silently treating it as 0 would drop
    // the body and surface as a baffling downstream 400/422 instead.
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = match v.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Err(Reject::text(
                            400,
                            "bad_content_length",
                            format!("malformed Content-Length header: {:?}\n", v.trim()),
                        ));
                    }
                };
            }
        }
    }
    if content_length > max_body {
        return Err(Reject::text(
            413,
            "body_too_large",
            format!("body of {content_length} bytes exceeds the {max_body} byte cap\n"),
        ));
    }

    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(Reject::text(400, "transport", "connection closed mid-body\n".into()))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(Reject::text(
                    408,
                    "timeout",
                    "timed out reading request body\n".into(),
                ));
            }
            Err(_) => return Err(Reject::text(400, "transport", "read error\n".into())),
        }
    }
    body.truncate(content_length);
    Ok(Some(Request { method: method.to_uppercase(), path: path.to_string(), body }))
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Counts a transport-level rejection (a request that never reached the
/// router) in the `serve.errors.*` taxonomy. Error path only — the
/// successful-request path never gets here. Causes are a closed static set
/// so every counter is zero-seeded by `seed_serve_metrics`.
fn transport_error_counter(status: u16, cause: &'static str) {
    match (status, cause) {
        (400, "bad_content_length") => {
            metadpa_obs::counter_add!("serve.errors.400.bad_content_length", 1)
        }
        (400, _) => metadpa_obs::counter_add!("serve.errors.400.transport", 1),
        (408, _) => metadpa_obs::counter_add!("serve.errors.408.timeout", 1),
        (413, _) => metadpa_obs::counter_add!("serve.errors.413.body_too_large", 1),
        _ => {}
    }
}

fn handle_connection(
    mut stream: TcpStream,
    handler: &Handler,
    read_timeout: Duration,
    max_body: usize,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    match read_request(&mut stream, max_body) {
        Ok(Some(req)) => {
            let resp = handler(&req);
            write_response(&mut stream, &resp);
        }
        Ok(None) => {}
        Err(reject) => {
            transport_error_counter(reject.resp.status, reject.cause);
            write_response(&mut stream, &reject.resp);
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Binds `config.addr` and starts the worker pool. Returns once the
/// listener is live; requests are served until [`Server::shutdown`].
pub fn serve(config: ServerConfig, handler: Handler) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let workers = config.workers.max(1);
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let listener = listener.try_clone()?;
        let stop = Arc::clone(&stop);
        let handler = Arc::clone(&handler);
        let (read_timeout, max_body) = (config.read_timeout, config.max_body);
        handles.push(std::thread::Builder::new().name(format!("serve-worker-{w}")).spawn(
            move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        metadpa_obs::counter_add!("serve.connections", 1);
                        handle_connection(stream, &handler, read_timeout, max_body);
                    }
                    Err(_) => {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                }
            },
        )?);
    }
    Ok(Server { addr, stop, handles })
}

impl Server {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: flips the stop flag, wakes every blocked
    /// `accept()` with loopback connects, and joins all workers.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for handle in self.handles {
            // Keep poking the listener until this worker notices; one
            // connect can be eaten by a different worker.
            while !handle.is_finished() {
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(100));
                std::thread::sleep(Duration::from_millis(1));
            }
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_echo(workers: usize) -> Server {
        let handler: Handler = Arc::new(|req: &Request| {
            Response::text(
                200,
                format!("{} {} {}", req.method, req.path, String::from_utf8_lossy(&req.body)),
            )
        });
        serve(ServerConfig { workers, ..ServerConfig::default() }, handler).expect("bind")
    }

    fn raw_request(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw.as_bytes()).expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_concurrent_requests_and_shuts_down_cleanly() {
        let server = start_echo(3);
        let addr = server.addr();
        let mut joins = Vec::new();
        for i in 0..6 {
            joins.push(std::thread::spawn(move || {
                let body = format!("hello-{i}");
                let raw = format!(
                    "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                raw_request(addr, &raw)
            }));
        }
        for (i, j) in joins.into_iter().enumerate() {
            let resp = j.join().expect("thread");
            assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
            assert!(resp.contains(&format!("POST /echo hello-{i}")), "{resp}");
        }
        server.shutdown();
        // After shutdown nothing is listening (give the OS a beat).
        std::thread::sleep(Duration::from_millis(20));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn malformed_and_oversized_requests_get_4xx() {
        let server = serve(
            ServerConfig { max_body: 64, ..ServerConfig::default() },
            Arc::new(|_: &Request| Response::text(200, "ok".into())),
        )
        .expect("bind");
        let addr = server.addr();

        let resp = raw_request(addr, "NONSENSE\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

        let resp = raw_request(addr, "POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn malformed_content_length_is_a_typed_400() {
        let server = start_echo(1);
        let addr = server.addr();

        // Regression: this used to parse as `unwrap_or(0)`, silently dropping
        // the body and echoing an empty request instead of rejecting it.
        for bad in ["banana", "-5", "18446744073709551616", "12abc"] {
            let resp = raw_request(
                addr,
                &format!("POST /echo HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhello"),
            );
            assert!(resp.starts_with("HTTP/1.1 400"), "Content-Length {bad:?}: {resp}");
            assert!(resp.contains("malformed Content-Length"), "Content-Length {bad:?}: {resp}");
        }

        // A missing Content-Length still means "no body" — bodyless GETs
        // must keep working.
        let resp = raw_request(addr, "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");

        // And a well-formed value still delivers the body.
        let resp = raw_request(addr, "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert!(resp.contains("POST /echo hello"), "{resp}");
        server.shutdown();
    }
}

//! The route table: JSON endpoints over [`crate::http`].
//!
//! * `GET  /health` — liveness plus artifact provenance.
//! * `GET  /metrics` — the obs metrics registry as plain text
//!   ([`metadpa_obs::metrics::render_text`]).
//! * `POST /v1/recommend` — top-K for `{"user_id": u}` (warm or
//!   adapted-cache), `{"content": [...]}` (cold), or `{}` (cold, average
//!   user). Optional `"k"` (default 10).
//! * `POST /v1/adapt` — serve-time MAML adaptation:
//!   `{"user_id": u, "support": [[item, label], ...]}` caches adapted
//!   parameters for that user; `{"content": [...], "support": [...]}`
//!   adapts one-shot and returns the adapted top-K directly.
//! * `POST /v1/feedback` — implicit-feedback ingestion:
//!   `{"user_id": u, "item_id": i, "label": x}` (label optional,
//!   default 1.0) is validated against the catalogue and appended to the
//!   configured [`FeedbackLog`]; the background feedback adapter tails
//!   that log and graduates cold users live. 503 when the server runs
//!   without a feedback log.
//!
//! Request-data problems (unknown user id, out-of-range item, wrong
//! content width, empty support, non-finite label) are 422 with a JSON
//! explanation — typed [`ArtifactError`]s all the way out, never panics.
//! Malformed JSON is 400; unknown paths 404; wrong methods 405.

use std::sync::Arc;
use std::time::Instant;

use metadpa_core::artifact::ArtifactError;
use metadpa_feedback::FeedbackLog;
use metadpa_obs::json::{self, number, JsonValue, ObjectWriter};

use crate::engine::{Engine, ServeSource};
use crate::http::{Handler, Request, Response};

/// Default list length when a request does not say.
pub const DEFAULT_K: usize = 10;

fn error_json(message: &str) -> String {
    let mut w = ObjectWriter::new();
    w.str_field("error", message);
    w.finish()
}

/// Bumps the `serve.errors.<status>.<cause>` taxonomy counter. Dynamic
/// name lookup (a format + registry probe) is fine here: this only runs on
/// error responses, never on the 200 hot path.
fn error_cause_counter(status: u16, cause: &str) {
    if metadpa_obs::enabled() {
        metadpa_obs::metrics::counter(&format!("serve.errors.{status}.{cause}")).add(1);
    }
}

fn artifact_error_response(err: &ArtifactError) -> Response {
    metadpa_obs::counter_add!("serve.responses.422", 1);
    error_cause_counter(422, err.cause());
    Response::json(422, error_json(&err.to_string()))
}

fn bad_request(cause: &'static str, message: &str) -> Response {
    metadpa_obs::counter_add!("serve.responses.400", 1);
    error_cause_counter(400, cause);
    Response::json(400, error_json(message))
}

fn list_json(items: &[(usize, f32)], source: &str) -> String {
    let ids: Vec<String> = items.iter().map(|&(i, _)| i.to_string()).collect();
    let scores: Vec<String> = items.iter().map(|&(_, s)| number(s as f64)).collect();
    let mut w = ObjectWriter::new();
    w.raw_field("items", &format!("[{}]", ids.join(",")))
        .raw_field("scores", &format!("[{}]", scores.join(",")))
        .str_field("source", source);
    w.finish()
}

fn parse_body(req: &Request) -> Result<JsonValue, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| bad_request("not_utf8", "request body is not UTF-8"))?;
    if text.trim().is_empty() {
        // An empty body is an empty request object.
        return Ok(JsonValue::Obj(Vec::new()));
    }
    json::parse(text)
        .map_err(|e| bad_request("bad_json", &format!("request body is not valid JSON: {e}")))
}

fn parse_k(body: &JsonValue) -> Result<usize, Response> {
    match body.get("k") {
        None => Ok(DEFAULT_K),
        Some(v) => match v.as_u64() {
            Some(k) if (1..=10_000).contains(&k) => Ok(k as usize),
            _ => Err(bad_request("bad_k", "\"k\" must be an integer in 1..=10000")),
        },
    }
}

fn parse_content(body: &JsonValue) -> Result<Option<Vec<f32>>, Response> {
    let Some(v) = body.get("content") else { return Ok(None) };
    let arr = v
        .as_arr()
        .ok_or_else(|| bad_request("bad_content", "\"content\" must be an array of numbers"))?;
    let mut out = Vec::with_capacity(arr.len());
    for e in arr {
        let x = e
            .as_f64()
            .ok_or_else(|| bad_request("bad_content", "\"content\" must be an array of numbers"))?;
        if !x.is_finite() {
            return Err(bad_request("bad_content", "\"content\" values must be finite"));
        }
        out.push(x as f32);
    }
    Ok(Some(out))
}

fn parse_support(body: &JsonValue) -> Result<Option<Vec<(usize, f32)>>, Response> {
    let Some(v) = body.get("support") else { return Ok(None) };
    let arr = v.as_arr().ok_or_else(|| {
        bad_request("bad_support", "\"support\" must be an array of [item, label] pairs")
    })?;
    let mut out = Vec::with_capacity(arr.len());
    for e in arr {
        let pair = e.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
            bad_request("bad_support", "each support entry must be an [item, label] pair")
        })?;
        let item = pair[0].as_u64().ok_or_else(|| {
            bad_request("bad_support", "support item ids must be non-negative integers")
        })?;
        let label = pair[1]
            .as_f64()
            .ok_or_else(|| bad_request("bad_support", "support labels must be numbers"))?;
        out.push((item as usize, label as f32));
    }
    Ok(Some(out))
}

fn parse_user_id(body: &JsonValue) -> Result<Option<usize>, Response> {
    match body.get("user_id") {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(u) => Ok(Some(u as usize)),
            None => Err(bad_request("bad_user_id", "\"user_id\" must be a non-negative integer")),
        },
    }
}

fn health(engine: &Engine, feedback_enabled: bool) -> Response {
    let meta = engine.meta();
    let mut w = ObjectWriter::new();
    w.str_field("status", "ok")
        .str_field("model", &meta.model_name)
        .str_field("git_rev", &meta.git_rev)
        .str_field("data_fingerprint", &meta.data_fingerprint)
        .str_field("run_id", &meta.run_id)
        .str_field("simd", metadpa_tensor::simd::feature_string())
        .str_field("precision", meta.precision.as_str())
        .u64_field("n_users", engine.n_users() as u64)
        .u64_field("n_items", engine.n_items() as u64)
        .u64_field("content_dim", engine.content_dim() as u64)
        .u64_field("adapted_users", engine.cached_adaptations() as u64)
        .bool_field("feedback_enabled", feedback_enabled);
    Response::json(200, w.finish())
}

/// The warm/cold/adapted taxonomy a response belongs to; `""` for errors.
type State = &'static str;

fn state_of(source: ServeSource) -> State {
    match source {
        ServeSource::Warm => "warm",
        ServeSource::Cold => "cold",
        ServeSource::AdaptedCache | ServeSource::Adapted => "adapted",
    }
}

fn recommend(engine: &Engine, req: &Request) -> (Response, State) {
    let start = Instant::now();
    let (resp, state) = recommend_inner(engine, req);
    let us = start.elapsed().as_micros() as u64;
    metadpa_obs::histogram_observe!("serve.latency.recommend_us", us);
    if resp.status == 200 {
        match state {
            "warm" => {
                metadpa_obs::counter_add!("serve.state.warm", 1);
                metadpa_obs::window_observe!("serve.window.recommend.warm_us", us);
            }
            "cold" => {
                metadpa_obs::counter_add!("serve.state.cold", 1);
                metadpa_obs::window_observe!("serve.window.recommend.cold_us", us);
            }
            "adapted" => {
                metadpa_obs::counter_add!("serve.state.adapted", 1);
                metadpa_obs::window_observe!("serve.window.recommend.adapted_us", us);
            }
            _ => {}
        }
    }
    (resp, state)
}

fn recommend_inner(engine: &Engine, req: &Request) -> (Response, State) {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return (resp, ""),
    };
    let k = match parse_k(&body) {
        Ok(k) => k,
        Err(resp) => return (resp, ""),
    };
    let user = match parse_user_id(&body) {
        Ok(u) => u,
        Err(resp) => return (resp, ""),
    };
    let content = match parse_content(&body) {
        Ok(c) => c,
        Err(resp) => return (resp, ""),
    };
    let (result, state) = match (user, content) {
        (Some(_), Some(_)) => {
            return (
                bad_request("both_ids", "pass either \"user_id\" or \"content\", not both"),
                "",
            )
        }
        (Some(user), None) => match engine.recommend_user(user, k) {
            Ok((list, source)) => (Ok(list_json(&list, source.as_str())), state_of(source)),
            Err(e) => (Err(e), ""),
        },
        (None, Some(content)) => {
            (engine.recommend_content(&content, k).map(|list| list_json(&list, "cold")), "cold")
        }
        (None, None) => {
            (engine.recommend_cold_default(k).map(|list| list_json(&list, "cold")), "cold")
        }
    };
    match result {
        Ok(json) => {
            metadpa_obs::counter_add!("serve.responses.200", 1);
            (Response::json(200, json), state)
        }
        Err(e) => (artifact_error_response(&e), ""),
    }
}

fn adapt(engine: &Engine, req: &Request) -> (Response, State) {
    let start = Instant::now();
    let (resp, state) = adapt_inner(engine, req);
    let us = start.elapsed().as_micros() as u64;
    metadpa_obs::histogram_observe!("serve.latency.adapt_us", us);
    if resp.status == 200 {
        metadpa_obs::counter_add!("serve.state.adapted", 1);
        metadpa_obs::window_observe!("serve.window.adapt_us", us);
    }
    (resp, state)
}

fn adapt_inner(engine: &Engine, req: &Request) -> (Response, State) {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return (resp, ""),
    };
    let Some(support) = (match parse_support(&body) {
        Ok(s) => s,
        Err(resp) => return (resp, ""),
    }) else {
        return (
            bad_request(
                "missing_support",
                "adaptation requires a \"support\" array of [item, label] pairs",
            ),
            "",
        );
    };
    let user = match parse_user_id(&body) {
        Ok(u) => u,
        Err(resp) => return (resp, ""),
    };
    let content = match parse_content(&body) {
        Ok(c) => c,
        Err(resp) => return (resp, ""),
    };
    match (user, content) {
        (Some(_), Some(_)) => {
            (bad_request("both_ids", "pass either \"user_id\" or \"content\", not both"), "")
        }
        (Some(user), None) => match engine.adapt_user(user, &support) {
            Ok(cached) => {
                metadpa_obs::counter_add!("serve.responses.200", 1);
                let mut w = ObjectWriter::new();
                w.str_field("status", "adapted")
                    .u64_field("user_id", user as u64)
                    .u64_field("adapted_users", cached as u64);
                (Response::json(200, w.finish()), "adapted")
            }
            Err(e) => (artifact_error_response(&e), ""),
        },
        (None, Some(content)) => {
            let k = match parse_k(&body) {
                Ok(k) => k,
                Err(resp) => return (resp, ""),
            };
            match engine.adapt_and_recommend_content(&content, &support, k) {
                Ok(list) => {
                    metadpa_obs::counter_add!("serve.responses.200", 1);
                    (Response::json(200, list_json(&list, "adapted")), "adapted")
                }
                Err(e) => (artifact_error_response(&e), ""),
            }
        }
        (None, None) => {
            (bad_request("missing_target", "adaptation requires \"user_id\" or \"content\""), "")
        }
    }
}

fn feedback(engine: &Engine, log: Option<&Arc<FeedbackLog>>, req: &Request) -> Response {
    let start = Instant::now();
    let resp = feedback_inner(engine, log, req);
    let us = start.elapsed().as_micros() as u64;
    metadpa_obs::histogram_observe!("serve.latency.feedback_us", us);
    if resp.status == 200 {
        metadpa_obs::counter_add!("serve.feedback.accepted", 1);
        metadpa_obs::window_observe!("serve.window.feedback_us", us);
    } else if resp.status == 400 || resp.status == 422 {
        // The typed rejection counter: malformed or out-of-catalogue
        // events never reach the log (and never panic the worker).
        metadpa_obs::counter_add!("serve.feedback.rejected", 1);
    }
    resp
}

fn feedback_inner(engine: &Engine, log: Option<&Arc<FeedbackLog>>, req: &Request) -> Response {
    let Some(log) = log else {
        metadpa_obs::counter_add!("serve.responses.503", 1);
        error_cause_counter(503, "feedback_disabled");
        return Response::json(503, error_json("this server runs without a feedback log"));
    };
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let user = match parse_user_id(&body) {
        Ok(Some(u)) => u,
        Ok(None) => {
            return bad_request("missing_user_id", "feedback requires a \"user_id\"");
        }
        Err(resp) => return resp,
    };
    let item = match body.get("item_id") {
        None => return bad_request("missing_item_id", "feedback requires an \"item_id\""),
        Some(v) => match v.as_u64() {
            Some(i) => i as usize,
            None => {
                return bad_request("bad_item_id", "\"item_id\" must be a non-negative integer")
            }
        },
    };
    let label = match body.get("label") {
        None => 1.0f32,
        Some(v) => match v.as_f64() {
            Some(x) => x as f32,
            None => return bad_request("bad_label", "\"label\" must be a number"),
        },
    };
    if let Err(e) = engine.validate_feedback(user, item, label) {
        return artifact_error_response(&e);
    }
    let seq = log.append(user, item, label);
    metadpa_obs::counter_add!("serve.responses.200", 1);
    let mut w = ObjectWriter::new();
    w.str_field("status", "accepted")
        .u64_field("seq", seq)
        .u64_field("user_id", user as u64)
        .u64_field("item_id", item as u64);
    Response::json(200, w.finish())
}

fn metrics_page(engine: &Engine) -> Response {
    // Refresh the drift gauges at scrape time: they are otherwise only
    // updated per scored request, so a scrape after traffic stopped would
    // report a stale window.
    if metadpa_obs::enabled() {
        if let Some((stat, _)) = engine.drift_stat() {
            metadpa_obs::gauge_set!("serve.drift.stat", stat);
            metadpa_obs::gauge_set!(
                "serve.drift.alert",
                if stat > crate::engine::DRIFT_ALERT_THRESHOLD { 1.0 } else { 0.0 }
            );
        }
        // The adapted-cache occupancy moves on graduation, eviction, and
        // invalidation — all off the request path — so it is also refreshed
        // at scrape time rather than per event.
        metadpa_obs::gauge_set!("serve.adapt_cache.size", engine.cached_adaptations() as f64);
    }
    Response::text(200, metadpa_obs::metrics::render_text())
}

/// Dispatches one request; returns the response plus the endpoint label
/// and warm/cold/adapted state for the trace record.
fn route(
    engine: &Engine,
    feedback_log: Option<&Arc<FeedbackLog>>,
    req: &Request,
) -> (Response, &'static str, State) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (health(engine, feedback_log.is_some()), "health", ""),
        ("GET", "/metrics") => (metrics_page(engine), "metrics", ""),
        ("POST", "/v1/recommend") => {
            let (resp, state) = recommend(engine, req);
            (resp, "recommend", state)
        }
        ("POST", "/v1/adapt") => {
            let (resp, state) = adapt(engine, req);
            (resp, "adapt", state)
        }
        ("POST", "/v1/feedback") => (feedback(engine, feedback_log, req), "feedback", ""),
        (_, "/health" | "/metrics" | "/v1/recommend" | "/v1/adapt" | "/v1/feedback") => {
            metadpa_obs::counter_add!("serve.errors.405.bad_method", 1);
            (Response::json(405, error_json("method not allowed for this path")), "bad_method", "")
        }
        _ => {
            metadpa_obs::counter_add!("serve.errors.404.unknown_path", 1);
            (Response::json(404, error_json("unknown path")), "unknown_path", "")
        }
    }
}

/// Registers every serve-owned metric with its zero value. Counters (and
/// windows, gauges) only render once touched; seeding at router build time
/// makes `/metrics` expose the full name set from the first scrape, and
/// gives dashboards a stable schema whether or not an error class has
/// fired yet. No-op while observability is off.
fn seed_serve_metrics() {
    metadpa_obs::counter_add!("pool.tasks", 0);
    metadpa_obs::counter_add!("pool.steal", 0);
    metadpa_obs::counter_add!("tensor.matmul.packed_panels", 0);
    metadpa_obs::counter_add!("tensor.matmul.dispatch.serial", 0);
    metadpa_obs::counter_add!("tensor.matmul.dispatch.blocked", 0);
    metadpa_obs::counter_add!("tensor.matmul.dispatch.simd", 0);
    metadpa_obs::counter_add!("tensor.matmul.dispatch.scalar_forced", 0);
    metadpa_obs::counter_add!("tensor.matmul.packed_tiles", 0);
    metadpa_obs::counter_add!("serve.requests", 0);
    metadpa_obs::counter_add!("serve.state.warm", 0);
    metadpa_obs::counter_add!("serve.state.cold", 0);
    metadpa_obs::counter_add!("serve.state.adapted", 0);
    metadpa_obs::counter_add!("serve.feedback.accepted", 0);
    metadpa_obs::counter_add!("serve.feedback.rejected", 0);
    metadpa_obs::counter_add!("serve.feedback.graduations", 0);
    metadpa_obs::counter_add!("serve.feedback.refreshes", 0);
    metadpa_obs::counter_add!("serve.feedback.invalidations", 0);
    metadpa_obs::counter_add!("serve.feedback.errors", 0);
    metadpa_obs::counter_add!("serve.feedback.parse_errors", 0);
    metadpa_obs::counter_add!("serve.adapt_cache.evictions", 0);
    metadpa_obs::gauge_set!("serve.drift.stat", 0.0);
    metadpa_obs::gauge_set!("serve.drift.alert", 0.0);
    metadpa_obs::gauge_set!("serve.adapt_cache.size", 0.0);
    if !metadpa_obs::enabled() {
        return;
    }
    for name in [
        "serve.window.recommend.warm_us",
        "serve.window.recommend.cold_us",
        "serve.window.recommend.adapted_us",
        "serve.window.adapt_us",
        "serve.window.feedback_us",
    ] {
        let _ = metadpa_obs::metrics::window(name);
    }
    for name in [
        // Handler-level taxonomy (`bad_request` / `ArtifactError::cause`).
        "serve.errors.400.not_utf8",
        "serve.errors.400.bad_json",
        "serve.errors.400.bad_k",
        "serve.errors.400.bad_content",
        "serve.errors.400.bad_support",
        "serve.errors.400.bad_user_id",
        "serve.errors.400.both_ids",
        "serve.errors.400.missing_support",
        "serve.errors.400.missing_target",
        "serve.errors.400.missing_user_id",
        "serve.errors.400.missing_item_id",
        "serve.errors.400.bad_item_id",
        "serve.errors.400.bad_label",
        "serve.errors.503.feedback_disabled",
        "serve.errors.404.unknown_path",
        "serve.errors.405.bad_method",
        "serve.errors.422.user_out_of_range",
        "serve.errors.422.item_out_of_range",
        "serve.errors.422.empty_support",
        "serve.errors.422.non_finite_label",
        "serve.errors.422.content_dim_mismatch",
        "serve.errors.422.bad_params",
        "serve.errors.422.non_finite_scores",
        // Transport-level taxonomy (`crate::http`, before routing).
        "serve.errors.400.transport",
        "serve.errors.400.bad_content_length",
        "serve.errors.408.timeout",
        "serve.errors.413.body_too_large",
    ] {
        let _ = metadpa_obs::metrics::counter(name);
    }
}

/// Publishes which artifact run this server is holding: one
/// `serve.artifact` trace event carrying the full run-ledger key (the
/// lineage join point for serve-side traces) plus `serve.artifact.run.*`
/// gauges on `/metrics`. Gauges are f64, which cannot hold a u64 exactly,
/// so the 64-bit run components are split into exact 32-bit halves;
/// `present` is 0 for pre-ledger (unstamped) artifacts. No-op while
/// observability is off.
fn publish_artifact_identity(engine: &Engine) {
    if !metadpa_obs::enabled() {
        return;
    }
    let meta = engine.meta();
    let mut ev = metadpa_obs::Event::new("event", "serve.artifact");
    ev.push("run_id", meta.run_id.as_str());
    ev.push("model", meta.model_name.as_str());
    ev.push("data_fingerprint", meta.data_fingerprint.as_str());
    metadpa_obs::emit(ev);
    let run = metadpa_obs::run::RunId::parse(&meta.run_id);
    let (present, seed, fp, seq) = match &run {
        Some(r) => (1.0, r.seed, r.config_fingerprint, r.seq),
        None => (0.0, 0, 0, 0),
    };
    metadpa_obs::gauge_set!("serve.artifact.run.present", present);
    metadpa_obs::gauge_set!("serve.artifact.run.seed_hi", (seed >> 32) as f64);
    metadpa_obs::gauge_set!("serve.artifact.run.seed_lo", (seed & 0xffff_ffff) as f64);
    metadpa_obs::gauge_set!("serve.artifact.run.fingerprint_hi", (fp >> 32) as f64);
    metadpa_obs::gauge_set!("serve.artifact.run.fingerprint_lo", (fp & 0xffff_ffff) as f64);
    metadpa_obs::gauge_set!("serve.artifact.run.seq", seq as f64);
}

/// Builds the HTTP handler for one engine, without feedback ingestion
/// (`POST /v1/feedback` answers 503).
pub fn router(engine: Arc<Engine>) -> Handler {
    router_with_feedback(engine, None)
}

/// Builds the HTTP handler for one engine. With a [`FeedbackLog`],
/// `POST /v1/feedback` validates events against the engine's catalogue and
/// appends them; the background [`metadpa_feedback::FeedbackAdapter`]
/// (wired up by the serve binary) consumes them from the file.
pub fn router_with_feedback(
    engine: Arc<Engine>,
    feedback_log: Option<Arc<FeedbackLog>>,
) -> Handler {
    seed_serve_metrics();
    publish_artifact_identity(&engine);
    Arc::new(move |req: &Request| {
        metadpa_obs::counter_add!("serve.requests", 1);
        if !metadpa_obs::enabled() {
            // The whole tracing block below is skipped: with observability
            // off a request costs the same relaxed loads as before.
            return route(&engine, feedback_log.as_ref(), req).0;
        }
        let start = Instant::now();
        let request_id = metadpa_obs::span::next_request_id();
        let _scope = metadpa_obs::span::enter_request(Some(request_id));
        let (resp, endpoint, state) = {
            let _root = metadpa_obs::span!("serve.request");
            route(&engine, feedback_log.as_ref(), req)
        };
        // One structured access record per request — the unit `obs-report
        // tail` / `check-trace` stream over.
        let mut ev = metadpa_obs::Event::new("request", endpoint);
        ev.push("req", request_id);
        ev.push("method", req.method.as_str());
        ev.push("path", req.path.as_str());
        ev.push("status", resp.status as u64);
        ev.push("state", state);
        ev.push("dur_us", start.elapsed().as_micros() as u64);
        metadpa_obs::emit(ev);
        resp
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::http::{serve, ServerConfig};
    use metadpa_core::artifact::artifact_from_learner;
    use metadpa_core::augmentation::DiversityReport;
    use metadpa_core::{MamlConfig, MetaLearner, PreferenceConfig};
    use metadpa_tensor::SeededRng;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn tiny_artifact(seed: u64) -> metadpa_core::artifact::Artifact {
        let pref = PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] };
        let maml = MamlConfig { finetune_steps: 2, ..MamlConfig::default() };
        let mut rng = SeededRng::new(seed);
        let mut learner = MetaLearner::new(pref, maml, &mut rng);
        let user_content = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let item_content = rng.uniform_matrix(9, 6, -1.0, 1.0);
        artifact_from_learner(
            &mut learner,
            "unit",
            "rev".into(),
            "fp".into(),
            DiversityReport::default(),
            user_content,
            item_content,
            format!("run-{seed:016x}-00000000cafef00d-1"),
        )
    }

    fn tiny_engine(seed: u64) -> Arc<Engine> {
        Arc::new(Engine::new(tiny_artifact(seed).into_recommender().expect("valid artifact")))
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
        request(addr, "POST", path, body)
    }

    fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        s.write_all(raw.as_bytes()).expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        let status: u16 = out.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
        let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn end_to_end_routes_over_real_tcp() {
        let engine = tiny_engine(31);
        let server = serve(ServerConfig::default(), router(Arc::clone(&engine))).expect("bind");
        let addr = server.addr();

        let (status, body) = request(addr, "GET", "/health", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"model\":\"unit\""), "{body}");
        assert!(body.contains("\"n_users\":4"), "{body}");
        assert!(
            body.contains("\"run_id\":\"run-000000000000001f-00000000cafef00d-1\""),
            "/health must surface the artifact's run-ledger key: {body}"
        );
        let simd_field = format!("\"simd\":\"{}\"", metadpa_tensor::simd::feature_string());
        assert!(
            body.contains(&simd_field),
            "/health must surface the detected kernel feature set: {body}"
        );
        assert!(
            body.contains("\"precision\":\"f64\""),
            "/health must surface the artifact's tensor precision: {body}"
        );

        // Warm recommend.
        let (status, body) = post(addr, "/v1/recommend", r#"{"user_id":1,"k":3}"#);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"source\":\"warm\""), "{body}");
        let parsed = json::parse(&body).expect("response JSON parses");
        assert_eq!(parsed.get("items").and_then(JsonValue::as_arr).map(<[_]>::len), Some(3));

        // Adapt then serve from the cache.
        let (status, body) =
            post(addr, "/v1/adapt", r#"{"user_id":1,"support":[[0,1.0],[5,0.0]]}"#);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"adapted\""), "{body}");
        let (status, body) = post(addr, "/v1/recommend", r#"{"user_id":1,"k":3}"#);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"source\":\"adapted-cache\""), "{body}");

        // Cold by content; cold by nothing.
        let (status, body) =
            post(addr, "/v1/recommend", r#"{"content":[0.1,0.2,0.3,0.4,0.5,0.6],"k":2}"#);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"source\":\"cold\""), "{body}");
        let (status, _) = post(addr, "/v1/recommend", "{}");
        assert_eq!(status, 200);

        // One-shot content adaptation.
        let (status, body) = post(
            addr,
            "/v1/adapt",
            r#"{"content":[0.1,0.2,0.3,0.4,0.5,0.6],"support":[[1,1.0]],"k":2}"#,
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"source\":\"adapted\""), "{body}");

        server.shutdown();
    }

    #[test]
    fn metrics_expose_pool_and_kernel_counters() {
        // Counters only record while observability is on (the serve binary
        // enables it at startup); mirror that here, before the router is
        // built, so its zero-seeding registers the names.
        let _obs = metadpa_obs::test_lock();
        metadpa_obs::enable(Arc::new(metadpa_obs::NullRecorder));
        metadpa_obs::metrics::reset();
        let engine = tiny_engine(34);
        let server = serve(ServerConfig::default(), router(Arc::clone(&engine))).expect("bind");
        let addr = server.addr();

        // Drive one scoring request so kernel counters see real traffic,
        // then check the registry names are all present (the zero-seeded
        // ones included, whether or not this process ran a blocked shape).
        let (status, _) = post(addr, "/v1/recommend", r#"{"user_id":0,"k":2}"#);
        assert_eq!(status, 200);
        let (status, body) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        // render_text flattens metric names (dots become underscores).
        for name in [
            "pool_tasks",
            "pool_steal",
            "tensor_matmul_packed_panels",
            "tensor_matmul_dispatch_serial",
            "tensor_matmul_dispatch_blocked",
            // SIMD dispatch schema: zero-seeded so a scalar-only host (or
            // METADPA_SIMD=off) still renders the rows dashboards key on.
            "tensor_matmul_dispatch_simd",
            "tensor_matmul_dispatch_scalar_forced",
            "tensor_matmul_packed_tiles",
            // Zero-seeded serve schema: per-state counters, drift gauges,
            // windowed latency digests, and the error taxonomy — all
            // present before (or regardless of) matching traffic.
            "serve_state_warm",
            "serve_state_cold",
            "serve_state_adapted",
            "serve_drift_stat",
            "serve_drift_alert",
            "serve_window_recommend_warm_us_p99",
            "serve_window_recommend_cold_us_p99",
            "serve_window_recommend_adapted_us_p99",
            "serve_window_adapt_us_p99",
            // Artifact run-ledger identity (split into exact 32-bit
            // halves; the full string lives on /health).
            "serve_artifact_run_present",
            "serve_artifact_run_seed_lo",
            "serve_artifact_run_fingerprint_hi",
            "serve_artifact_run_seq",
            "serve_errors_400_bad_json",
            "serve_errors_404_unknown_path",
            "serve_errors_405_bad_method",
            "serve_errors_413_body_too_large",
            "serve_errors_422_user_out_of_range",
            // Feedback subsystem schema: ingestion counters, adapter-side
            // graduation/invalidation counters, and the cache gauges are
            // all visible before any feedback traffic exists.
            "serve_feedback_accepted",
            "serve_feedback_rejected",
            "serve_feedback_graduations",
            "serve_feedback_refreshes",
            "serve_feedback_invalidations",
            "serve_feedback_errors",
            "serve_feedback_parse_errors",
            "serve_adapt_cache_evictions",
            "serve_adapt_cache_size",
            "serve_window_feedback_us_p99",
            "serve_errors_503_feedback_disabled",
        ] {
            assert!(body.contains(name), "/metrics must expose {name}: {body}");
        }
        // The cold/adapted states saw no traffic: still rendered, at zero.
        assert!(body.contains("serve_state_cold 0\n"), "{body}");
        assert!(body.contains("serve_errors_404_unknown_path 0\n"), "{body}");
        // The warm request above landed in its state counter and window.
        assert!(body.contains("serve_state_warm 1\n"), "{body}");
        assert!(body.contains("serve_window_recommend_warm_us_count 1\n"), "{body}");
        // The artifact's parseable run id fills the identity gauges.
        assert!(body.contains("serve_artifact_run_present 1"), "{body}");
        assert!(body.contains("serve_artifact_run_seed_lo 34"), "{body}");

        server.shutdown();
        metadpa_obs::disable();
    }

    #[test]
    fn request_problems_map_to_the_right_status_codes() {
        let engine = tiny_engine(32);
        let server = serve(ServerConfig::default(), router(Arc::clone(&engine))).expect("bind");
        let addr = server.addr();

        // Out-of-range user id: 422 with an explanation, not a panic.
        let (status, body) = post(addr, "/v1/recommend", r#"{"user_id":12345}"#);
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("12345"), "{body}");
        assert!(body.contains("4 users"), "{body}");

        // Wrong content width: 422. Malformed JSON: 400.
        let (status, _) = post(addr, "/v1/recommend", r#"{"content":[1.0]}"#);
        assert_eq!(status, 422);
        let (status, _) = post(addr, "/v1/recommend", r#"{"user_id":"#);
        assert_eq!(status, 400);
        let (status, _) = post(addr, "/v1/adapt", r#"{"user_id":0,"support":[]}"#);
        assert_eq!(status, 422);
        let (status, _) = post(addr, "/v1/adapt", r#"{"user_id":0}"#);
        assert_eq!(status, 400);

        // Routing: unknown path 404, wrong method 405.
        let (status, _) = post(addr, "/nope", "{}");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET", "/v1/recommend", "");
        assert_eq!(status, 405);

        server.shutdown();
    }

    #[test]
    fn feedback_route_validates_appends_and_fails_closed() {
        let engine = tiny_engine(35);

        // Without a configured log the endpoint fails closed: 503, typed.
        let server = serve(ServerConfig::default(), router(Arc::clone(&engine))).expect("bind");
        let (status, body) = post(server.addr(), "/v1/feedback", r#"{"user_id":0,"item_id":1}"#);
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("without a feedback log"), "{body}");
        let (_, body) = request(server.addr(), "GET", "/health", "");
        assert!(body.contains("\"feedback_enabled\":false"), "{body}");
        server.shutdown();

        // With a log: validated events are appended with contiguous seqs.
        let path = std::env::temp_dir()
            .join(format!("metadpa_serve_fb_route_{}.jsonl", std::process::id()));
        let log = Arc::new(
            FeedbackLog::create(&path, &engine.meta().run_id, 1 << 20).expect("create log"),
        );
        let server = serve(
            ServerConfig::default(),
            router_with_feedback(Arc::clone(&engine), Some(Arc::clone(&log))),
        )
        .expect("bind");
        let addr = server.addr();
        let (_, body) = request(addr, "GET", "/health", "");
        assert!(body.contains("\"feedback_enabled\":true"), "{body}");

        let (status, body) = post(addr, "/v1/feedback", r#"{"user_id":1,"item_id":3}"#);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"seq\":1"), "{body}");
        let (status, body) = post(addr, "/v1/feedback", r#"{"user_id":2,"item_id":0,"label":0}"#);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"seq\":2"), "{body}");

        // Malformed and out-of-catalogue events are rejected, never logged.
        for (body_text, want) in [
            (r#"{"item_id":1}"#, 400),                         // missing_user_id
            (r#"{"user_id":0}"#, 400),                         // missing_item_id
            (r#"{"user_id":0,"item_id":"x"}"#, 400),           // bad_item_id
            (r#"{"user_id":0,"item_id":1,"label":"x"}"#, 400), // bad_label
            (r#"{"user_id":99,"item_id":1}"#, 422),            // user out of range
            (r#"{"user_id":0,"item_id":99}"#, 422),            // item out of range
        ] {
            let (status, resp) = post(addr, "/v1/feedback", body_text);
            assert_eq!(status, want, "{body_text} → {resp}");
        }
        assert_eq!(log.appended(), 2, "rejected events must not reach the log");

        log.flush();
        let read = metadpa_feedback::read_log(&path).expect("read back");
        assert_eq!(read.events.len(), 2);
        assert_eq!(read.events[0].user, 1);
        assert_eq!(read.events[1].label, 0.0);
        assert_eq!(read.events[1].run_id, engine.meta().run_id);

        server.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn nan_scoring_artifact_is_422_and_the_server_stays_alive() {
        // A CRC-valid artifact whose weights are all NaN restores cleanly
        // but scores every catalogue item as NaN. Before the non-finite
        // guard in `ArtifactRecommender::rank` this panicked inside
        // `top_k_indices` and killed the worker; now it must be a typed
        // 422 with /health still answering afterwards.
        let mut poisoned = tiny_artifact(33);
        for (_, m) in poisoned.params.iter_mut() {
            m.as_mut_slice().fill(f32::NAN);
        }
        let engine =
            Arc::new(Engine::new(poisoned.into_recommender().expect("NaN weights restore")));
        let server = serve(ServerConfig::default(), router(engine)).expect("bind");
        let addr = server.addr();

        let (status, body) = post(addr, "/v1/recommend", r#"{"user_id":1,"k":3}"#);
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("non-finite"), "{body}");

        // Cold-start content scoring goes through the same guard.
        let (status, body) =
            post(addr, "/v1/recommend", r#"{"content":[0.1,0.2,0.3,0.4,0.5,0.6],"k":2}"#);
        assert_eq!(status, 422, "{body}");

        let (status, body) = request(addr, "GET", "/health", "");
        assert_eq!(status, 200, "a poisoned request must not kill the server: {body}");

        server.shutdown();
    }
}

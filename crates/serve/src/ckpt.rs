//! The `metadpa-ckpt/v1` on-disk checkpoint container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic        8 bytes  b"MDPACKPT"
//! offset 8   version      u32      currently 1
//! offset 12  meta_len     u64
//! offset 20  meta         meta_len bytes of UTF-8 JSON
//!            n_tensors    u64
//!            per tensor:
//!              name_len   u64
//!              name       name_len bytes of UTF-8
//!              rows       u64
//!              cols       u64
//!              payload    rows*cols values (see tensor encoding below)
//! footer     crc32        u32      CRC-32 (IEEE) of everything above
//! ```
//!
//! **Tensor encoding.** By default values are stored as f64 even though
//! the in-memory [`metadpa_tensor::Matrix`] is f32: the widening is
//! exact, so a save → load → save cycle is byte-identical and a loaded
//! model scores bit-exactly like the one that was saved. When the
//! metadata blob contains the literal [`F32_ENCODING_MARKER`]
//! (`"tensor_encoding":"f32"`, written by `export --precision f32`), the
//! payload is rows*cols f32-LE values instead — half the bytes, still
//! lossless (the values *are* f32), still CRC-protected, same version 1
//! container. Both encodings are read by the same decoder; files without
//! the marker — every checkpoint written before it existed — decode
//! exactly as before.
//!
//! Loading never panics. Every failure is a [`CkptError`] carrying the
//! file path, the byte offset where decoding stopped, and a
//! [`CkptErrorKind`] — wrong magic, unsupported version, truncation,
//! CRC mismatch and structural nonsense are all distinguishable.

use std::fmt;
use std::sync::OnceLock;

use metadpa_tensor::Matrix;

/// File magic: the first 8 bytes of every checkpoint.
pub const MAGIC: &[u8; 8] = b"MDPACKPT";

/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Schema label used in logs and docs.
pub const CKPT_SCHEMA: &str = "metadpa-ckpt/v1";

/// Upper bound on a tensor-name length; longer names mean a scrambled
/// length field, not a real checkpoint.
const MAX_NAME_LEN: u64 = 4096;

/// Literal metadata substring that switches the tensor payload to f32-LE.
///
/// Matched as a substring (the checkpoint layer does not parse the
/// metadata JSON it transports), so writers must emit it exactly —
/// [`payload_width`] is shared by encode and decode, which keeps the two
/// sides consistent by construction.
pub const F32_ENCODING_MARKER: &str = "\"tensor_encoding\":\"f32\"";

/// Bytes per tensor value for a checkpoint with this metadata blob.
fn payload_width(meta_json: &str) -> usize {
    if meta_json.contains(F32_ENCODING_MARKER) {
        4
    } else {
        8
    }
}

/// What went wrong while loading a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CkptErrorKind {
    /// The underlying filesystem operation failed.
    Io,
    /// The file ended before the declared structure did.
    Truncated,
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// The version field names a format this build does not read.
    UnsupportedVersion,
    /// The CRC footer does not match the content (bit rot, partial write).
    Corrupt,
    /// Structurally invalid: absurd lengths, bad UTF-8, unknown tensor
    /// names, metadata that does not parse.
    Malformed,
}

impl CkptErrorKind {
    fn label(self) -> &'static str {
        match self {
            CkptErrorKind::Io => "io error",
            CkptErrorKind::Truncated => "truncated",
            CkptErrorKind::BadMagic => "bad magic",
            CkptErrorKind::UnsupportedVersion => "unsupported version",
            CkptErrorKind::Corrupt => "corrupt",
            CkptErrorKind::Malformed => "malformed",
        }
    }
}

/// A typed checkpoint failure: file, byte offset, kind and a human
/// explanation. The offset points at the field that failed to decode.
#[derive(Clone, Debug)]
pub struct CkptError {
    /// Path (or label) of the offending file.
    pub path: String,
    /// Byte offset where decoding stopped.
    pub offset: u64,
    /// Failure category.
    pub kind: CkptErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checkpoint {}: {} at byte {}: {}",
            self.path,
            self.kind.label(),
            self.offset,
            self.message
        )
    }
}

impl std::error::Error for CkptError {}

/// The in-memory form of one checkpoint file: a JSON metadata blob plus
/// an ordered named-tensor table.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Arbitrary UTF-8 JSON describing the tensors (schema, provenance…).
    pub meta_json: String,
    /// Named tensors in file order.
    pub tensors: Vec<(String, Matrix)>,
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Serializes a checkpoint to the `metadpa-ckpt/v1` byte layout.
pub fn encode(ckpt: &Checkpoint) -> Vec<u8> {
    let width = payload_width(&ckpt.meta_json);
    let payload: usize =
        ckpt.tensors.iter().map(|(n, m)| 24 + n.len() + width * m.rows() * m.cols()).sum();
    let mut buf = Vec::with_capacity(28 + ckpt.meta_json.len() + payload + 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let meta = ckpt.meta_json.as_bytes();
    buf.extend_from_slice(&(meta.len() as u64).to_le_bytes());
    buf.extend_from_slice(meta);
    buf.extend_from_slice(&(ckpt.tensors.len() as u64).to_le_bytes());
    for (name, m) in &ckpt.tensors {
        buf.extend_from_slice(&(name.len() as u64).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(m.rows() as u64).to_le_bytes());
        buf.extend_from_slice(&(m.cols() as u64).to_le_bytes());
        for &v in m.as_slice() {
            if width == 4 {
                buf.extend_from_slice(&v.to_le_bytes());
            } else {
                buf.extend_from_slice(&(v as f64).to_le_bytes());
            }
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Writes a checkpoint to `path` atomically enough for our purposes
/// (single `fs::write` of the fully encoded buffer).
pub fn save(path: &str, ckpt: &Checkpoint) -> Result<(), CkptError> {
    std::fs::write(path, encode(ckpt)).map_err(|e| CkptError {
        path: path.to_string(),
        offset: 0,
        kind: CkptErrorKind::Io,
        message: e.to_string(),
    })
}

/// Bounds-checked little-endian reader over the checkpoint body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl<'a> Reader<'a> {
    fn err(&self, kind: CkptErrorKind, message: impl Into<String>) -> CkptError {
        CkptError {
            path: self.path.to_string(),
            offset: self.pos as u64,
            kind,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        let remain = self.buf.len() - self.pos;
        if remain < n {
            return Err(self.err(
                CkptErrorKind::Truncated,
                format!("need {n} bytes for {what}, {remain} remain"),
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CkptError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CkptError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

/// Decodes a checkpoint from bytes; `path` labels errors only.
pub fn decode(path: &str, buf: &[u8]) -> Result<Checkpoint, CkptError> {
    let mut r = Reader { buf, pos: 0, path };
    let magic = r.take(8, "the file magic")?;
    if magic != MAGIC {
        r.pos = 0;
        return Err(r.err(
            CkptErrorKind::BadMagic,
            format!("expected {MAGIC:?}, found {magic:?} — not a metadpa checkpoint"),
        ));
    }
    let version = r.u32("the version field")?;
    if version != VERSION {
        r.pos = 8;
        return Err(r.err(
            CkptErrorKind::UnsupportedVersion,
            format!("file is version {version}, this build reads version {VERSION}"),
        ));
    }
    if buf.len() < r.pos + 4 {
        return Err(r.err(CkptErrorKind::Truncated, "file ends before the CRC footer"));
    }
    // Everything between here and the 4-byte footer is the CRC-protected
    // body; structural errors are reported first (they carry a precise
    // offset), the CRC verdict last.
    let body_end = buf.len() - 4;
    let mut r = Reader { buf: &buf[..body_end], pos: r.pos, path };

    let meta_len = r.u64("the metadata length")?;
    let meta_bytes = r.take(meta_len as usize, "the metadata blob")?;
    let meta_json = std::str::from_utf8(meta_bytes)
        .map_err(|e| r.err(CkptErrorKind::Malformed, format!("metadata is not UTF-8: {e}")))?
        .to_string();

    let width = payload_width(&meta_json);
    let n_tensors = r.u64("the tensor count")?;
    let mut tensors = Vec::new();
    for t in 0..n_tensors {
        let name_len = r.u64("a tensor name length")?;
        if name_len > MAX_NAME_LEN {
            return Err(r.err(
                CkptErrorKind::Malformed,
                format!("tensor {t} name length {name_len} exceeds the {MAX_NAME_LEN} cap"),
            ));
        }
        let name_bytes = r.take(name_len as usize, "a tensor name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|e| {
                r.err(CkptErrorKind::Malformed, format!("tensor {t} name is not UTF-8: {e}"))
            })?
            .to_string();
        let rows = r.u64("tensor rows")? as usize;
        let cols = r.u64("tensor cols")? as usize;
        let n = rows.checked_mul(cols).and_then(|n| n.checked_mul(width)).ok_or_else(|| {
            r.err(
                CkptErrorKind::Malformed,
                format!("tensor {name:?} shape {rows}x{cols} overflows"),
            )
        })?;
        let payload = r.take(n, "a tensor payload")?;
        let mut data = Vec::with_capacity(rows * cols);
        if width == 4 {
            for chunk in payload.chunks_exact(4) {
                data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
            }
        } else {
            for chunk in payload.chunks_exact(8) {
                let v = f64::from_le_bytes([
                    chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
                ]);
                data.push(v as f32);
            }
        }
        tensors.push((name, Matrix::from_vec(rows, cols, data)));
    }
    if r.pos != body_end {
        return Err(r.err(
            CkptErrorKind::Malformed,
            format!("{} unexpected trailing bytes before the CRC footer", body_end - r.pos),
        ));
    }

    let stored = u32::from_le_bytes([
        buf[body_end],
        buf[body_end + 1],
        buf[body_end + 2],
        buf[body_end + 3],
    ]);
    let computed = crc32(&buf[..body_end]);
    if stored != computed {
        return Err(CkptError {
            path: path.to_string(),
            offset: body_end as u64,
            kind: CkptErrorKind::Corrupt,
            message: format!("stored CRC 0x{stored:08x} != computed 0x{computed:08x}"),
        });
    }
    Ok(Checkpoint { meta_json, tensors })
}

/// Reads and decodes a checkpoint file.
pub fn load(path: &str) -> Result<Checkpoint, CkptError> {
    let buf = std::fs::read(path).map_err(|e| CkptError {
        path: path.to_string(),
        offset: 0,
        kind: CkptErrorKind::Io,
        message: e.to_string(),
    })?;
    decode(path, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            meta_json: r#"{"schema":"unit"}"#.to_string(),
            tensors: vec![
                ("a.p000".into(), Matrix::from_vec(2, 3, vec![1.0, -2.5, 0.0, 3.25, 4.0, -0.125])),
                ("b".into(), Matrix::zeros(1, 1)),
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let ckpt = sample();
        let bytes = encode(&ckpt);
        let back = decode("mem", &bytes).expect("decode");
        assert_eq!(back, ckpt);
        // Save → load → save is byte-identical.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn f32_encoding_round_trips_bit_exactly_at_half_the_payload() {
        let mut f32_ckpt = sample();
        f32_ckpt.meta_json = format!("{{\"schema\":\"unit\",{F32_ENCODING_MARKER}}}");
        let f32_bytes = encode(&f32_ckpt);
        let back = decode("mem", &f32_bytes).expect("decode f32 encoding");
        assert_eq!(back, f32_ckpt, "f32 values survive the narrow encoding losslessly");
        assert_eq!(encode(&back), f32_bytes, "save → load → save stays byte-identical");

        // The narrow payload really is half: same tensors, 4 bytes each
        // instead of 8 (fixed overhead aside).
        let f64_bytes = encode(&sample());
        let n_values: usize = f32_ckpt.tensors.iter().map(|(_, m)| m.rows() * m.cols()).sum();
        let meta_delta = f32_ckpt.meta_json.len() - sample().meta_json.len();
        assert_eq!(f64_bytes.len() + meta_delta, f32_bytes.len() + 4 * n_values);
    }

    #[test]
    fn unmarked_checkpoints_keep_the_f64_encoding() {
        // Byte-layout stability for every pre-existing checkpoint: without
        // the marker the payload stays 8 bytes per value, so files written
        // before the f32 encoding existed decode unchanged (and the
        // default export path still produces bit-identical files).
        let ckpt = sample();
        let bytes = encode(&ckpt);
        let n_values: usize = ckpt.tensors.iter().map(|(_, m)| m.rows() * m.cols()).sum();
        let fixed: usize = 8 + 4 + 8 + ckpt.meta_json.len() // magic, version, meta_len, meta
            + 8                                             // n_tensors
            + ckpt.tensors.iter().map(|(n, _)| 24 + n.len()).sum::<usize>()
            + 4; // crc
        assert_eq!(bytes.len(), fixed + 8 * n_values, "8-byte payload without the marker");
        assert_eq!(decode("mem", &bytes).expect("decode"), ckpt);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wrong_magic_and_future_version_are_typed() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        let err = decode("mem", &bytes).unwrap_err();
        assert_eq!(err.kind, CkptErrorKind::BadMagic);
        assert_eq!(err.offset, 0);

        let mut bytes = encode(&sample());
        bytes[8] = 9; // version 9
        let err = decode("mem", &bytes).unwrap_err();
        assert_eq!(err.kind, CkptErrorKind::UnsupportedVersion);
        assert_eq!(err.offset, 8);
        assert!(err.to_string().contains("version 9"), "{err}");
    }

    #[test]
    fn flipped_payload_byte_fails_the_crc() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode("mem", &bytes).unwrap_err();
        // Depending on which field the flip lands in, this is a CRC
        // failure or a structural error — never a success, never a panic.
        assert!(matches!(
            err.kind,
            CkptErrorKind::Corrupt | CkptErrorKind::Malformed | CkptErrorKind::Truncated
        ));
    }
}

//! The thread-safe inference engine: scoring plus the adaptation cache.
//!
//! [`Engine`] wraps an [`ArtifactRecommender`] behind a mutex (the model
//! caches activations, so scoring needs `&mut`) and keeps a per-user cache
//! of serve-time-adapted parameter sets, LRU-bounded at a configurable
//! capacity so online graduation at scale cannot grow memory without
//! limit. Adaptation is deterministic — the same support set always
//! produces the same parameters — so cache entries never go stale until
//! replaced by a newer adaptation for the same user, evicted under
//! capacity pressure (`serve.adapt_cache.evictions`), or invalidated
//! wholesale by a drift reaction ([`Engine::invalidate_adapted`]).
//!
//! The engine is also the serving side of the streaming feedback loop: it
//! implements [`metadpa_feedback::FeedbackSink`], so the background
//! `FeedbackAdapter` graduates users cold→warm by calling straight into
//! [`Engine::adapt_user`] and reacts to the drift alert through
//! [`Engine::invalidate_adapted`].
//!
//! Batch scoring parallelism comes from the tensor layer: a recommend call
//! ranks the whole catalogue with one batched forward pass (an
//! `n_items x 2·content_dim` input matrix), so on large catalogues the
//! row-parallel matmul kernels in `metadpa_tensor::pool` fan the work out
//! across `METADPA_THREADS` workers — bit-identical to serial, per the
//! pool's determinism contract, which the tests below pin at the engine
//! level.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use metadpa_core::artifact::{ArtifactError, ArtifactMeta, ArtifactRecommender};
use metadpa_feedback::FeedbackSink;
use metadpa_obs::window::QuantileDrift;
use metadpa_tensor::Matrix;

/// Windowed KS distance beyond which `serve.drift.alert` flips to 1: a
/// sup-distance of 0.25 means some training quantile's live hit rate is off
/// by 25 percentage points — far outside fingerprint sketch error.
pub const DRIFT_ALERT_THRESHOLD: f64 = 0.25;

/// Default LRU capacity of the adapted-parameter cache.
pub const DEFAULT_ADAPT_CACHE_CAPACITY: usize = 4096;

/// How many live ranking scores (at most) feed the drift tracker per
/// request; larger catalogues are stride-sampled down to this.
const DRIFT_SAMPLE_CAP: usize = 256;

/// One cached adaptation: the parameters plus its LRU recency tick.
struct CacheEntry {
    params: Arc<Vec<Matrix>>,
    tick: u64,
}

/// LRU-bounded map from user id to adapted parameters. A plain HashMap
/// with recency ticks and a linear min-scan on eviction: adaptation costs
/// milliseconds of matmuls per insert, so an O(capacity) scan on the
/// (rare) over-capacity insert is noise next to an intrusive-list LRU.
struct AdaptedCache {
    map: HashMap<usize, CacheEntry>,
    capacity: usize,
    clock: u64,
    evictions: u64,
}

impl AdaptedCache {
    fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), capacity: capacity.max(1), clock: 0, evictions: 0 }
    }

    /// Cache hit: refreshes the entry's recency and hands back the params.
    fn touch(&mut self, user: usize) -> Option<Arc<Vec<Matrix>>> {
        self.clock += 1;
        let tick = self.clock;
        self.map.get_mut(&user).map(|e| {
            e.tick = tick;
            Arc::clone(&e.params)
        })
    }

    /// Read without touching recency (tests compare cached tensors).
    fn peek(&self, user: usize) -> Option<Arc<Vec<Matrix>>> {
        self.map.get(&user).map(|e| Arc::clone(&e.params))
    }

    /// Inserts (or replaces) a user's adaptation, evicting the least
    /// recently used entry when a *new* user would exceed capacity.
    fn insert(&mut self, user: usize, params: Arc<Vec<Matrix>>) {
        if !self.map.contains_key(&user) && self.map.len() >= self.capacity {
            // Tie-break equal ticks on the user id: `min_by_key` over bare
            // HashMap iteration picks whichever equal-tick entry the hash
            // order yields first, which varies per process and would break
            // the bit-exact feedback-replay contract.
            if let Some(&lru) = self.map.iter().min_by_key(|(u, e)| (e.tick, **u)).map(|(u, _)| u) {
                self.map.remove(&lru);
                self.evictions += 1;
                metadpa_obs::counter_add!("serve.adapt_cache.evictions", 1);
            }
        }
        self.clock += 1;
        self.map.insert(user, CacheEntry { params, tick: self.clock });
    }

    fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        n
    }
}

/// Where a recommendation's parameters came from; reported in responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeSource {
    /// Meta-parameters θ, user known from training.
    Warm,
    /// A cached serve-time-adapted parameter set for this user.
    AdaptedCache,
    /// θ applied to request-supplied (or default) content — a user the
    /// model has never seen.
    Cold,
    /// One-shot adaptation on request-supplied content and support.
    Adapted,
}

impl ServeSource {
    /// Wire label used in response JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeSource::Warm => "warm",
            ServeSource::AdaptedCache => "adapted-cache",
            ServeSource::Cold => "cold",
            ServeSource::Adapted => "adapted",
        }
    }
}

/// Shared inference state: the reloaded recommender plus the per-user
/// adaptation cache.
pub struct Engine {
    rec: Mutex<ArtifactRecommender>,
    adapted: Mutex<AdaptedCache>,
    meta: ArtifactMeta,
    n_users: usize,
    n_items: usize,
    content_dim: usize,
    /// Live drift tracker seeded from the artifact's training-score
    /// fingerprint; `None` for pre-fingerprint checkpoints.
    drift: Option<QuantileDrift>,
}

impl Engine {
    /// Wraps a reloaded recommender with the default adapted-cache bound.
    pub fn new(rec: ArtifactRecommender) -> Self {
        Self::with_adapt_capacity(rec, DEFAULT_ADAPT_CACHE_CAPACITY)
    }

    /// Wraps a reloaded recommender, bounding the adapted-parameter cache
    /// at `capacity` users (LRU eviction beyond that; min 1).
    pub fn with_adapt_capacity(rec: ArtifactRecommender, capacity: usize) -> Self {
        let meta = rec.meta().clone();
        let (n_users, n_items, content_dim) = (rec.n_users(), rec.n_items(), rec.content_dim());
        let fp = &meta.score_fingerprint;
        let probs: Vec<f64> = fp.probs.iter().map(|&p| p as f64).collect();
        let thresholds: Vec<f64> = fp.quantiles.iter().map(|&q| q as f64).collect();
        let drift = QuantileDrift::with_defaults(&probs, &thresholds);
        Self {
            rec: Mutex::new(rec),
            adapted: Mutex::new(AdaptedCache::new(capacity)),
            meta,
            n_users,
            n_items,
            content_dim,
            drift,
        }
    }

    /// Whether the artifact carried a training-score fingerprint to track
    /// drift against.
    pub fn tracks_drift(&self) -> bool {
        self.drift.is_some()
    }

    /// `(drift statistic, windowed sample count)` over the trailing window;
    /// `None` without a fingerprint or before the first scored request.
    pub fn drift_stat(&self) -> Option<(f64, u64)> {
        self.drift.as_ref().and_then(QuantileDrift::stat)
    }

    /// Feeds the freshest full-catalogue ranking scores into the drift
    /// window and refreshes the `serve.drift.*` gauges. Fully gated on
    /// [`metadpa_obs::enabled`]: with observability off this is one relaxed
    /// atomic load, keeping the zero-allocation serve contract intact.
    fn observe_drift(&self, scores: &[f32]) {
        if !metadpa_obs::enabled() {
            return;
        }
        let Some(drift) = &self.drift else { return };
        if scores.is_empty() {
            return;
        }
        let stride = scores.len().div_ceil(DRIFT_SAMPLE_CAP).max(1);
        for s in scores.iter().step_by(stride) {
            drift.observe(*s as f64);
        }
        if let Some((stat, _)) = drift.stat() {
            metadpa_obs::gauge_set!("serve.drift.stat", stat);
            metadpa_obs::gauge_set!(
                "serve.drift.alert",
                if stat > DRIFT_ALERT_THRESHOLD { 1.0 } else { 0.0 }
            );
        }
    }

    /// The artifact's metadata.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// Number of users the artifact knows.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Catalogue size.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Content vector width requests must match.
    pub fn content_dim(&self) -> usize {
        self.content_dim
    }

    /// Number of users with a cached adaptation.
    pub fn cached_adaptations(&self) -> usize {
        self.adapted.lock().expect("engine adaptation cache poisoned").map.len()
    }

    /// How many cache entries LRU pressure has evicted so far.
    pub fn adapt_cache_evictions(&self) -> u64 {
        self.adapted.lock().expect("engine adaptation cache poisoned").evictions
    }

    /// A user's cached adapted parameters, without touching LRU recency —
    /// the hook replay tests use to compare cache tensors bit-for-bit.
    pub fn adapted_params(&self, user: usize) -> Option<Arc<Vec<Matrix>>> {
        self.adapted.lock().expect("engine adaptation cache poisoned").peek(user)
    }

    /// Drops every cached adaptation (the drift reaction); returns how
    /// many entries were invalidated. Warm serving from θ is untouched.
    pub fn invalidate_adapted(&self) -> usize {
        self.adapted.lock().expect("engine adaptation cache poisoned").clear()
    }

    /// Whether the live drift statistic is currently over
    /// [`DRIFT_ALERT_THRESHOLD`].
    pub fn drift_alerting(&self) -> bool {
        self.drift_stat().is_some_and(|(stat, _)| stat > DRIFT_ALERT_THRESHOLD)
    }

    /// Validates one implicit-feedback event against the artifact (known
    /// user, in-catalogue item, finite label) without touching any state.
    pub fn validate_feedback(
        &self,
        user: usize,
        item: usize,
        label: f32,
    ) -> Result<(), ArtifactError> {
        self.rec.lock().expect("engine recommender poisoned").validate_event(user, item, label)
    }

    fn cached(&self, user: usize) -> Option<Arc<Vec<Matrix>>> {
        self.adapted.lock().expect("engine adaptation cache poisoned").touch(user)
    }

    /// Top-`k` for a known user id. Uses the user's cached adapted
    /// parameters when present, θ otherwise; the source says which.
    pub fn recommend_user(
        &self,
        user: usize,
        k: usize,
    ) -> Result<(Vec<(usize, f32)>, ServeSource), ArtifactError> {
        let _s = metadpa_obs::span!("engine.recommend_user");
        let params = self.cached(user);
        let source = if params.is_some() {
            metadpa_obs::counter_add!("serve.adapt_cache.hit", 1);
            ServeSource::AdaptedCache
        } else {
            metadpa_obs::counter_add!("serve.adapt_cache.miss", 1);
            ServeSource::Warm
        };
        let mut rec = self.rec.lock().expect("engine recommender poisoned");
        let list = rec.recommend(user, k, params.as_deref().map(Vec::as_slice))?;
        self.observe_drift(rec.last_scores());
        Ok((list, source))
    }

    /// Top-`k` for a raw content vector (cold user, no support set).
    pub fn recommend_content(
        &self,
        content: &[f32],
        k: usize,
    ) -> Result<Vec<(usize, f32)>, ArtifactError> {
        let _s = metadpa_obs::span!("engine.recommend_content");
        let mut rec = self.rec.lock().expect("engine recommender poisoned");
        let list = rec.recommend_content(content, k, None)?;
        self.observe_drift(rec.last_scores());
        Ok(list)
    }

    /// Top-`k` for a cold request carrying no content at all: scores the
    /// "average user" vector (column mean of the training user content).
    pub fn recommend_cold_default(&self, k: usize) -> Result<Vec<(usize, f32)>, ArtifactError> {
        let _s = metadpa_obs::span!("engine.recommend_cold");
        let mut rec = self.rec.lock().expect("engine recommender poisoned");
        let mean = rec.mean_user_content();
        let list = rec.recommend_content(&mean, k, None)?;
        self.observe_drift(rec.last_scores());
        Ok(list)
    }

    /// Runs the serve-time MAML inner loop on a known user's support set
    /// and caches the adapted parameters; subsequent
    /// [`Engine::recommend_user`] calls for this user serve from the cache.
    /// Returns the cache size after insertion.
    pub fn adapt_user(
        &self,
        user: usize,
        support: &[(usize, f32)],
    ) -> Result<usize, ArtifactError> {
        let _s = metadpa_obs::span!("engine.adapt_user");
        let adapted = {
            let mut rec = self.rec.lock().expect("engine recommender poisoned");
            rec.adapt_user(user, support)?
        };
        metadpa_obs::counter_add!("serve.adaptations", 1);
        let mut cache = self.adapted.lock().expect("engine adaptation cache poisoned");
        cache.insert(user, Arc::new(adapted));
        Ok(cache.map.len())
    }

    /// One-shot adaptation for a brand-new user: adapts on the supplied
    /// content + support and immediately returns the adapted top-`k`
    /// (nothing is cached — there is no user id to key on).
    pub fn adapt_and_recommend_content(
        &self,
        content: &[f32],
        support: &[(usize, f32)],
        k: usize,
    ) -> Result<Vec<(usize, f32)>, ArtifactError> {
        let _s = metadpa_obs::span!("engine.adapt_content");
        let mut rec = self.rec.lock().expect("engine recommender poisoned");
        let adapted = rec.adapt_content(content, support)?;
        metadpa_obs::counter_add!("serve.adaptations", 1);
        let list = rec.recommend_content(content, k, Some(&adapted))?;
        self.observe_drift(rec.last_scores());
        Ok(list)
    }

    /// Drops a user's cached adaptation; returns whether one existed.
    pub fn evict(&self, user: usize) -> bool {
        self.adapted.lock().expect("engine adaptation cache poisoned").map.remove(&user).is_some()
    }
}

/// The serving side of the streaming feedback loop: the background
/// `FeedbackAdapter` graduates users by re-running the trained MAML inner
/// loop through [`Engine::adapt_user`] (installing into the same LRU cache
/// `/v1/adapt` uses) and reacts to the drift alert by invalidating it.
impl FeedbackSink for Engine {
    fn graduate(&self, user: usize, support: &[(usize, f32)], _first: bool) -> Result<(), String> {
        self.adapt_user(user, support).map(|_| ()).map_err(|e| e.to_string())
    }

    fn drift_alert(&self) -> bool {
        self.drift_alerting()
    }

    fn invalidate_adapted(&self) -> usize {
        Engine::invalidate_adapted(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::artifact::artifact_from_learner;
    use metadpa_core::augmentation::DiversityReport;
    use metadpa_core::{MamlConfig, MetaLearner, PreferenceConfig};
    use metadpa_tensor::SeededRng;

    fn tiny_rec(seed: u64) -> ArtifactRecommender {
        let pref = PreferenceConfig { content_dim: 6, embed_dim: 5, hidden: [8, 4] };
        let maml = MamlConfig { finetune_steps: 2, ..MamlConfig::default() };
        let mut rng = SeededRng::new(seed);
        let mut learner = MetaLearner::new(pref, maml, &mut rng);
        let user_content = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let item_content = rng.uniform_matrix(9, 6, -1.0, 1.0);
        let artifact = artifact_from_learner(
            &mut learner,
            "unit",
            "rev".into(),
            "fp".into(),
            DiversityReport::default(),
            user_content,
            item_content,
            String::new(),
        );
        artifact.into_recommender().expect("valid artifact")
    }

    fn tiny_engine(seed: u64) -> Engine {
        Engine::new(tiny_rec(seed))
    }

    #[test]
    fn warm_then_adapted_cache_switches_source() {
        let engine = tiny_engine(21);
        let (warm, source) = engine.recommend_user(2, 4).expect("warm");
        assert_eq!(source, ServeSource::Warm);
        assert_eq!(warm.len(), 4);
        assert_eq!(engine.cached_adaptations(), 0);

        let cached = engine.adapt_user(2, &[(0, 1.0), (5, 0.0)]).expect("adapt");
        assert_eq!(cached, 1);
        let (adapted, source) = engine.recommend_user(2, 4).expect("adapted");
        assert_eq!(source, ServeSource::AdaptedCache);
        assert_ne!(adapted, warm, "adaptation must change the scores");

        // Other users still serve warm; eviction restores warm serving.
        let (_, source) = engine.recommend_user(0, 4).expect("other user");
        assert_eq!(source, ServeSource::Warm);
        assert!(engine.evict(2));
        let (back, source) = engine.recommend_user(2, 4).expect("after evict");
        assert_eq!(source, ServeSource::Warm);
        assert_eq!(back, warm, "θ was never touched");
    }

    #[test]
    fn cold_paths_score_without_a_user_id() {
        let engine = tiny_engine(22);
        let by_mean = engine.recommend_cold_default(3).expect("default cold");
        assert_eq!(by_mean.len(), 3);
        let content = vec![0.25f32; 6];
        let cold = engine.recommend_content(&content, 3).expect("content cold");
        let adapted = engine
            .adapt_and_recommend_content(&content, &[(1, 1.0), (2, 0.0)], 3)
            .expect("one-shot adapt");
        assert_ne!(cold, adapted, "support must influence the adapted list");
        assert_eq!(engine.cached_adaptations(), 0, "content adaptation is not cached");
    }

    #[test]
    fn serving_is_bit_identical_across_thread_counts() {
        // The serve scoring path inherits the pool's determinism contract:
        // the same request must produce bit-identical scores no matter how
        // many threads the matmul kernels fan out across.
        let serial = {
            let engine = tiny_engine(24);
            metadpa_tensor::pool::with_threads(1, || engine.recommend_user(1, 5).expect("serial").0)
        };
        for threads in [2, 7] {
            let engine = tiny_engine(24);
            let par = metadpa_tensor::pool::with_threads(threads, || {
                engine.recommend_user(1, 5).expect("parallel").0
            });
            assert_eq!(par.len(), serial.len());
            for ((i_s, s), (i_p, p)) in serial.iter().zip(&par) {
                assert_eq!(i_s, i_p, "item order drift at threads={threads}");
                assert_eq!(s.to_bits(), p.to_bits(), "score drift at threads={threads}");
            }
        }
    }

    #[test]
    fn drift_tracker_follows_the_fingerprint_and_stays_quiet_on_distribution() {
        let engine = tiny_engine(25);
        assert!(engine.tracks_drift(), "export stamps a fingerprint");
        assert!(engine.drift_stat().is_none(), "no scores observed yet");

        // With observability off, scoring must not feed the tracker.
        engine.recommend_user(0, 3).expect("obs-off recommend");
        assert!(engine.drift_stat().is_none(), "drift is obs-gated");

        let _obs = metadpa_obs::test_lock();
        metadpa_obs::enable(Arc::new(metadpa_obs::NullRecorder));
        metadpa_obs::metrics::reset();
        // Score every training user: the live window then holds the same
        // score population the export-time fingerprint sketched.
        for user in 0..engine.n_users() {
            engine.recommend_user(user, 3).expect("warm recommend");
        }
        let (stat, n) = engine.drift_stat().expect("windowed scores present");
        assert_eq!(n as usize, engine.n_users() * engine.n_items(), "one score per pair");
        assert!((0.0..=1.0).contains(&stat), "KS distance in [0,1], got {stat}");
        // Live warm scores come from the distribution the fingerprint
        // sketched, so the alert gauge must stay down.
        assert!(stat < DRIFT_ALERT_THRESHOLD, "on-distribution scores, got {stat}");
        metadpa_obs::disable();
    }

    #[test]
    fn adapted_cache_is_lru_bounded_and_bulk_invalidatable() {
        let engine = Engine::with_adapt_capacity(tiny_rec(26), 2);
        let support = [(0usize, 1.0f32), (5, 0.0)];
        engine.adapt_user(0, &support).expect("adapt 0");
        engine.adapt_user(1, &support).expect("adapt 1");
        assert_eq!(engine.cached_adaptations(), 2);
        assert_eq!(engine.adapt_cache_evictions(), 0);

        // Touch user 0 so user 1 becomes least-recently-used, then overflow.
        engine.recommend_user(0, 3).expect("touch 0");
        engine.adapt_user(2, &support).expect("adapt 2 evicts 1");
        assert_eq!(engine.cached_adaptations(), 2, "capacity is a hard bound");
        assert_eq!(engine.adapt_cache_evictions(), 1);
        assert!(engine.adapted_params(1).is_none(), "LRU entry evicted");
        assert!(engine.adapted_params(0).is_some(), "recently used entry survives");
        assert!(engine.adapted_params(2).is_some(), "new entry installed");

        // Re-adapting a resident user must not evict anyone.
        engine.adapt_user(0, &support).expect("refresh 0");
        assert_eq!(engine.adapt_cache_evictions(), 1, "refresh is not an eviction");

        assert_eq!(engine.invalidate_adapted(), 2);
        assert_eq!(engine.cached_adaptations(), 0);
        let (_, source) = engine.recommend_user(0, 3).expect("after invalidate");
        assert_eq!(source, ServeSource::Warm);
    }

    #[test]
    fn adapted_cache_evicts_equal_ticks_deterministically() {
        // Regression: the eviction scan used `min_by_key` on tick alone, so
        // equal-tick entries were evicted in HashMap iteration order —
        // different per process, breaking bit-exact feedback replay. The
        // tie now breaks on the smaller user id, every time.
        for _ in 0..8 {
            let mut cache = AdaptedCache::new(3);
            let params = Arc::new(Vec::new());
            for user in [7usize, 2, 9] {
                cache.insert(user, Arc::clone(&params));
            }
            // Force the degenerate equal-tick state directly (the public
            // API hands out unique ticks; replay of a truncated log or a
            // clock reset can still collide).
            for e in cache.map.values_mut() {
                e.tick = 5;
            }
            cache.insert(11, Arc::clone(&params));
            assert!(cache.peek(2).is_none(), "smallest equal-tick user is the victim");
            assert!(cache.peek(7).is_some());
            assert!(cache.peek(9).is_some());
            assert!(cache.peek(11).is_some());
            assert_eq!(cache.evictions, 1);
        }

        // With distinct ticks the tie-break never engages: plain LRU.
        let mut cache = AdaptedCache::new(2);
        let params = Arc::new(Vec::new());
        cache.insert(5, Arc::clone(&params));
        cache.insert(1, Arc::clone(&params));
        cache.touch(5);
        cache.insert(3, params);
        assert!(cache.peek(1).is_none(), "oldest tick evicted even with a larger-id peer");
        assert!(cache.peek(5).is_some());
    }

    #[test]
    fn feedback_sink_graduation_installs_adapted_params() {
        let engine = tiny_engine(27);
        let sink: &dyn FeedbackSink = &engine;
        sink.graduate(1, &[(0, 1.0), (3, 0.0), (4, 1.0)], true).expect("graduate");
        assert_eq!(engine.cached_adaptations(), 1);
        let (_, source) = engine.recommend_user(1, 3).expect("serve graduated user");
        assert_eq!(source, ServeSource::AdaptedCache);
        assert!(!sink.drift_alert(), "no drift observed yet");
        assert_eq!(sink.invalidate_adapted(), 1);
        assert_eq!(engine.cached_adaptations(), 0);

        let err = sink.graduate(99, &[(0, 1.0)], true).expect_err("bad user");
        assert!(err.contains("99"), "error carries the offending user: {err}");
    }

    #[test]
    fn request_errors_pass_through_typed() {
        let engine = tiny_engine(23);
        assert!(matches!(
            engine.recommend_user(99, 3),
            Err(ArtifactError::UserOutOfRange { user: 99, n_users: 4 })
        ));
        assert!(matches!(engine.adapt_user(0, &[]), Err(ArtifactError::EmptySupport)));
    }
}

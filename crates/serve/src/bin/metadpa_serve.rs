//! `metadpa-serve` — export, run and smoke-test serving artifacts.
//!
//! ```text
//! metadpa-serve export --out artifact.ckpt [--seed N] [--precision f64|f32]
//!     Fit the fast MetaDPA pipeline on the tiny synthetic world and
//!     export the result as a metadpa-ckpt/v1 artifact. The default
//!     (f64) encoding is byte-identical to what earlier builds wrote;
//!     --precision f32 writes the narrow tensor encoding, and a serve
//!     process that loads it ranks catalogues through the fused-FMA
//!     kernels.
//!
//! metadpa-serve run --artifact artifact.ckpt [--addr 127.0.0.1:8787] [--workers 4]
//!     Load an artifact and serve /v1/recommend, /v1/adapt, /health,
//!     /metrics until the process is killed. With --feedback-log PATH the
//!     server also ingests implicit feedback on POST /v1/feedback into a
//!     size-rotated JSONL log, and a background adapter thread tails that
//!     log, re-running the trained MAML inner loop for any user who
//!     crosses --feedback-threshold events (default 5) — cold users
//!     graduate into the adapted-parameter cache live, and the cache is
//!     invalidated on the rising edge of the drift alert.
//!     --adapt-cache-capacity N bounds the adapted cache (LRU, default
//!     4096).
//!
//! metadpa-serve smoke --artifact artifact.ckpt
//!     Load an artifact, bind an ephemeral port, drive loopback requests
//!     through every route (including the 422 path), verify the
//!     responses, shut down cleanly and exit 0 — the CI smoke stage.
//! ```
//!
//! `run` and `smoke` additionally accept `--trace-out PATH`: write one
//! JSONL record per request (plus every span and a final metrics snapshot)
//! to a size-rotated trace log that `obs-report tail` / `check-trace` can
//! stream. Without it the process keeps the default null recorder, and the
//! serve hot path stays allocation-free.
//!
//! `export` accepts `--train-trace-out PATH`: the same rotated JSONL
//! recorder, but pointed at the *training* run — one `train_epoch` record
//! per MAML/CVAE epoch (loss components, grad norm, wall time, ETA), typed
//! `train_anomaly` events from the sentinels, and the run-ledger ID that
//! `obs-report train-tail` / `check-train` / `lineage` join on.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;

use metadpa_core::artifact::Precision;
use metadpa_core::eval::Recommender;
use metadpa_core::{MetaDpa, MetaDpaConfig};
use metadpa_data::generator::generate_world;
use metadpa_data::presets::tiny_world;
use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
use metadpa_feedback::{AdapterConfig, FeedbackAdapter, FeedbackLog, GraduationConfig};
use metadpa_obs::recorder::{NullRecorder, RotatingFileRecorder};
use metadpa_serve::engine::DEFAULT_ADAPT_CACHE_CAPACITY;
use metadpa_serve::http::{serve, ServerConfig};
use metadpa_serve::{load_artifact, router, router_with_feedback, save_artifact, Engine};

fn usage() -> ExitCode {
    eprintln!(
        "usage: metadpa-serve export --out PATH [--seed N] [--precision f64|f32] [--train-trace-out PATH]\n\
         \x20      metadpa-serve run --artifact PATH [--addr HOST:PORT] [--workers N] [--trace-out PATH]\n\
         \x20          [--feedback-log PATH] [--feedback-threshold N] [--adapt-cache-capacity N]\n\
         \x20      metadpa-serve smoke --artifact PATH [--trace-out PATH]"
    );
    ExitCode::from(2)
}

/// Returns the value following `--flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn cmd_export(args: &[String]) -> ExitCode {
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("export: --out PATH is required");
        return ExitCode::from(2);
    };
    let seed: u64 = match flag_value(args, "--seed").as_deref().map(str::parse) {
        None => 7,
        Some(Ok(s)) => s,
        Some(Err(_)) => {
            eprintln!("export: --seed must be an integer");
            return ExitCode::from(2);
        }
    };
    let precision = match flag_value(args, "--precision").as_deref() {
        None | Some("f64") => Precision::F64,
        Some("f32") => Precision::F32,
        Some(other) => {
            eprintln!("export: --precision must be f64 or f32, got {other:?}");
            return ExitCode::from(2);
        }
    };
    eprintln!("fitting the fast MetaDPA pipeline on tiny_world(seed={seed})...");
    let world = generate_world(&tiny_world(seed));
    let splitter = Splitter::new(&world.target, SplitConfig::default());
    let warm = splitter.scenario(ScenarioKind::Warm);
    let mut model = MetaDpa::new(MetaDpaConfig::fast());
    model.fit(&world, &warm);
    let mut artifact = model.export_artifact(&world);
    // Training always runs at the default precision; the flag only picks
    // the tensor encoding the artifact is written with (and, through the
    // meta, the fused serving kernels it will rank with when loaded).
    artifact.meta.precision = precision;
    eprintln!(
        "exporting {} ({} tensors, {} users, {} items, rev {}, data {}, precision {})",
        artifact.meta.model_name,
        artifact.params.len() + 2,
        artifact.user_content.rows(),
        artifact.item_content.rows(),
        artifact.meta.git_rev,
        artifact.meta.data_fingerprint,
        artifact.meta.precision.as_str(),
    );
    match save_artifact(&out, &artifact) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("export failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_engine(artifact_path: &str, adapt_capacity: usize) -> Result<Arc<Engine>, String> {
    let artifact = load_artifact(artifact_path).map_err(|e| e.to_string())?;
    let rec = artifact.into_recommender().map_err(|e| e.to_string())?;
    Ok(Arc::new(Engine::with_adapt_capacity(rec, adapt_capacity)))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(path) = flag_value(args, "--artifact") else {
        eprintln!("run: --artifact PATH is required");
        return ExitCode::from(2);
    };
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8787".to_string());
    let workers: usize = match flag_value(args, "--workers").as_deref().map(str::parse) {
        None => 4,
        Some(Ok(w)) => w,
        Some(Err(_)) => {
            eprintln!("run: --workers must be an integer");
            return ExitCode::from(2);
        }
    };
    let threshold: usize = match flag_value(args, "--feedback-threshold").as_deref().map(str::parse)
    {
        None => metadpa_feedback::DEFAULT_THRESHOLD,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("run: --feedback-threshold must be an integer");
            return ExitCode::from(2);
        }
    };
    let capacity: usize =
        match flag_value(args, "--adapt-cache-capacity").as_deref().map(str::parse) {
            None => DEFAULT_ADAPT_CACHE_CAPACITY,
            Some(Ok(c)) => c,
            Some(Err(_)) => {
                eprintln!("run: --adapt-cache-capacity must be an integer");
                return ExitCode::from(2);
            }
        };
    let engine = match build_engine(&path, capacity) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let meta = engine.meta().clone();
    // Feedback wiring: the HTTP route appends to the log; the background
    // adapter tails the same file and graduates users through the engine.
    let feedback = match flag_value(args, "--feedback-log") {
        None => None,
        Some(fb_path) => {
            match FeedbackLog::create(
                &fb_path,
                &meta.run_id,
                RotatingFileRecorder::DEFAULT_MAX_BYTES,
            ) {
                Ok(log) => Some((Arc::new(log), fb_path)),
                Err(e) => {
                    eprintln!("run: --feedback-log {fb_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let _adapter = feedback.as_ref().map(|(log, fb_path)| {
        let cfg = AdapterConfig {
            graduation: GraduationConfig::with_threshold(threshold),
            ..AdapterConfig::default()
        };
        eprintln!("feedback log at {fb_path} (graduation threshold {threshold})");
        FeedbackAdapter::spawn(log.path(), cfg, Arc::clone(&engine) as _)
    });
    let server = match serve(
        ServerConfig { addr, workers, ..ServerConfig::default() },
        router_with_feedback(Arc::clone(&engine), feedback.map(|(log, _)| log)),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("run: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serving {} (rev {}) on http://{} with {workers} workers",
        meta.model_name,
        meta.git_rev,
        server.addr()
    );
    // Serve until killed: park this thread forever.
    loop {
        std::thread::park();
    }
}

/// One loopback HTTP request; returns (status, body).
fn loopback(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return (0, String::new()),
    };
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if s.write_all(raw.as_bytes()).is_err() {
        return (0, String::new());
    }
    let mut out = String::new();
    if s.read_to_string(&mut out).is_err() {
        return (0, String::new());
    }
    let status = out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0);
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn expect(cond: bool, what: &str, detail: &str) -> Result<(), String> {
    if cond {
        eprintln!("  ok: {what}");
        Ok(())
    } else {
        Err(format!("{what}: {detail}"))
    }
}

fn run_smoke(engine: Arc<Engine>) -> Result<(), String> {
    let content_dim = engine.content_dim();
    let server =
        serve(ServerConfig { workers: 2, ..ServerConfig::default() }, router(Arc::clone(&engine)))
            .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    eprintln!("smoke server on http://{addr}");

    let result = (|| {
        let (status, body) = loopback(addr, "GET", "/health", "");
        expect(status == 200, "GET /health is 200", &body)?;
        expect(body.contains("\"status\":\"ok\""), "/health body is well-formed", &body)?;

        let (status, body) = loopback(addr, "POST", "/v1/recommend", r#"{"user_id":0,"k":5}"#);
        expect(status == 200, "warm /v1/recommend is 200", &body)?;
        expect(
            body.contains("\"items\":[") && body.contains("\"source\":\"warm\""),
            "warm body has items and source",
            &body,
        )?;

        let (status, body) =
            loopback(addr, "POST", "/v1/adapt", r#"{"user_id":0,"support":[[0,1.0],[1,0.0]]}"#);
        expect(status == 200, "POST /v1/adapt is 200", &body)?;
        let (status, body) = loopback(addr, "POST", "/v1/recommend", r#"{"user_id":0,"k":5}"#);
        expect(
            status == 200 && body.contains("\"source\":\"adapted-cache\""),
            "adapted user serves from the cache",
            &body,
        )?;

        let cold = format!(r#"{{"content":[{}],"k":5}}"#, vec!["0.1"; content_dim].join(","));
        let (status, body) = loopback(addr, "POST", "/v1/recommend", &cold);
        expect(
            status == 200 && body.contains("\"source\":\"cold\""),
            "cold /v1/recommend is 200",
            &body,
        )?;

        let (status, body) = loopback(addr, "POST", "/v1/recommend", r#"{"user_id":999999}"#);
        expect(status == 422, "out-of-range user id is 422", &body)?;
        expect(body.contains("out of range"), "422 body explains the problem", &body)?;

        let (status, body) = loopback(addr, "GET", "/metrics", "");
        expect(status == 200, "GET /metrics is 200", &body)?;
        expect(body.contains("serve_requests"), "metrics include serve counters", &body)?;
        Ok(())
    })();
    server.shutdown();
    eprintln!("smoke server shut down cleanly");
    result
}

fn cmd_smoke(args: &[String]) -> ExitCode {
    let Some(path) = flag_value(args, "--artifact") else {
        eprintln!("smoke: --artifact PATH is required");
        return ExitCode::from(2);
    };
    let engine = match build_engine(&path, DEFAULT_ADAPT_CACHE_CAPACITY) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("smoke: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_smoke(engine) {
        Ok(()) => {
            eprintln!("smoke: all checks passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("smoke: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--trace-out` traces the serve path; `--train-trace-out` traces the
    // training run behind `export`. Both install the same rotated JSONL
    // recorder — the flags are separate so scripts can name the two streams
    // without ambiguity, and so `export` never silently inherits a serve
    // trace destination.
    let trace_path = flag_value(&args, "--trace-out").or_else(|| {
        flag_value(&args, "--train-trace-out").inspect(|_| {
            eprintln!("tracing training run (train_epoch records, anomaly sentinels, run ledger)");
        })
    });
    match trace_path {
        Some(path) => {
            match RotatingFileRecorder::create(&path, RotatingFileRecorder::DEFAULT_MAX_BYTES) {
                Ok(rec) => {
                    eprintln!("tracing to {path} (size-rotated, keeps 2 generations)");
                    metadpa_obs::enable(Arc::new(rec));
                }
                Err(e) => {
                    eprintln!("--trace-out {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        // Metrics (counters, latency histograms) only record while obs is
        // enabled; the null recorder keeps the event stream free.
        None => metadpa_obs::enable(Arc::new(NullRecorder)),
    }
    let code = match args.first().map(String::as_str) {
        Some("export") => cmd_export(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        _ => usage(),
    };
    // In trace mode, close the stream with a metrics snapshot so offline
    // consumers see windowed p99s and drift gauges without scraping.
    // (`run` never gets here — it serves until killed; the lenient stream
    // reader tolerates the truncated tail that leaves behind.)
    metadpa_obs::emit_metrics_snapshot();
    metadpa_obs::flush();
    code
}

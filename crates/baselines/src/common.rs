//! Shared training machinery for the content-based baselines.
//!
//! CoNN, DAML, CATN and the content path of TDAR all map a
//! `[c_u ; c_i]` row to a single preference logit. This module provides
//! the supervised trainer (plain BCE + Adam over all task examples — these
//! baselines do *not* meta-learn), the fine-tuner (a few SGD steps on the
//! support sets, the fairest possible cold-start adaptation for
//! non-meta-learning systems), and scoring.

use metadpa_data::task::Task;
use metadpa_nn::loss::bce_with_logits;
use metadpa_nn::module::{zero_grad, Mode, Module};
use metadpa_nn::optim::{Adam, Optimizer, Sgd};
use metadpa_tensor::{Matrix, SeededRng};

/// Training schedule for supervised content models.
#[derive(Clone, Copy, Debug)]
pub struct SupervisedConfig {
    /// Passes over the task set.
    pub epochs: usize,
    /// Adam learning rate for fitting.
    pub lr: f32,
    /// SGD learning rate for cold-start fine-tuning.
    pub finetune_lr: f32,
    /// SGD steps per fine-tune call.
    pub finetune_steps: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl SupervisedConfig {
    /// Standard schedule (`fast = false`) or a reduced one for tests.
    pub fn preset(fast: bool) -> Self {
        if fast {
            Self { epochs: 4, lr: 2e-3, finetune_lr: 0.03, finetune_steps: 3, seed: 7 }
        } else {
            Self { epochs: 12, lr: 1e-3, finetune_lr: 0.03, finetune_steps: 5, seed: 7 }
        }
    }
}

/// Builds the `[c_u ; c_i]` input rows for one user and a set of items.
pub fn assemble_pair_input(user_content: &[f32], item_content: &Matrix, items: &[usize]) -> Matrix {
    let d = user_content.len();
    let mut input = Matrix::zeros(items.len(), d + item_content.cols());
    for (row, &item) in items.iter().enumerate() {
        input.row_mut(row)[..d].copy_from_slice(user_content);
        input.row_mut(row)[d..].copy_from_slice(item_content.row(item));
    }
    input
}

/// Trains a pair-scoring module with BCE + Adam over every labelled example
/// in every task (support and query alike — these are plain supervised
/// models). Returns the per-epoch mean loss.
pub fn fit_supervised(
    model: &mut dyn Module,
    tasks: &[Task],
    user_content: &Matrix,
    item_content: &Matrix,
    cfg: &SupervisedConfig,
) -> Vec<f32> {
    let _span = metadpa_obs::span!("baseline.fit_supervised");
    let mut rng = SeededRng::new(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut total = 0.0f64;
        let mut n = 0usize;
        for &idx in &order {
            let task = &tasks[idx];
            let examples: Vec<(usize, f32)> =
                task.support.iter().chain(task.query.iter()).copied().collect();
            if examples.is_empty() {
                continue;
            }
            let loss = step_on_examples(
                model,
                user_content.row(task.user),
                item_content,
                &examples,
                |m| opt.step(m),
            );
            total += loss as f64;
            n += 1;
        }
        let mean = (total / n.max(1) as f64) as f32;
        metadpa_obs::event!(
            "baseline.epoch",
            "epoch" => epoch,
            "bce" => mean as f64,
            "tasks_used" => n,
        );
        history.push(mean);
    }
    history
}

/// A few SGD steps on each task's support set (cold-start adaptation).
pub fn finetune_supervised(
    model: &mut dyn Module,
    tasks: &[Task],
    user_content: &Matrix,
    item_content: &Matrix,
    cfg: &SupervisedConfig,
) {
    let _span = metadpa_obs::span!("baseline.finetune");
    let sgd = Sgd::new(cfg.finetune_lr);
    for _ in 0..cfg.finetune_steps {
        for task in tasks {
            if task.support.is_empty() {
                continue;
            }
            let _ = step_on_examples(
                model,
                user_content.row(task.user),
                item_content,
                &task.support,
                |m| m.visit_params(&mut |p| sgd.step_param(p)),
            );
        }
    }
}

/// One forward/backward/step on a labelled example set. Returns the loss.
fn step_on_examples(
    model: &mut dyn Module,
    user_content: &[f32],
    item_content: &Matrix,
    examples: &[(usize, f32)],
    mut apply: impl FnMut(&mut dyn Module),
) -> f32 {
    let items: Vec<usize> = examples.iter().map(|&(i, _)| i).collect();
    let labels = Matrix::from_vec(examples.len(), 1, examples.iter().map(|&(_, l)| l).collect());
    let input = assemble_pair_input(user_content, item_content, &items);
    zero_grad(model);
    let logits = model.forward(&input, Mode::Train);
    let (loss, grad) = bce_with_logits(&logits, &labels);
    let _ = model.backward(&grad);
    apply(model);
    loss
}

/// Scores items for one user with a pair-scoring module (evaluation mode).
pub fn score_pairs(
    model: &mut dyn Module,
    user_content: &[f32],
    item_content: &Matrix,
    items: &[usize],
) -> Vec<f32> {
    if items.is_empty() {
        return Vec::new();
    }
    let input = assemble_pair_input(user_content, item_content, items);
    model.forward(&input, Mode::Eval).into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_nn::mlp::{Activation, Mlp};

    fn toy() -> (Vec<Task>, Matrix, Matrix) {
        // User u likes item i iff parity matches; content encodes parity.
        let uc = Matrix::from_fn(
            6,
            4,
            |u, c| if u % 2 == 0 { 0.8 } else { -0.8 } * (1.0 + c as f32 * 0.1),
        );
        let ic = Matrix::from_fn(
            8,
            4,
            |i, c| if i % 2 == 0 { 0.7 } else { -0.7 } * (1.0 + c as f32 * 0.05),
        );
        let tasks = (0..6)
            .map(|u| {
                let pairs: Vec<(usize, f32)> =
                    (0..8).map(|i| (i, if (u % 2) == (i % 2) { 1.0 } else { 0.0 })).collect();
                let (s, q) = pairs.split_at(4);
                Task { user: u, support: s.to_vec(), query: q.to_vec() }
            })
            .collect();
        (tasks, uc, ic)
    }

    #[test]
    fn supervised_fitting_reduces_loss_and_ranks_correctly() {
        let (tasks, uc, ic) = toy();
        let mut rng = SeededRng::new(1);
        let mut model = Mlp::new(&[8, 16, 1], Activation::Tanh, &mut rng);
        let cfg = SupervisedConfig { epochs: 40, ..SupervisedConfig::preset(true) };
        let history = fit_supervised(&mut model, &tasks, &uc, &ic, &cfg);
        assert!(history.last().unwrap() < &history[0], "{history:?}");
        // Even user should rank an even item above an odd one.
        let scores = score_pairs(&mut model, uc.row(0), &ic, &[0, 1]);
        assert!(scores[0] > scores[1], "{scores:?}");
    }

    #[test]
    fn finetune_moves_parameters() {
        let (tasks, uc, ic) = toy();
        let mut rng = SeededRng::new(2);
        let mut model = Mlp::new(&[8, 16, 1], Activation::Tanh, &mut rng);
        let before = metadpa_nn::module::snapshot(&mut model);
        let cfg = SupervisedConfig::preset(true);
        finetune_supervised(&mut model, &tasks, &uc, &ic, &cfg);
        let after = metadpa_nn::module::snapshot(&mut model);
        assert_ne!(before, after);
    }

    #[test]
    fn assemble_pair_input_layout() {
        let ic = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let input = assemble_pair_input(&[5.0, 6.0], &ic, &[1]);
        assert_eq!(input.row(0), &[5.0, 6.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_items_score_empty() {
        let mut rng = SeededRng::new(3);
        let mut model = Mlp::new(&[4, 4, 1], Activation::Relu, &mut rng);
        let ic = Matrix::zeros(2, 2);
        assert!(score_pairs(&mut model, &[0.0, 0.0], &ic, &[]).is_empty());
    }
}

//! DAML — Dual Attention Mutual Learning between ratings and reviews
//! (Liu et al., KDD 2019).
//!
//! DAML extends the CoNN-style two-tower review model with *local* and
//! *mutual* attention between the user-side and item-side review features
//! before a neural-factorization-machine scorer. Scale-down mapping:
//!
//! * local attention → a per-side sigmoid gate computed from that side's
//!   own features (`g_u = σ(W_l e_u)`, applied multiplicatively);
//! * mutual attention → a cross-side gate computed from the *other* side's
//!   features (`m_u = σ(W_m e_i)`), so each side's representation is
//!   re-weighted by what the other side talks about — the mechanism that
//!   gives DAML its edge over CoNN;
//! * the NFM second-order pooling → an elementwise product feature
//!   `e_u ⊙ e_i` concatenated into the final scorer input.
//!
//! Like CoNN, DAML is plain supervised (no meta-learning, no cross-domain
//! transfer).

use metadpa_core::eval::Recommender;
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::dense::Dense;
use metadpa_nn::mlp::{Activation, Mlp};
use metadpa_nn::module::{restore, snapshot, Mode, Module};
use metadpa_nn::param::Param;
use metadpa_tensor::{Matrix, SeededRng};

use crate::common::{finetune_supervised, fit_supervised, score_pairs, SupervisedConfig};

/// DAML hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct DamlConfig {
    /// Width of each review tower's output.
    pub tower_dim: usize,
    /// Hidden width of each tower.
    pub tower_hidden: usize,
    /// Hidden width of the final scorer.
    pub scorer_hidden: usize,
    /// Supervised training schedule.
    pub train: SupervisedConfig,
}

impl DamlConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            tower_dim: if fast { 12 } else { 24 },
            tower_hidden: if fast { 24 } else { 48 },
            scorer_hidden: if fast { 16 } else { 32 },
            train: SupervisedConfig::preset(fast),
        }
    }
}

/// Sigmoid gate helper: `g = σ(W x + b)`, `y = x_target ⊙ g`, with full
/// backward through both the gate and the gated features.
struct Gate {
    dense: Dense,
    cached_gate: Option<Matrix>,
    cached_target: Option<Matrix>,
}

impl Gate {
    fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        Self { dense: Dense::new(in_dim, out_dim, rng), cached_gate: None, cached_target: None }
    }

    /// `target ⊙ σ(dense(source))`.
    fn forward(&mut self, source: &Matrix, target: &Matrix, mode: Mode) -> Matrix {
        let gate = self.dense.forward(source, mode).map(metadpa_nn::activation::sigmoid);
        let out = target.hadamard(&gate);
        self.cached_gate = Some(gate);
        self.cached_target = Some(target.clone());
        out
    }

    /// Returns `(d_source, d_target)`.
    fn backward(&mut self, grad: &Matrix) -> (Matrix, Matrix) {
        let gate = self.cached_gate.take().expect("Gate::backward before forward");
        let target = self.cached_target.take().expect("Gate::backward before forward");
        let d_target = grad.hadamard(&gate);
        // d pre-sigmoid = grad ⊙ target ⊙ g(1-g).
        let d_pre = grad.hadamard(&target).zip_map(&gate, |v, g| v * g * (1.0 - g));
        let d_source = self.dense.backward(&d_pre);
        (d_source, d_target)
    }
}

/// The DAML network. Input `[c_u ; c_i]`, output one logit.
struct DamlNet {
    content_dim: usize,
    tower_dim: usize,
    user_tower: Mlp,
    item_tower: Mlp,
    /// Local gates: each side attends to itself.
    local_u: Gate,
    local_i: Gate,
    /// Mutual gates: each side is re-weighted by the other side.
    mutual_u: Gate,
    mutual_i: Gate,
    scorer: Mlp,
    cache: Option<DamlCache>,
}

impl DamlNet {
    fn new(content_dim: usize, cfg: &DamlConfig, rng: &mut SeededRng) -> Self {
        let d = cfg.tower_dim;
        Self {
            content_dim,
            tower_dim: d,
            user_tower: Mlp::new(&[content_dim, cfg.tower_hidden, d], Activation::Relu, rng),
            item_tower: Mlp::new(&[content_dim, cfg.tower_hidden, d], Activation::Relu, rng),
            local_u: Gate::new(d, d, rng),
            local_i: Gate::new(d, d, rng),
            mutual_u: Gate::new(d, d, rng),
            mutual_i: Gate::new(d, d, rng),
            // Scorer sees [u_att ; i_att ; u_att ⊙ i_att].
            scorer: Mlp::new(&[3 * d, cfg.scorer_hidden, 1], Activation::Relu, rng),
            cache: None,
        }
    }
}

struct DamlCache {
    u_att: Matrix,
    i_att: Matrix,
}

impl Module for DamlNet {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let (cu, ci) = input.hsplit(self.content_dim);
        let eu = self.user_tower.forward(&cu, mode);
        let ei = self.item_tower.forward(&ci, mode);
        // Local attention: self-gating.
        let eu_l = self.local_u.forward(&eu, &eu, mode);
        let ei_l = self.local_i.forward(&ei, &ei, mode);
        // Mutual attention: gate each side by the other.
        let u_att = self.mutual_u.forward(&ei_l, &eu_l, mode);
        let i_att = self.mutual_i.forward(&eu_l, &ei_l, mode);
        let second_order = u_att.hadamard(&i_att);
        let features = u_att.hstack(&i_att).hstack(&second_order);
        self.cache = Some(DamlCache { u_att, i_att });
        self.scorer.forward(&features, mode)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("DamlNet::backward before forward");
        let d = self.tower_dim;
        let d_features = self.scorer.backward(grad_output);
        let (d_ui, d_so) = d_features.hsplit(2 * d);
        let (mut d_u_att, mut d_i_att) = d_ui.hsplit(d);
        // second_order = u_att ⊙ i_att.
        d_u_att.add_inplace(&d_so.hadamard(&cache.i_att));
        d_i_att.add_inplace(&d_so.hadamard(&cache.u_att));
        // Mutual gates.
        let (d_ei_l_from_u, d_eu_l_1) = self.mutual_u.backward(&d_u_att);
        let (d_eu_l_from_i, d_ei_l_1) = self.mutual_i.backward(&d_i_att);
        let d_eu_l = &d_eu_l_1 + &d_eu_l_from_i;
        let d_ei_l = &d_ei_l_1 + &d_ei_l_from_u;
        // Local gates: source == target == e, so both gradients add.
        let (d_eu_a, d_eu_b) = self.local_u.backward(&d_eu_l);
        let (d_ei_a, d_ei_b) = self.local_i.backward(&d_ei_l);
        let d_eu = &d_eu_a + &d_eu_b;
        let d_ei = &d_ei_a + &d_ei_b;
        let d_cu = self.user_tower.backward(&d_eu);
        let d_ci = self.item_tower.backward(&d_ei);
        d_cu.hstack(&d_ci)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.user_tower.visit_params(visitor);
        self.item_tower.visit_params(visitor);
        self.local_u.dense.visit_params(visitor);
        self.local_i.dense.visit_params(visitor);
        self.mutual_u.dense.visit_params(visitor);
        self.mutual_i.dense.visit_params(visitor);
        self.scorer.visit_params(visitor);
    }
}

/// The DAML recommender.
pub struct Daml {
    config: DamlConfig,
    seed: u64,
    net: Option<DamlNet>,
}

impl Daml {
    /// Creates an unfitted DAML.
    pub fn new(config: DamlConfig, seed: u64) -> Self {
        Self { config, seed, net: None }
    }

    fn net_mut(&mut self) -> &mut DamlNet {
        self.net.as_mut().expect("Daml: call fit first")
    }
}

impl Recommender for Daml {
    fn name(&self) -> String {
        "DAML".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let mut rng = SeededRng::new(self.seed);
        let mut net = DamlNet::new(world.target.user_content.cols(), &self.config, &mut rng);
        let _ = fit_supervised(
            &mut net,
            &scenario.train_tasks,
            &world.target.user_content,
            &world.target.item_content,
            &self.config.train,
        );
        self.net = Some(net);
    }

    fn fine_tune(&mut self, tasks: &[Task], domain: &Domain) {
        let cfg = self.config.train;
        finetune_supervised(
            self.net_mut(),
            tasks,
            &domain.user_content,
            &domain.item_content,
            &cfg,
        );
    }

    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let uc: Vec<f32> = domain.user_content.row(user).to_vec();
        score_pairs(self.net_mut(), &uc, &domain.item_content, items)
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        snapshot(self.net_mut())
    }

    fn restore_state(&mut self, state: &[Matrix]) {
        restore(self.net_mut(), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
    use metadpa_nn::grad_check::check_module;

    #[test]
    fn daml_net_gradients_verify() {
        let mut rng = SeededRng::new(1);
        let cfg = DamlConfig {
            tower_dim: 4,
            tower_hidden: 6,
            scorer_hidden: 5,
            train: SupervisedConfig::preset(true),
        };
        let mut net = DamlNet::new(5, &cfg, &mut rng);
        let input = rng.normal_matrix(3, 10);
        let upstream = rng.normal_matrix(3, 1);
        let report = check_module(&mut net, &input, &upstream, 1e-2);
        assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn daml_beats_chance_on_warm_and_cold_item() {
        let w = generate_world(&tiny_world(91));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let ci = sp.scenario(ScenarioKind::ColdItem);
        // The fast preset is tuned for smoke speed; give the gated model a
        // few more epochs so the content signal reliably beats chance.
        let mut cfg = DamlConfig::preset(true);
        cfg.train.epochs = 10;
        let mut model = Daml::new(cfg, 2);
        model.fit(&w, &warm);
        let warm_auc = evaluate_scenario(&mut model, &w, &warm, 10).auc;
        let ci_auc = evaluate_scenario(&mut model, &w, &ci, 10).auc;
        assert!(warm_auc > 0.5, "warm AUC {warm_auc}");
        assert!(ci_auc > 0.5, "C-I AUC {ci_auc}");
    }

    #[test]
    fn gate_backward_requires_forward() {
        let mut rng = SeededRng::new(3);
        let mut gate = Gate::new(3, 3, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = gate.backward(&Matrix::zeros(1, 3));
        }));
        assert!(result.is_err());
    }
}

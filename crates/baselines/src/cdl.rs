//! CDL — Collaborative Deep Learning (Wang et al., KDD 2015).
//!
//! An *extended* baseline beyond Table III: the paper's Related Work
//! (§II-A) presents CDL as the canonical tightly-coupled content-aware
//! recommender, so it anchors the content family's classical end.
//!
//! Original: a probabilistic stacked denoising autoencoder over item
//! content whose middle layer is coupled to the item latent factors of a
//! matrix-factorization model (`v_i = encoder(c_i) + ε_i`). Scale-down:
//! the SDAE becomes a two-layer denoising autoencoder on the bag-of-words
//! item content; user factors are free parameters trained with logistic
//! MF against `v_i = enc(c_i) + offset_i`. Cold items score through the
//! encoder alone (`offset = 0`) — exactly CDL's cold-start story.

use metadpa_core::eval::Recommender;
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::activation::sigmoid;
use metadpa_nn::loss::mse;
use metadpa_nn::mlp::{Activation, Mlp};
use metadpa_nn::module::{restore, snapshot, zero_grad, Mode, Module};
use metadpa_nn::optim::{Adam, Optimizer};
use metadpa_tensor::{Matrix, SeededRng};

/// CDL hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct CdlConfig {
    /// Latent factor dimensionality (the autoencoder bottleneck).
    pub factors: usize,
    /// Autoencoder hidden width.
    pub ae_hidden: usize,
    /// Denoising mask probability.
    pub noise: f32,
    /// Autoencoder pre-training epochs.
    pub ae_epochs: usize,
    /// Collaborative training epochs.
    pub cf_epochs: usize,
    /// SGD learning rate for factors.
    pub lr: f32,
    /// L2 regularization on factors and offsets.
    pub reg: f32,
    /// Fine-tune steps (user factors only).
    pub finetune_steps: usize,
}

impl CdlConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            factors: 16,
            ae_hidden: 32,
            noise: 0.2,
            ae_epochs: if fast { 20 } else { 60 },
            cf_epochs: if fast { 5 } else { 20 },
            lr: 0.05,
            reg: 0.01,
            finetune_steps: if fast { 3 } else { 8 },
        }
    }
}

/// The CDL recommender.
pub struct Cdl {
    config: CdlConfig,
    seed: u64,
    state: Option<State>,
}

struct State {
    encoder: Mlp,
    /// Cached `encoder(c_i)` for all items (recomputed after training).
    item_encodings: Matrix,
    /// Per-item offsets ε_i (zero for unseen items).
    item_offsets: Matrix,
    user_factors: Matrix,
    user_bias: Vec<f32>,
    item_bias: Vec<f32>,
}

impl State {
    fn item_vector(&self, item: usize) -> Vec<f32> {
        self.item_encodings
            .row(item)
            .iter()
            .zip(self.item_offsets.row(item).iter())
            .map(|(&e, &o)| e + o)
            .collect()
    }

    fn score_one(&self, user: usize, item: usize) -> f32 {
        let v = self.item_vector(item);
        let dot: f32 = self.user_factors.row(user).iter().zip(v.iter()).map(|(&a, &b)| a * b).sum();
        dot + self.user_bias[user] + self.item_bias[item]
    }
}

impl Cdl {
    /// Creates an unfitted CDL.
    pub fn new(config: CdlConfig, seed: u64) -> Self {
        Self { config, seed, state: None }
    }

    fn state_mut(&mut self) -> &mut State {
        self.state.as_mut().expect("Cdl: call fit first")
    }
}

impl Recommender for Cdl {
    fn name(&self) -> String {
        "CDL".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let cfg = self.config;
        let mut rng = SeededRng::new(self.seed);
        let content = &world.target.item_content;
        let content_dim = content.cols();

        // ---- Phase 1: denoising autoencoder pre-training on item content.
        let mut encoder =
            Mlp::new(&[content_dim, cfg.ae_hidden, cfg.factors], Activation::Tanh, &mut rng);
        let mut decoder =
            Mlp::new(&[cfg.factors, cfg.ae_hidden, content_dim], Activation::Tanh, &mut rng);
        let mut opt = Adam::new(1e-3);
        for _ in 0..cfg.ae_epochs {
            // Denoise the full item-content matrix in one batch (small at
            // this scale).
            let corrupted = Matrix::from_fn(content.rows(), content_dim, |r, c| {
                if rng.bernoulli(cfg.noise) {
                    0.0
                } else {
                    content.get(r, c)
                }
            });
            zero_grad(&mut encoder);
            zero_grad(&mut decoder);
            let code = encoder.forward(&corrupted, Mode::Train);
            let recon = decoder.forward(&code, Mode::Train);
            let (_, grad) = mse(&recon, content);
            let d_code = decoder.backward(&grad);
            let _ = encoder.backward(&d_code);
            opt.step(&mut encoder);
            opt.step(&mut decoder);
        }
        let item_encodings = encoder.forward(content, Mode::Eval);

        // ---- Phase 2: collaborative training with coupled item vectors.
        let n_users = world.target.n_users();
        let n_items = world.target.n_items();
        let mut state = State {
            encoder,
            item_encodings,
            item_offsets: Matrix::zeros(n_items, cfg.factors),
            user_factors: rng.normal_matrix(n_users, cfg.factors).scale(0.1),
            user_bias: vec![0.0; n_users],
            item_bias: vec![0.0; n_items],
        };
        for _ in 0..cfg.cf_epochs {
            let mut order: Vec<usize> = (0..scenario.train_tasks.len()).collect();
            rng.shuffle(&mut order);
            for &t_idx in &order {
                let task = &scenario.train_tasks[t_idx];
                for &(item, label) in task.support.iter().chain(task.query.iter()) {
                    let pred = sigmoid(state.score_one(task.user, item));
                    let err = pred - label;
                    for f in 0..cfg.factors {
                        let uf = state.user_factors.get(task.user, f);
                        let vf =
                            state.item_encodings.get(item, f) + state.item_offsets.get(item, f);
                        state.user_factors.set(
                            task.user,
                            f,
                            uf - cfg.lr * (err * vf + cfg.reg * uf),
                        );
                        // Only the offset moves; the encoder output is the
                        // content prior (CDL's coupling).
                        let off = state.item_offsets.get(item, f);
                        state.item_offsets.set(item, f, off - cfg.lr * (err * uf + cfg.reg * off));
                    }
                    state.user_bias[task.user] -= cfg.lr * err;
                    state.item_bias[item] -= cfg.lr * err;
                }
            }
        }
        self.state = Some(state);
    }

    fn fine_tune(&mut self, tasks: &[Task], _domain: &Domain) {
        let cfg = self.config;
        let state = self.state_mut();
        for _ in 0..cfg.finetune_steps {
            for task in tasks {
                for &(item, label) in &task.support {
                    let pred = sigmoid(state.score_one(task.user, item));
                    let err = pred - label;
                    for f in 0..cfg.factors {
                        let uf = state.user_factors.get(task.user, f);
                        let vf =
                            state.item_encodings.get(item, f) + state.item_offsets.get(item, f);
                        state.user_factors.set(
                            task.user,
                            f,
                            uf - cfg.lr * (err * vf + cfg.reg * uf),
                        );
                    }
                    state.user_bias[task.user] -= cfg.lr * err;
                }
            }
        }
    }

    fn score(&mut self, _domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let state = self.state_mut();
        items.iter().map(|&i| state.score_one(user, i)).collect()
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        let state = self.state_mut();
        let mut out = vec![
            state.user_factors.clone(),
            state.item_offsets.clone(),
            Matrix::row_vector(&state.user_bias),
            Matrix::row_vector(&state.item_bias),
        ];
        out.extend(snapshot(&mut state.encoder));
        out
    }

    fn restore_state(&mut self, saved: &[Matrix]) {
        let state = self.state_mut();
        state.user_factors = saved[0].clone();
        state.item_offsets = saved[1].clone();
        state.user_bias = saved[2].as_slice().to_vec();
        state.item_bias = saved[3].as_slice().to_vec();
        restore(&mut state.encoder, &saved[4..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

    #[test]
    fn cdl_beats_chance_on_warm_and_handles_cold_items() {
        let w = generate_world(&tiny_world(131));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let ci = sp.scenario(ScenarioKind::ColdItem);
        let mut model = Cdl::new(CdlConfig::preset(true), 1);
        model.fit(&w, &warm);
        let warm_s = evaluate_scenario(&mut model, &w, &warm, 10);
        assert!(warm_s.auc > 0.55, "warm AUC {}", warm_s.auc);
        // Cold items score through the content encoder -> above chance,
        // unlike pure CF.
        let ci_s = evaluate_scenario(&mut model, &w, &ci, 10);
        assert!(ci_s.auc > 0.5, "C-I AUC {} should use the content path", ci_s.auc);
    }

    #[test]
    fn cold_item_vectors_come_from_the_encoder_alone() {
        let w = generate_world(&tiny_world(132));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let mut model = Cdl::new(CdlConfig::preset(true), 2);
        model.fit(&w, &warm);
        // An item never seen in training keeps a zero offset.
        let counts = w.target.item_rating_counts();
        let cold = counts.iter().position(|&c| c < 5).expect("a cold item exists");
        let state = model.state.as_ref().unwrap();
        assert!(state.item_offsets.row(cold).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let w = generate_world(&tiny_world(133));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = Cdl::new(CdlConfig::preset(true), 3);
        model.fit(&w, &warm);
        let user = cu.eval[0].user;
        let items: Vec<usize> = (0..5).collect();
        let before = model.score(&w.target, user, &items);
        let state = model.snapshot_state();
        model.fine_tune(&cu.finetune_tasks, &w.target);
        model.restore_state(&state);
        assert_eq!(before, model.score(&w.target, user, &items));
    }
}

//! CATN — Cross-domain recommendation via Aspect Transfer Network for
//! cold-start users (Zhao et al., SIGIR 2020).
//!
//! CATN extracts *aspects* from review text on each side and scores a
//! user-item pair by aspect-level matching, transferring aspect
//! correspondences across domains through shared users. Scale-down:
//!
//! * aspect extraction → a linear map + softmax from the bag-of-words
//!   content to `n_aspects` (the original's attention over review chunks
//!   produces exactly such a mixture);
//! * aspect matching → a learned bilinear form `s = a_uᵀ M a_i + b`;
//! * cross-domain aspect transfer → an alignment loss making the shared
//!   extractor produce consistent aspect mixtures for the same person's
//!   source and target reviews, so a cold user's aspects are meaningful
//!   from content alone (CATN's cold-start-user mechanism).

use metadpa_core::eval::Recommender;
use metadpa_data::adaptation::{build_adaptation_pairs, AdaptationConfig};
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::activation::Softmax;
use metadpa_nn::dense::Dense;
use metadpa_nn::loss::mse;
use metadpa_nn::module::{restore, snapshot, zero_grad, Mode, Module};
use metadpa_nn::optim::{Adam, Optimizer};
use metadpa_nn::param::Param;
use metadpa_tensor::{Matrix, SeededRng};

use crate::common::{finetune_supervised, fit_supervised, score_pairs, SupervisedConfig};

/// CATN hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct CatnConfig {
    /// Number of latent aspects.
    pub n_aspects: usize,
    /// Weight of the cross-domain aspect-alignment loss.
    pub align_weight: f32,
    /// Aspect-alignment epochs over shared users.
    pub align_epochs: usize,
    /// Supervised training schedule on target tasks.
    pub train: SupervisedConfig,
}

impl CatnConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            n_aspects: if fast { 6 } else { 10 },
            align_weight: 0.5,
            align_epochs: if fast { 3 } else { 10 },
            train: SupervisedConfig::preset(fast),
        }
    }
}

/// Aspect extraction + bilinear matching. Input `[c_u ; c_i]`, output one
/// logit per row.
struct CatnNet {
    content_dim: usize,
    n_aspects: usize,
    user_extractor: Dense,
    item_extractor: Dense,
    user_softmax: Softmax,
    item_softmax: Softmax,
    /// Bilinear aspect-matching matrix `M` (`n_aspects x n_aspects`).
    matching: Param,
    /// Scalar bias.
    bias: Param,
    cache: Option<CatnCache>,
}

struct CatnCache {
    a_u: Matrix,
    a_i: Matrix,
}

impl CatnNet {
    fn new(content_dim: usize, n_aspects: usize, rng: &mut SeededRng) -> Self {
        Self {
            content_dim,
            n_aspects,
            user_extractor: Dense::new(content_dim, n_aspects, rng),
            item_extractor: Dense::new(content_dim, n_aspects, rng),
            user_softmax: Softmax::new(),
            item_softmax: Softmax::new(),
            matching: Param::new(rng.normal_matrix(n_aspects, n_aspects).scale(0.3)),
            bias: Param::zeros(1, 1),
            cache: None,
        }
    }

    /// Aspect mixture of user content rows.
    fn user_aspects(&mut self, cu: &Matrix, mode: Mode) -> Matrix {
        let logits = self.user_extractor.forward(cu, mode);
        self.user_softmax.forward(&logits, mode)
    }
}

impl Module for CatnNet {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let (cu, ci) = input.hsplit(self.content_dim);
        let a_u = self.user_aspects(&cu, mode);
        let a_i = self.item_softmax.forward(&self.item_extractor.forward(&ci, mode), mode);
        // Row-wise bilinear score s_r = a_u[r] M a_i[r]^T + b.
        let proj = a_u.matmul(&self.matching.value); // n x A
        let mut out = Matrix::zeros(input.rows(), 1);
        for r in 0..input.rows() {
            let s: f32 = proj.row(r).iter().zip(a_i.row(r).iter()).map(|(&p, &a)| p * a).sum();
            out.set(r, 0, s + self.bias.value.get(0, 0));
        }
        self.cache = Some(CatnCache { a_u, a_i });
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("CatnNet::backward before forward");
        let n = grad_output.rows();
        let a = self.n_aspects;
        // d bias.
        let gsum: f32 = grad_output.as_slice().iter().sum();
        self.bias.grad.set(0, 0, self.bias.grad.get(0, 0) + gsum);
        // Per-row: s = a_u M a_i^T.
        // d a_u = g * (M a_i); d a_i = g * (M^T a_u); dM += g * a_u^T a_i.
        let mut d_au = Matrix::zeros(n, a);
        let mut d_ai = Matrix::zeros(n, a);
        for r in 0..n {
            let g = grad_output.get(r, 0);
            if g == 0.0 {
                continue;
            }
            let au = cache.a_u.row(r);
            let ai = cache.a_i.row(r);
            for p in 0..a {
                let mut acc_u = 0.0f32;
                let mut acc_i = 0.0f32;
                for q in 0..a {
                    acc_u += self.matching.value.get(p, q) * ai[q];
                    acc_i += self.matching.value.get(q, p) * au[q];
                    // dM[p][q] += g * au[p] * ai[q] handled below.
                }
                d_au.set(r, p, g * acc_u);
                d_ai.set(r, p, g * acc_i);
            }
            for (p, &au_p) in au.iter().enumerate() {
                for (q, &ai_q) in ai.iter().enumerate() {
                    let cur = self.matching.grad.get(p, q);
                    self.matching.grad.set(p, q, cur + g * au_p * ai_q);
                }
            }
        }
        let d_au_logits = self.user_softmax.backward(&d_au);
        let d_ai_logits = self.item_softmax.backward(&d_ai);
        let d_cu = self.user_extractor.backward(&d_au_logits);
        let d_ci = self.item_extractor.backward(&d_ai_logits);
        d_cu.hstack(&d_ci)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.user_extractor.visit_params(visitor);
        self.item_extractor.visit_params(visitor);
        visitor(&mut self.matching);
        visitor(&mut self.bias);
    }
}

/// The CATN recommender.
pub struct Catn {
    config: CatnConfig,
    seed: u64,
    net: Option<CatnNet>,
}

impl Catn {
    /// Creates an unfitted CATN.
    pub fn new(config: CatnConfig, seed: u64) -> Self {
        Self { config, seed, net: None }
    }

    fn net_mut(&mut self) -> &mut CatnNet {
        self.net.as_mut().expect("Catn: call fit first")
    }

    /// Cross-domain aspect alignment over every source's shared users.
    fn align_aspects(&mut self, world: &World) {
        let cfg = self.config;
        let pairs = build_adaptation_pairs(world, &AdaptationConfig::default());
        let net = self.net.as_mut().expect("align after net construction");
        let mut opt = Adam::new(cfg.train.lr);
        for _ in 0..cfg.align_epochs {
            for pair in &pairs {
                if pair.n_shared() < 2 {
                    continue;
                }
                let anchor = net.user_aspects(&pair.target_content, Mode::Eval);
                zero_grad(net);
                let source_aspects = net.user_aspects(&pair.source_content, Mode::Train);
                let (_, grad) = mse(&source_aspects, &anchor);
                let d_logits = net.user_softmax.backward(&grad.scale(cfg.align_weight));
                let _ = net.user_extractor.backward(&d_logits);
                opt.step(&mut net.user_extractor);
            }
        }
    }
}

impl Recommender for Catn {
    fn name(&self) -> String {
        "CATN".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let mut rng = SeededRng::new(self.seed);
        self.net =
            Some(CatnNet::new(world.target.user_content.cols(), self.config.n_aspects, &mut rng));
        self.align_aspects(world);
        let cfg = self.config.train;
        let _ = fit_supervised(
            self.net_mut(),
            &scenario.train_tasks,
            &world.target.user_content,
            &world.target.item_content,
            &cfg,
        );
    }

    fn fine_tune(&mut self, tasks: &[Task], domain: &Domain) {
        let cfg = self.config.train;
        finetune_supervised(
            self.net_mut(),
            tasks,
            &domain.user_content,
            &domain.item_content,
            &cfg,
        );
    }

    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let uc: Vec<f32> = domain.user_content.row(user).to_vec();
        score_pairs(self.net_mut(), &uc, &domain.item_content, items)
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        snapshot(self.net_mut())
    }

    fn restore_state(&mut self, state: &[Matrix]) {
        restore(self.net_mut(), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
    use metadpa_nn::grad_check::check_module;

    #[test]
    fn catn_net_gradients_verify() {
        let mut rng = SeededRng::new(1);
        let mut net = CatnNet::new(5, 4, &mut rng);
        let input = rng.normal_matrix(3, 10);
        let upstream = rng.normal_matrix(3, 1);
        let report = check_module(&mut net, &input, &upstream, 1e-2);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn aspects_are_distributions() {
        let mut rng = SeededRng::new(2);
        let mut net = CatnNet::new(6, 5, &mut rng);
        let cu = rng.uniform_matrix(4, 6, 0.0, 1.0);
        let aspects = net.user_aspects(&cu, Mode::Eval);
        for r in 0..4 {
            let total: f32 = aspects.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            assert!(aspects.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn alignment_makes_cross_domain_aspects_consistent() {
        let w = generate_world(&tiny_world(111));
        let mut model = Catn::new(CatnConfig::preset(true), 3);
        let mut rng = SeededRng::new(3);
        model.net = Some(CatnNet::new(w.target.user_content.cols(), 6, &mut rng));
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        let gap = |net: &mut CatnNet| {
            let a = net.user_aspects(&pairs[0].source_content, Mode::Eval);
            let b = net.user_aspects(&pairs[0].target_content, Mode::Eval);
            (&a - &b).frobenius_norm()
        };
        let before = gap(model.net.as_mut().unwrap());
        model.config.align_epochs = 15;
        model.align_aspects(&w);
        let after = gap(model.net.as_mut().unwrap());
        assert!(after < before, "aspect gap should shrink: {before} -> {after}");
    }

    #[test]
    fn catn_beats_chance_on_warm() {
        let w = generate_world(&tiny_world(112));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let mut model = Catn::new(CatnConfig::preset(true), 4);
        model.fit(&w, &warm);
        let s = evaluate_scenario(&mut model, &w, &warm, 10);
        assert!(s.auc > 0.5, "warm AUC {}", s.auc);
    }
}

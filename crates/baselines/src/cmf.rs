//! CMF — Collective Matrix Factorization (Singh & Gordon, KDD 2008).
//!
//! An *extended* baseline beyond Table III: the paper's Related Work
//! (§II-B) names CMF as the pioneer of multi-source cross-domain
//! recommendation, so the roster gains a classical linear reference point.
//!
//! Model: the target interaction matrix factorizes as `R_t ≈ U V_tᵀ` and
//! each source as `R_s ≈ U_s V_sᵀ`, with a *shared user's* factor vector
//! tied across domains — the original's "tying factors from different
//! relations together". Training is SGD over observed positives plus
//! sampled negatives with logistic loss; scoring is `σ(u·v + b_u + b_i)`.
//!
//! Expected family behaviour: strong enough warm (it sees the same
//! interactions as NeuMF with a linear model), weak cold-start (new
//! users/items have untrained factors), mild C-U benefit from the tied
//! source factors for shared users.

use metadpa_core::eval::Recommender;
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::activation::sigmoid;
use metadpa_tensor::{Matrix, SeededRng};

/// CMF hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct CmfConfig {
    /// Factor dimensionality.
    pub factors: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub reg: f32,
    /// Epochs over the target tasks.
    pub epochs: usize,
    /// Weight of the source-domain factorization terms.
    pub source_weight: f32,
    /// Negatives sampled per source-domain positive.
    pub source_negatives: usize,
    /// Fine-tune SGD steps (user factors only).
    pub finetune_steps: usize,
}

impl CmfConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            factors: 16,
            lr: 0.05,
            reg: 0.01,
            epochs: if fast { 5 } else { 20 },
            source_weight: 0.3,
            source_negatives: 2,
            finetune_steps: if fast { 3 } else { 8 },
        }
    }
}

/// The CMF recommender.
pub struct Cmf {
    config: CmfConfig,
    seed: u64,
    state: Option<State>,
}

struct State {
    user_factors: Matrix,
    item_factors: Matrix,
    user_bias: Vec<f32>,
    item_bias: Vec<f32>,
}

impl State {
    fn score_one(&self, user: usize, item: usize) -> f32 {
        let dot: f32 = self
            .user_factors
            .row(user)
            .iter()
            .zip(self.item_factors.row(item).iter())
            .map(|(&a, &b)| a * b)
            .sum();
        dot + self.user_bias[user] + self.item_bias[item]
    }

    /// One logistic SGD step on (user, item, label). Optionally freezes the
    /// item side (used for fine-tuning new users).
    fn sgd_step(
        &mut self,
        user: usize,
        item: usize,
        label: f32,
        lr: f32,
        reg: f32,
        user_only: bool,
    ) {
        let pred = sigmoid(self.score_one(user, item));
        let err = pred - label; // d BCE / d logit
        let k = self.user_factors.cols();
        for f in 0..k {
            let uf = self.user_factors.get(user, f);
            let vf = self.item_factors.get(item, f);
            self.user_factors.set(user, f, uf - lr * (err * vf + reg * uf));
            if !user_only {
                self.item_factors.set(item, f, vf - lr * (err * uf + reg * vf));
            }
        }
        self.user_bias[user] -= lr * err;
        if !user_only {
            self.item_bias[item] -= lr * err;
        }
    }
}

impl Cmf {
    /// Creates an unfitted CMF.
    pub fn new(config: CmfConfig, seed: u64) -> Self {
        Self { config, seed, state: None }
    }

    fn state_mut(&mut self) -> &mut State {
        self.state.as_mut().expect("Cmf: call fit first")
    }
}

impl Recommender for Cmf {
    fn name(&self) -> String {
        "CMF".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let cfg = self.config;
        let mut rng = SeededRng::new(self.seed);
        let n_users = world.target.n_users();
        let n_items = world.target.n_items();
        let mut state = State {
            user_factors: rng.normal_matrix(n_users, cfg.factors).scale(0.1),
            item_factors: rng.normal_matrix(n_items, cfg.factors).scale(0.1),
            user_bias: vec![0.0; n_users],
            item_bias: vec![0.0; n_items],
        };

        // Per-source factor tables; shared users point into the target's
        // user_factors (the collective tie).
        let mut source_items: Vec<Matrix> = world
            .sources
            .iter()
            .map(|s| rng.normal_matrix(s.n_items(), cfg.factors).scale(0.1))
            .collect();
        let shared_maps: Vec<std::collections::HashMap<usize, usize>> = world
            .shared_users
            .iter()
            .map(|pairs| pairs.iter().map(|&(su, tu)| (su, tu)).collect())
            .collect();

        for _epoch in 0..cfg.epochs {
            // Target domain: all labelled examples of the training tasks.
            let mut order: Vec<usize> = (0..scenario.train_tasks.len()).collect();
            rng.shuffle(&mut order);
            for &t_idx in &order {
                let task = &scenario.train_tasks[t_idx];
                for &(item, label) in task.support.iter().chain(task.query.iter()) {
                    state.sgd_step(task.user, item, label, cfg.lr, cfg.reg, false);
                }
            }
            // Source domains: shared users' interactions, tied factors.
            for (s_idx, source) in world.sources.iter().enumerate() {
                let lr = cfg.lr * cfg.source_weight;
                for (&su, &tu) in &shared_maps[s_idx] {
                    for &item in &source.interactions[su] {
                        // Positive + sampled negatives against the shared
                        // (target-side) user factor.
                        cmf_source_step(
                            &mut state.user_factors,
                            &mut source_items[s_idx],
                            tu,
                            item,
                            1.0,
                            lr,
                            cfg.reg,
                        );
                        for _ in 0..cfg.source_negatives {
                            let neg = rng.gen_index(source.n_items());
                            if source.interactions[su].binary_search(&neg).is_err() {
                                cmf_source_step(
                                    &mut state.user_factors,
                                    &mut source_items[s_idx],
                                    tu,
                                    neg,
                                    0.0,
                                    lr,
                                    cfg.reg,
                                );
                            }
                        }
                    }
                }
            }
        }
        self.state = Some(state);
    }

    fn fine_tune(&mut self, tasks: &[Task], _domain: &Domain) {
        let cfg = self.config;
        let state = self.state_mut();
        for _ in 0..cfg.finetune_steps {
            for task in tasks {
                for &(item, label) in &task.support {
                    state.sgd_step(task.user, item, label, cfg.lr, cfg.reg, true);
                }
            }
        }
    }

    fn score(&mut self, _domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let state = self.state_mut();
        items.iter().map(|&i| state.score_one(user, i)).collect()
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        let state = self.state_mut();
        vec![
            state.user_factors.clone(),
            state.item_factors.clone(),
            Matrix::row_vector(&state.user_bias),
            Matrix::row_vector(&state.item_bias),
        ]
    }

    fn restore_state(&mut self, saved: &[Matrix]) {
        assert_eq!(saved.len(), 4, "Cmf::restore_state: expected 4 matrices");
        let state = self.state_mut();
        state.user_factors = saved[0].clone();
        state.item_factors = saved[1].clone();
        state.user_bias = saved[2].as_slice().to_vec();
        state.item_bias = saved[3].as_slice().to_vec();
    }
}

/// One tied SGD step in a source domain: the user factor row lives in the
/// *target* table (shared person), the item factor in the source table.
fn cmf_source_step(
    user_factors: &mut Matrix,
    item_factors: &mut Matrix,
    user: usize,
    item: usize,
    label: f32,
    lr: f32,
    reg: f32,
) {
    let dot: f32 = user_factors
        .row(user)
        .iter()
        .zip(item_factors.row(item).iter())
        .map(|(&a, &b)| a * b)
        .sum();
    let err = sigmoid(dot) - label;
    let k = user_factors.cols();
    for f in 0..k {
        let uf = user_factors.get(user, f);
        let vf = item_factors.get(item, f);
        user_factors.set(user, f, uf - lr * (err * vf + reg * uf));
        item_factors.set(item, f, vf - lr * (err * uf + reg * vf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

    #[test]
    fn cmf_beats_chance_on_warm_start() {
        let w = generate_world(&tiny_world(121));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let mut model = Cmf::new(CmfConfig::preset(true), 1);
        model.fit(&w, &warm);
        let s = evaluate_scenario(&mut model, &w, &warm, 10);
        assert!(s.auc > 0.55, "warm AUC {}", s.auc);
    }

    #[test]
    fn cold_items_stay_near_chance_for_linear_cf() {
        let w = generate_world(&tiny_world(122));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let ci = sp.scenario(ScenarioKind::ColdItem);
        let mut model = Cmf::new(CmfConfig::preset(true), 2);
        model.fit(&w, &warm);
        let warm_auc = evaluate_scenario(&mut model, &w, &warm, 10).auc;
        let ci_auc = evaluate_scenario(&mut model, &w, &ci, 10).auc;
        assert!(
            ci_auc < warm_auc,
            "cold items ({ci_auc}) cannot beat warm ({warm_auc}) without content"
        );
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let w = generate_world(&tiny_world(123));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = Cmf::new(CmfConfig::preset(true), 3);
        model.fit(&w, &warm);
        let user = cu.eval[0].user;
        let items: Vec<usize> = (0..5).collect();
        let before = model.score(&w.target, user, &items);
        let state = model.snapshot_state();
        model.fine_tune(&cu.finetune_tasks, &w.target);
        let during = model.score(&w.target, user, &items);
        model.restore_state(&state);
        assert_ne!(before, during);
        assert_eq!(before, model.score(&w.target, user, &items));
    }

    #[test]
    fn fine_tune_only_moves_the_user_side() {
        let w = generate_world(&tiny_world(124));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = Cmf::new(CmfConfig::preset(true), 4);
        model.fit(&w, &warm);
        let items_before = model.state.as_ref().unwrap().item_factors.clone();
        model.fine_tune(&cu.finetune_tasks, &w.target);
        assert_eq!(model.state.as_ref().unwrap().item_factors, items_before);
    }
}

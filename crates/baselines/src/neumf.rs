//! NeuMF — Neural collaborative filtering (He et al., WWW 2017).
//!
//! The GMF ⊕ MLP fusion over user/item *id* embeddings, exactly as in the
//! original, with one scale-down: embedding and layer sizes are reduced to
//! the synthetic catalogue scale.
//!
//! NeuMF is the paper's pure-CF baseline: it sees no content at all, so a
//! cold-start user or item keeps its random initial embedding and the
//! model scores near chance in the C-U / C-I / C-UI settings — the
//! behaviour Table III shows (AUC ≈ 0.50-0.54 for NeuMF under cold-start).

use metadpa_core::eval::Recommender;
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::loss::bce_with_logits;
use metadpa_nn::mlp::{Activation, Mlp};
use metadpa_nn::module::{Mode, Module};
use metadpa_nn::optim::{Adam, Sgd};
use metadpa_nn::Embedding;
use metadpa_tensor::{Matrix, SeededRng};

/// NeuMF hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct NeuMfConfig {
    /// GMF / MLP embedding size per side.
    pub embed_dim: usize,
    /// Hidden widths of the MLP branch.
    pub hidden: [usize; 2],
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fine-tune SGD learning rate (updates embeddings of support users).
    pub finetune_lr: f32,
    /// Fine-tune steps.
    pub finetune_steps: usize,
}

impl NeuMfConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            embed_dim: 16,
            hidden: [32, 16],
            epochs: if fast { 4 } else { 15 },
            lr: 2e-3,
            finetune_lr: 0.05,
            finetune_steps: if fast { 3 } else { 5 },
        }
    }
}

/// The NeuMF model: id embeddings, a GMF branch, an MLP branch, and a
/// fusion layer.
pub struct NeuMf {
    config: NeuMfConfig,
    seed: u64,
    state: Option<State>,
}

struct State {
    user_gmf: Embedding,
    item_gmf: Embedding,
    user_mlp: Embedding,
    item_mlp: Embedding,
    mlp: Mlp,
    /// Fusion weights over `[gmf_dim + mlp_out]` features.
    fusion: Mlp,
}

impl State {
    fn new(n_users: usize, n_items: usize, cfg: &NeuMfConfig, rng: &mut SeededRng) -> Self {
        Self {
            user_gmf: Embedding::new(n_users, cfg.embed_dim, rng),
            item_gmf: Embedding::new(n_items, cfg.embed_dim, rng),
            user_mlp: Embedding::new(n_users, cfg.embed_dim, rng),
            item_mlp: Embedding::new(n_items, cfg.embed_dim, rng),
            mlp: Mlp::new(
                &[2 * cfg.embed_dim, cfg.hidden[0], cfg.hidden[1]],
                Activation::Relu,
                rng,
            ),
            fusion: Mlp::new(&[cfg.embed_dim + cfg.hidden[1], 1], Activation::Relu, rng),
        }
    }

    /// Forward for one user against many items. Returns per-item logits.
    fn forward(&mut self, user: usize, items: &[usize], mode: Mode) -> Matrix {
        let n = items.len();
        let users = vec![user; n];
        let ug = self.user_gmf.forward(&users);
        let ig = self.item_gmf.forward(items);
        let gmf = ug.hadamard(&ig);
        let um = self.user_mlp.forward(&users);
        let im = self.item_mlp.forward(items);
        let mlp_out = self.mlp.forward(&um.hstack(&im), mode);
        self.fusion.forward(&gmf.hstack(&mlp_out), mode)
    }

    /// Backward matching the latest forward.
    fn backward(&mut self, grad_logits: &Matrix, embed_dim: usize) {
        let d_fusion_in = self.fusion.backward(grad_logits);
        let (d_gmf, d_mlp_out) = d_fusion_in.hsplit(embed_dim);
        let d_mlp_in = self.mlp.backward(&d_mlp_out);
        let (d_um, d_im) = d_mlp_in.hsplit(embed_dim);
        self.user_mlp.backward(&d_um);
        self.item_mlp.backward(&d_im);
        // GMF: out = ug ⊙ ig.
        let ug = self.user_gmf_cached();
        let ig = self.item_gmf_cached();
        self.user_gmf.backward(&d_gmf.hadamard(&ig));
        self.item_gmf.backward(&d_gmf.hadamard(&ug));
    }

    fn user_gmf_cached(&mut self) -> Matrix {
        // Embedding caches indices, not outputs; re-gather deterministically.
        // (Cheap: a row gather.)
        self.user_gmf.refetch()
    }

    fn item_gmf_cached(&mut self) -> Matrix {
        self.item_gmf.refetch()
    }

    fn visit_all(&mut self, f: &mut dyn FnMut(&mut metadpa_nn::Param)) {
        f(self.user_gmf.param_mut());
        f(self.item_gmf.param_mut());
        f(self.user_mlp.param_mut());
        f(self.item_mlp.param_mut());
        self.mlp.visit_params(f);
        self.fusion.visit_params(f);
    }

    /// Only the user-side embedding tables: cold-start fine-tuning adapts
    /// the new user's representation while leaving the trained item
    /// embeddings and interaction networks intact (the standard test-time
    /// adaptation for id-embedding CF; letting one user's handful of
    /// sampled negatives rewrite the item tables would memorize the
    /// candidate pool rather than learn the user).
    fn visit_user_embeddings(&mut self, f: &mut dyn FnMut(&mut metadpa_nn::Param)) {
        f(self.user_gmf.param_mut());
        f(self.user_mlp.param_mut());
    }
}

impl NeuMf {
    /// Creates an unfitted NeuMF.
    pub fn new(config: NeuMfConfig, seed: u64) -> Self {
        Self { config, seed, state: None }
    }

    fn train_examples(
        &mut self,
        tasks: &[Task],
        epochs: usize,
        lr_adam: Option<&mut Adam>,
        sgd: Option<(&Sgd, bool)>,
        rng: &mut SeededRng,
    ) {
        let cfg = self.config;
        let state = self.state.as_mut().expect("NeuMf: fit first");
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        let mut adam = lr_adam;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &idx in &order {
                let task = &tasks[idx];
                let examples: Vec<(usize, f32)> =
                    task.support.iter().chain(task.query.iter()).copied().collect();
                if examples.is_empty() {
                    continue;
                }
                let items: Vec<usize> = examples.iter().map(|&(i, _)| i).collect();
                let labels =
                    Matrix::from_vec(examples.len(), 1, examples.iter().map(|&(_, l)| l).collect());
                state.visit_all(&mut |p| p.zero_grad());
                let logits = state.forward(task.user, &items, Mode::Train);
                let (_, grad) = bce_with_logits(&logits, &labels);
                state.backward(&grad, cfg.embed_dim);
                match (&mut adam, sgd) {
                    (Some(a), _) => {
                        let mut slot = 0;
                        let t = a.next_step();
                        // Manual visit because Embedding is outside Module.
                        state.visit_all(&mut |p| {
                            a.step_param_slot(p, slot, t);
                            slot += 1;
                        });
                    }
                    (None, Some((s, user_side_only))) => {
                        if user_side_only {
                            state.visit_user_embeddings(&mut |p| s.step_param(p));
                        } else {
                            state.visit_all(&mut |p| s.step_param(p));
                        }
                    }
                    (None, None) => unreachable!("one optimizer must be provided"),
                }
            }
        }
    }
}

impl Recommender for NeuMf {
    fn name(&self) -> String {
        "NeuMF".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let mut rng = SeededRng::new(self.seed);
        self.state = Some(State::new(
            world.target.n_users(),
            world.target.n_items(),
            &self.config,
            &mut rng,
        ));
        let mut adam = Adam::new(self.config.lr);
        let tasks = scenario.train_tasks.clone();
        self.train_examples(&tasks, self.config.epochs, Some(&mut adam), None, &mut rng);
    }

    fn fine_tune(&mut self, tasks: &[Task], _domain: &Domain) {
        let mut rng = SeededRng::new(self.seed ^ 0xF1);
        let sgd = Sgd::new(self.config.finetune_lr);
        let support_only: Vec<Task> = tasks
            .iter()
            .map(|t| Task { user: t.user, support: t.support.clone(), query: Vec::new() })
            .collect();
        self.train_examples(
            &support_only,
            self.config.finetune_steps,
            None,
            Some((&sgd, true)),
            &mut rng,
        );
    }

    fn score(&mut self, _domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let state = self.state.as_mut().expect("NeuMf: fit before score");
        state.forward(user, items, Mode::Eval).into_vec()
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        let state = self.state.as_mut().expect("NeuMf: fit before snapshot");
        let mut out = Vec::new();
        state.visit_all(&mut |p| out.push(p.value.clone()));
        out
    }

    fn restore_state(&mut self, saved: &[Matrix]) {
        let state = self.state.as_mut().expect("NeuMf: fit before restore");
        let mut idx = 0;
        state.visit_all(&mut |p| {
            p.value = saved[idx].clone();
            idx += 1;
        });
        assert_eq!(idx, saved.len(), "NeuMf::restore_state: snapshot length mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

    #[test]
    fn fits_and_beats_chance_on_warm_start() {
        let w = generate_world(&tiny_world(51));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let mut model = NeuMf::new(NeuMfConfig::preset(true), 1);
        model.fit(&w, &warm);
        let s = evaluate_scenario(&mut model, &w, &warm, 10);
        assert!(s.auc > 0.5, "warm AUC {} should beat chance", s.auc);
    }

    #[test]
    fn cold_start_users_score_near_chance() {
        // The paper's core observation about pure CF: untouched id
        // embeddings carry no signal for new users.
        // World seed pinned to the in-tree xoshiro256++ streams.
        let w = generate_world(&tiny_world(42));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = NeuMf::new(NeuMfConfig::preset(true), 2);
        model.fit(&w, &warm);
        let warm_auc = evaluate_scenario(&mut model, &w, &warm, 10).auc;
        let cold_auc = evaluate_scenario(&mut model, &w, &cu, 10).auc;
        assert!(
            cold_auc < warm_auc + 0.05,
            "cold AUC {cold_auc} should not beat warm {warm_auc} for pure CF"
        );
        assert!((cold_auc - 0.5).abs() < 0.15, "cold AUC {cold_auc} should hover near chance");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let w = generate_world(&tiny_world(53));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = NeuMf::new(NeuMfConfig::preset(true), 3);
        model.fit(&w, &warm);
        let user = cu.eval[0].user;
        let items: Vec<usize> = (0..5).collect();
        let before = model.score(&w.target, user, &items);
        let state = model.snapshot_state();
        model.fine_tune(&cu.finetune_tasks, &w.target);
        model.restore_state(&state);
        assert_eq!(before, model.score(&w.target, user, &items));
    }
}

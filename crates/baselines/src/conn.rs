//! CoNN (DeepCoNN) — Deep Cooperative Neural Networks
//! (Zheng et al., WSDM 2017).
//!
//! Two *parallel* networks — one learning user behaviour from the user's
//! reviews, one learning item properties from the item's reviews — coupled
//! by a shared top layer. Scale-down: the original's word-embedding + CNN
//! text towers become dense towers over the same bag-of-words review
//! vectors every system in this reproduction consumes (the CNN exists to
//! *produce* such a text representation); the original's factorization
//! machine on the shared layer becomes a dense scorer over the
//! concatenated tower outputs.
//!
//! CoNN is a plain supervised model: no meta-learning, no cross-domain
//! signal. Its content path lets it generalize to cold users/items far
//! better than NeuMF, but it cannot adapt per-user from support ratings
//! beyond a few generic SGD steps — the family behaviour the paper's
//! Table III reflects.

use metadpa_core::eval::Recommender;
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::mlp::{Activation, Mlp};
use metadpa_nn::module::{restore, snapshot, Mode, Module};
use metadpa_nn::param::Param;
use metadpa_tensor::{Matrix, SeededRng};

use crate::common::{finetune_supervised, fit_supervised, score_pairs, SupervisedConfig};

/// CoNN hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct ConnConfig {
    /// Output width of each review tower.
    pub tower_dim: usize,
    /// Hidden width of each tower.
    pub tower_hidden: usize,
    /// Hidden width of the shared coupling layer.
    pub shared_hidden: usize,
    /// Supervised training schedule.
    pub train: SupervisedConfig,
}

impl ConnConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            tower_dim: if fast { 12 } else { 24 },
            tower_hidden: if fast { 24 } else { 48 },
            shared_hidden: if fast { 16 } else { 32 },
            train: SupervisedConfig::preset(fast),
        }
    }
}

/// The two-tower network. Input: `[c_u ; c_i]` rows; output: one logit.
struct ConnNet {
    content_dim: usize,
    user_tower: Mlp,
    item_tower: Mlp,
    shared: Mlp,
}

impl ConnNet {
    fn new(content_dim: usize, cfg: &ConnConfig, rng: &mut SeededRng) -> Self {
        Self {
            content_dim,
            user_tower: Mlp::new(
                &[content_dim, cfg.tower_hidden, cfg.tower_dim],
                Activation::Relu,
                rng,
            ),
            item_tower: Mlp::new(
                &[content_dim, cfg.tower_hidden, cfg.tower_dim],
                Activation::Relu,
                rng,
            ),
            shared: Mlp::new(&[2 * cfg.tower_dim, cfg.shared_hidden, 1], Activation::Relu, rng),
        }
    }
}

impl Module for ConnNet {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let (cu, ci) = input.hsplit(self.content_dim);
        let eu = self.user_tower.forward(&cu, mode);
        let ei = self.item_tower.forward(&ci, mode);
        self.shared.forward(&eu.hstack(&ei), mode)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let d_shared = self.shared.backward(grad_output);
        let (deu, dei) = d_shared.hsplit(self.user_tower.out_dim());
        let dcu = self.user_tower.backward(&deu);
        let dci = self.item_tower.backward(&dei);
        dcu.hstack(&dci)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.user_tower.visit_params(visitor);
        self.item_tower.visit_params(visitor);
        self.shared.visit_params(visitor);
    }
}

/// The CoNN recommender.
pub struct Conn {
    config: ConnConfig,
    seed: u64,
    net: Option<ConnNet>,
}

impl Conn {
    /// Creates an unfitted CoNN.
    pub fn new(config: ConnConfig, seed: u64) -> Self {
        Self { config, seed, net: None }
    }

    fn net_mut(&mut self) -> &mut ConnNet {
        self.net.as_mut().expect("Conn: call fit first")
    }
}

impl Recommender for Conn {
    fn name(&self) -> String {
        "CoNN".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let mut rng = SeededRng::new(self.seed);
        let mut net = ConnNet::new(world.target.user_content.cols(), &self.config, &mut rng);
        let _ = fit_supervised(
            &mut net,
            &scenario.train_tasks,
            &world.target.user_content,
            &world.target.item_content,
            &self.config.train,
        );
        self.net = Some(net);
    }

    fn fine_tune(&mut self, tasks: &[Task], domain: &Domain) {
        let cfg = self.config.train;
        finetune_supervised(
            self.net_mut(),
            tasks,
            &domain.user_content,
            &domain.item_content,
            &cfg,
        );
    }

    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let uc: Vec<f32> = domain.user_content.row(user).to_vec();
        score_pairs(self.net_mut(), &uc, &domain.item_content, items)
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        snapshot(self.net_mut())
    }

    fn restore_state(&mut self, state: &[Matrix]) {
        restore(self.net_mut(), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};
    use metadpa_nn::grad_check::check_module;

    #[test]
    fn conn_net_gradients_verify() {
        let mut rng = SeededRng::new(1);
        let cfg = ConnConfig {
            tower_dim: 4,
            tower_hidden: 6,
            shared_hidden: 5,
            train: SupervisedConfig::preset(true),
        };
        let mut net = ConnNet::new(5, &cfg, &mut rng);
        let input = rng.normal_matrix(3, 10);
        let upstream = rng.normal_matrix(3, 1);
        let report = check_module(&mut net, &input, &upstream, 1e-2);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn conn_generalizes_to_cold_items_via_content() {
        let w = generate_world(&tiny_world(81));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let ci = sp.scenario(ScenarioKind::ColdItem);
        let mut model = Conn::new(ConnConfig::preset(true), 2);
        model.fit(&w, &warm);
        let s = evaluate_scenario(&mut model, &w, &ci, 10);
        assert!(s.auc > 0.5, "C-I AUC {} should beat chance through content", s.auc);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let w = generate_world(&tiny_world(82));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = Conn::new(ConnConfig::preset(true), 3);
        model.fit(&w, &warm);
        let user = cu.eval[0].user;
        let items: Vec<usize> = (0..5).collect();
        let before = model.score(&w.target, user, &items);
        let state = model.snapshot_state();
        model.fine_tune(&cu.finetune_tasks, &w.target);
        model.restore_state(&state);
        assert_eq!(before, model.score(&w.target, user, &items));
    }
}

//! # metadpa-baselines
//!
//! The seven comparison systems of the paper's Table III, reimplemented on
//! the shared `metadpa-nn` substrate and evaluated through the same
//! [`metadpa_core::eval::Recommender`] protocol as MetaDPA:
//!
//! | System | Family | Module |
//! |---|---|---|
//! | NeuMF  | neural collaborative filtering (id embeddings) | [`neumf`] |
//! | MeLU   | meta-learning, local update of decision layers | [`melu`] |
//! | MetaCF | meta-learning with potential-interaction expansion | [`metacf`] |
//! | CoNN   | content-aware, two parallel review towers | [`conn`] |
//! | DAML   | content-aware, local/mutual attention | [`daml`] |
//! | TDAR   | cross-domain, text-aligned domain adaptation | [`tdar`] |
//! | CATN   | cross-domain, aspect transfer | [`catn`] |
//!
//! Every implementation documents how it is scaled down from the original
//! (e.g. CNN text encoders become dense towers over the same bag-of-words
//! content used everywhere else in this reproduction). The *family-level*
//! behaviours the paper's analysis relies on are preserved: NeuMF has no
//! content path and collapses on cold-start ids; the content towers
//! generalize through reviews but cannot adapt per-user; the meta-learners
//! adapt from a few support ratings; the cross-domain systems lean on
//! shared users.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catn;
pub mod cdl;
pub mod cmf;
pub mod common;
pub mod conn;
pub mod daml;
pub mod melu;
pub mod metacf;
pub mod neumf;
pub mod tdar;

pub use catn::Catn;
pub use cdl::Cdl;
pub use cmf::Cmf;
pub use conn::Conn;
pub use daml::Daml;
pub use melu::Melu;
pub use metacf::MetaCf;
pub use neumf::NeuMf;
pub use tdar::Tdar;

use metadpa_core::eval::Recommender;
use metadpa_core::pipeline::{MetaDpa, MetaDpaConfig};

/// Builds the full method roster of Table III (seven baselines plus
/// MetaDPA) with the given seed. `fast` selects reduced training schedules
/// for tests and smoke runs.
pub fn full_roster(seed: u64, fast: bool) -> Vec<Box<dyn Recommender>> {
    let mut roster: Vec<Box<dyn Recommender>> = vec![
        Box::new(NeuMf::new(neumf::NeuMfConfig::preset(fast), seed)),
        Box::new(Melu::new(melu::MeluConfig::preset(fast), seed)),
        Box::new(MetaCf::new(metacf::MetaCfConfig::preset(fast), seed)),
        Box::new(Conn::new(conn::ConnConfig::preset(fast), seed)),
        Box::new(Daml::new(daml::DamlConfig::preset(fast), seed)),
        Box::new(Tdar::new(tdar::TdarConfig::preset(fast), seed)),
        Box::new(Catn::new(catn::CatnConfig::preset(fast), seed)),
    ];
    let mut cfg = if fast { MetaDpaConfig::fast() } else { MetaDpaConfig::default() };
    cfg.seed = seed;
    roster.push(Box::new(MetaDpa::new(cfg)));
    roster
}

/// The extended roster: Table III's eight methods plus the two classical
/// systems the paper's Related Work anchors its families with (CMF for
/// multi-source CF, CDL for content-aware CF).
pub fn extended_roster(seed: u64, fast: bool) -> Vec<Box<dyn Recommender>> {
    let mut roster = full_roster(seed, fast);
    roster.push(Box::new(Cmf::new(cmf::CmfConfig::preset(fast), seed)));
    roster.push(Box::new(Cdl::new(cdl::CdlConfig::preset(fast), seed)));
    roster
}

//! MeLU — Meta-Learned User preference estimator (Lee et al., KDD 2019).
//!
//! MeLU applies MAML to a content-based preference estimator with one
//! signature detail: the *local* (inner-loop) update touches only the
//! decision-making layers (the scoring MLP), while the embedding layers are
//! updated only by the *global* (outer) step. We reproduce exactly that:
//! the model is the same embedding + MLP architecture as MetaDPA's
//! preference model (both papers use the "content in, logit out" shape),
//! first-order MAML, and inner updates masked to the scorer parameters.
//!
//! What MeLU does **not** have is MetaDPA's diverse preference
//! augmentation: it meta-trains on the original sparse tasks only, which
//! is the meta-overfitting exposure the paper attributes its CD losses to.

use metadpa_core::eval::Recommender;
use metadpa_core::preference::{PreferenceConfig, PreferenceModel};
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::loss::bce_with_logits;
use metadpa_nn::module::{
    accumulate_grads, restore, snapshot, snapshot_grads, zero_grad, Mode, Module,
};
use metadpa_nn::optim::{Adam, Optimizer};
use metadpa_tensor::{Matrix, SeededRng};

/// MeLU hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MeluConfig {
    /// Embedding size of the user/item content encoders.
    pub embed_dim: usize,
    /// Hidden widths of the decision MLP.
    pub hidden: [usize; 2],
    /// Inner-loop learning rate.
    pub inner_lr: f32,
    /// Outer-loop Adam learning rate.
    pub outer_lr: f32,
    /// Inner steps per task.
    pub inner_steps: usize,
    /// Tasks per outer update.
    pub meta_batch: usize,
    /// Meta-training epochs.
    pub epochs: usize,
    /// Fine-tune steps at meta-test time.
    pub finetune_steps: usize,
}

impl MeluConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            embed_dim: if fast { 16 } else { 32 },
            hidden: if fast { [24, 12] } else { [48, 24] },
            inner_lr: 0.1,
            outer_lr: 3e-3,
            inner_steps: 2,
            meta_batch: 8,
            epochs: if fast { 10 } else { 25 },
            finetune_steps: if fast { 5 } else { 10 },
        }
    }
}

/// The MeLU recommender.
pub struct Melu {
    config: MeluConfig,
    seed: u64,
    model: Option<PreferenceModel>,
    /// Number of leading parameters (the embedding layers) frozen during
    /// local updates.
    n_embedding_params: usize,
}

impl Melu {
    /// Creates an unfitted MeLU.
    pub fn new(config: MeluConfig, seed: u64) -> Self {
        Self { config, seed, model: None, n_embedding_params: 0 }
    }

    fn model_mut(&mut self) -> &mut PreferenceModel {
        self.model.as_mut().expect("Melu: call fit first")
    }

    /// One forward/backward on a labelled set. Returns the loss; gradients
    /// accumulate.
    fn run_set(
        model: &mut PreferenceModel,
        user_content: &[f32],
        item_content: &Matrix,
        set: &[(usize, f32)],
    ) -> f32 {
        let items: Vec<usize> = set.iter().map(|&(i, _)| i).collect();
        let labels = Matrix::from_vec(set.len(), 1, set.iter().map(|&(_, l)| l).collect());
        let input = PreferenceModel::assemble_input(user_content, item_content, &items);
        let logits = model.forward(&input, Mode::Train);
        let (loss, grad) = bce_with_logits(&logits, &labels);
        let _ = model.backward(&grad);
        loss
    }

    /// MeLU's local update: SGD on the support set, skipping the first
    /// `n_frozen` parameters (the embedding layers).
    fn local_update(
        model: &mut PreferenceModel,
        user_content: &[f32],
        item_content: &Matrix,
        support: &[(usize, f32)],
        steps: usize,
        lr: f32,
        n_frozen: usize,
    ) {
        for _ in 0..steps {
            zero_grad(model);
            let _ = Self::run_set(model, user_content, item_content, support);
            let mut idx = 0;
            model.visit_params(&mut |p| {
                if idx >= n_frozen {
                    let grad = p.grad.clone();
                    p.value.add_scaled_inplace(&grad, -lr);
                }
                idx += 1;
            });
        }
    }
}

impl Recommender for Melu {
    fn name(&self) -> String {
        "MeLU".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let mut rng = SeededRng::new(self.seed);
        let content_dim = world.target.user_content.cols();
        let pref = PreferenceConfig {
            content_dim,
            embed_dim: self.config.embed_dim,
            hidden: self.config.hidden,
        };
        let mut model = PreferenceModel::new(pref, &mut rng);
        // The two Dense embedding layers contribute 4 leading parameters
        // (weight + bias each) in visit order.
        self.n_embedding_params = 4;

        let tasks = &scenario.train_tasks;
        let uc = &world.target.user_content;
        let ic = &world.target.item_content;
        let mut outer = Adam::new(self.config.outer_lr);
        let mut order: Vec<usize> = (0..tasks.len()).collect();

        for _epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.meta_batch) {
                let theta = snapshot(&mut model);
                let mut meta_grads: Option<Vec<Matrix>> = None;
                let mut used = 0usize;
                for &idx in chunk {
                    let task = &tasks[idx];
                    if task.support.is_empty() || task.query.is_empty() {
                        continue;
                    }
                    let user_row: Vec<f32> = uc.row(task.user).to_vec();
                    restore(&mut model, &theta);
                    Self::local_update(
                        &mut model,
                        &user_row,
                        ic,
                        &task.support,
                        self.config.inner_steps,
                        self.config.inner_lr,
                        self.n_embedding_params,
                    );
                    zero_grad(&mut model);
                    let _ = Self::run_set(&mut model, &user_row, ic, &task.query);
                    let grads = snapshot_grads(&mut model);
                    match &mut meta_grads {
                        None => meta_grads = Some(grads),
                        Some(acc) => {
                            for (a, g) in acc.iter_mut().zip(grads.iter()) {
                                a.add_inplace(g);
                            }
                        }
                    }
                    used += 1;
                }
                restore(&mut model, &theta);
                if let Some(mut grads) = meta_grads {
                    let inv = 1.0 / used as f32;
                    for g in &mut grads {
                        *g = g.scale(inv);
                    }
                    zero_grad(&mut model);
                    accumulate_grads(&mut model, &grads);
                    outer.step(&mut model);
                }
            }
        }
        self.model = Some(model);
    }

    fn fine_tune(&mut self, tasks: &[Task], domain: &Domain) {
        let cfg = self.config;
        let n_frozen = self.n_embedding_params;
        let model = self.model_mut();
        for task in tasks {
            if task.support.is_empty() {
                continue;
            }
            let user_row: Vec<f32> = domain.user_content.row(task.user).to_vec();
            Self::local_update(
                model,
                &user_row,
                &domain.item_content,
                &task.support,
                cfg.finetune_steps,
                cfg.inner_lr,
                n_frozen,
            );
        }
    }

    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let uc: Vec<f32> = domain.user_content.row(user).to_vec();
        self.model_mut().score_items(&uc, &domain.item_content, items)
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        snapshot(self.model_mut())
    }

    fn restore_state(&mut self, state: &[Matrix]) {
        restore(self.model_mut(), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

    #[test]
    fn local_update_freezes_embedding_layers() {
        let mut rng = SeededRng::new(1);
        let pref = PreferenceConfig { content_dim: 6, embed_dim: 4, hidden: [8, 4] };
        let mut model = PreferenceModel::new(pref, &mut rng);
        let before = snapshot(&mut model);
        let ic = rng.uniform_matrix(5, 6, 0.0, 1.0);
        Melu::local_update(&mut model, &[0.5; 6], &ic, &[(0, 1.0), (1, 0.0)], 3, 0.1, 4);
        let after = snapshot(&mut model);
        // Embedding params (first 4) unchanged; scorer params moved.
        for i in 0..4 {
            assert_eq!(before[i], after[i], "embedding param {i} must stay frozen");
        }
        assert!(
            before[4..].iter().zip(after[4..].iter()).any(|(b, a)| b != a),
            "scorer params must move"
        );
    }

    #[test]
    fn melu_beats_chance_on_cold_users() {
        // World seed pinned to the in-tree xoshiro256++ streams.
        let w = generate_world(&tiny_world(64));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = Melu::new(MeluConfig::preset(true), 2);
        model.fit(&w, &warm);
        let s = evaluate_scenario(&mut model, &w, &cu, 10);
        assert!(s.auc > 0.5, "C-U AUC {} should beat chance", s.auc);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let w = generate_world(&tiny_world(62));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = Melu::new(MeluConfig::preset(true), 3);
        model.fit(&w, &warm);
        let user = cu.eval[0].user;
        let items: Vec<usize> = (0..6).collect();
        let before = model.score(&w.target, user, &items);
        let state = model.snapshot_state();
        model.fine_tune(&cu.finetune_tasks, &w.target);
        model.restore_state(&state);
        assert_eq!(before, model.score(&w.target, user, &items));
    }
}

//! MetaCF — Fast adaptation for cold-start CF with meta-learning
//! (Wei et al., ICDM 2020).
//!
//! MetaCF's two signature ideas, reproduced here:
//!
//! 1. **Dynamic task construction** with **potential-interaction
//!    expansion**: each meta-training task's support set is enriched with
//!    items the user has *not* rated but that frequently co-occur with the
//!    user's rated items (a neighborhood expansion of the interaction
//!    graph). These enter as soft positives, counteracting overfitting to
//!    the few true interactions — the paper notes this is why MetaCF holds
//!    up well on the sparse CDs dataset.
//! 2. **Full-parameter MAML** (unlike MeLU's decision-layer-only local
//!    update), which we run first-order via `metadpa-core`'s meta-learner.
//!
//! Scale-down: the original samples dynamic subgraphs around each user
//! per-step from a GNN; here the co-occurrence neighborhood is precomputed
//! once per fit, which preserves the "extend historical interactions with
//! potential interactions" mechanism at a fraction of the cost (the paper
//! itself flags MetaCF's training cost as its drawback).

use metadpa_core::eval::Recommender;
use metadpa_core::maml::{MamlConfig, MetaLearner};
use metadpa_core::preference::PreferenceConfig;
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::module::{restore, snapshot};
use metadpa_tensor::Matrix;
use metadpa_tensor::SeededRng;

/// MetaCF hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MetaCfConfig {
    /// Embedding size of the preference net.
    pub embed_dim: usize,
    /// Hidden widths of the preference net.
    pub hidden: [usize; 2],
    /// MAML schedule.
    pub maml: MamlConfig,
    /// Potential interactions added per task.
    pub n_potential: usize,
    /// Soft label assigned to potential interactions.
    pub potential_label: f32,
}

impl MetaCfConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            embed_dim: if fast { 16 } else { 32 },
            hidden: if fast { [24, 12] } else { [48, 24] },
            maml: MamlConfig { epochs: if fast { 10 } else { 25 }, ..MamlConfig::default() },
            n_potential: 3,
            potential_label: 0.8,
        }
    }
}

/// The MetaCF recommender.
pub struct MetaCf {
    config: MetaCfConfig,
    seed: u64,
    learner: Option<MetaLearner>,
}

impl MetaCf {
    /// Creates an unfitted MetaCF.
    pub fn new(config: MetaCfConfig, seed: u64) -> Self {
        Self { config, seed, learner: None }
    }

    fn learner_mut(&mut self) -> &mut MetaLearner {
        self.learner.as_mut().expect("MetaCf: call fit first")
    }

    /// Item-item co-occurrence counts from the training interactions.
    fn co_occurrence(
        domain: &Domain,
        users: impl Iterator<Item = usize>,
    ) -> Vec<Vec<(usize, u32)>> {
        let n = domain.n_items();
        let mut counts: Vec<std::collections::HashMap<usize, u32>> = vec![Default::default(); n];
        for u in users {
            let items = &domain.interactions[u];
            for (a_pos, &a) in items.iter().enumerate() {
                for &b in &items[a_pos + 1..] {
                    *counts[a].entry(b).or_insert(0) += 1;
                    *counts[b].entry(a).or_insert(0) += 1;
                }
            }
        }
        counts
            .into_iter()
            .map(|m| {
                let mut v: Vec<(usize, u32)> = m.into_iter().collect();
                v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                v.truncate(8);
                v
            })
            .collect()
    }

    /// Expands each task's support with up to `n_potential` co-occurring
    /// unrated items as soft positives.
    fn expand_tasks(&self, tasks: &[Task], domain: &Domain) -> Vec<Task> {
        let neighbors = Self::co_occurrence(domain, tasks.iter().map(|t| t.user));
        tasks
            .iter()
            .map(|t| {
                let mut expanded = t.clone();
                let rated = &domain.interactions[t.user];
                let already: std::collections::HashSet<usize> =
                    t.support.iter().chain(t.query.iter()).map(|&(i, _)| i).collect();
                let mut votes: std::collections::HashMap<usize, u32> = Default::default();
                for &(item, label) in &t.support {
                    if label < 1.0 {
                        continue;
                    }
                    for &(nb, c) in &neighbors[item] {
                        *votes.entry(nb).or_insert(0) += c;
                    }
                }
                let mut ranked: Vec<(usize, u32)> = votes
                    .into_iter()
                    .filter(|&(i, _)| rated.binary_search(&i).is_err() && !already.contains(&i))
                    .collect();
                ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                for &(item, _) in ranked.iter().take(self.config.n_potential) {
                    expanded.support.push((item, self.config.potential_label));
                }
                expanded
            })
            .collect()
    }
}

impl Recommender for MetaCf {
    fn name(&self) -> String {
        "MetaCF".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let mut rng = SeededRng::new(self.seed);
        let pref = PreferenceConfig {
            content_dim: world.target.user_content.cols(),
            embed_dim: self.config.embed_dim,
            hidden: self.config.hidden,
        };
        let mut learner = MetaLearner::new(pref, self.config.maml, &mut rng);
        let expanded = self.expand_tasks(&scenario.train_tasks, &world.target);
        let _ =
            learner.meta_train(&expanded, &world.target.user_content, &world.target.item_content);
        self.learner = Some(learner);
    }

    fn fine_tune(&mut self, tasks: &[Task], domain: &Domain) {
        // MetaCF also expands the adaptation supports with potential
        // interactions before fast adaptation.
        let expanded = self.expand_tasks(tasks, domain);
        self.learner_mut().fine_tune(&expanded, &domain.user_content, &domain.item_content);
    }

    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let uc: Vec<f32> = domain.user_content.row(user).to_vec();
        self.learner_mut().score(&uc, &domain.item_content, items)
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        snapshot(self.learner_mut().model_mut())
    }

    fn restore_state(&mut self, state: &[Matrix]) {
        restore(self.learner_mut().model_mut(), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

    #[test]
    fn expansion_adds_soft_positives_only_for_unrated_items() {
        let w = generate_world(&tiny_world(71));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let model = MetaCf::new(MetaCfConfig::preset(true), 1);
        let expanded = model.expand_tasks(&warm.train_tasks, &w.target);
        assert_eq!(expanded.len(), warm.train_tasks.len());
        let mut any_expanded = false;
        for (orig, exp) in warm.train_tasks.iter().zip(expanded.iter()) {
            assert!(exp.support.len() >= orig.support.len());
            for &(item, label) in &exp.support[orig.support.len()..] {
                any_expanded = true;
                assert_eq!(label, 0.8, "potential interactions carry the soft label");
                assert!(
                    !w.target.has_interaction(exp.user, item),
                    "potential interactions must be unrated"
                );
            }
            // Query untouched.
            assert_eq!(orig.query, exp.query);
        }
        assert!(any_expanded, "at least some tasks should gain potential interactions");
    }

    #[test]
    fn co_occurrence_is_symmetric_and_sorted() {
        let w = generate_world(&tiny_world(72));
        let neighbors = MetaCf::co_occurrence(&w.target, 0..w.target.n_users());
        for (item, nbs) in neighbors.iter().enumerate() {
            for w2 in nbs.windows(2) {
                assert!(w2[0].1 >= w2[1].1, "neighbors must be sorted by count");
            }
            for &(nb, c) in nbs {
                // Symmetry: the reverse edge exists with the same count
                // (possibly truncated out of the top-8; only check presence
                // when it survived).
                if let Some(&(_, c2)) = neighbors[nb].iter().find(|&&(i, _)| i == item) {
                    assert_eq!(c, c2);
                }
            }
        }
    }

    #[test]
    fn metacf_beats_chance_on_cold_users() {
        let w = generate_world(&tiny_world(73));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = MetaCf::new(MetaCfConfig::preset(true), 2);
        model.fit(&w, &warm);
        let s = evaluate_scenario(&mut model, &w, &cu, 10);
        assert!(s.auc > 0.5, "C-U AUC {} should beat chance", s.auc);
    }
}

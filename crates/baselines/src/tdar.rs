//! TDAR — Text-enhanced Domain Adaptation Recommendation
//! (Yu et al., KDD 2020).
//!
//! TDAR's premise: review-text features are *domain-invariant*, so aligning
//! users' text representations across domains adapts a collaborative model
//! to the target. Scale-down mapping:
//!
//! * the word-semantic text features → the shared bag-of-words content
//!   vectors used throughout this reproduction;
//! * the domain classifier + adversarial embedding alignment → a direct
//!   alignment loss pulling a shared user's *source-content* tower output
//!   toward their *target-content* tower output (the same fixed point the
//!   adversarial game converges to, without the minimax machinery);
//! * the collaborative scorer → a dense scorer over the aligned tower
//!   outputs.
//!
//! TDAR uses the *first* source domain only (it is a single-source method).
//! As the paper notes (§V-B), it is designed for warm-start: the text
//! alignment helps when the target user has interactions, and is unstable
//! under cold-start fine-tuning.

use metadpa_core::eval::Recommender;
use metadpa_data::adaptation::{build_adaptation_pairs, AdaptationConfig};
use metadpa_data::domain::{Domain, World};
use metadpa_data::splits::Scenario;
use metadpa_data::task::Task;
use metadpa_nn::loss::mse;
use metadpa_nn::mlp::{Activation, Mlp};
use metadpa_nn::module::{restore, snapshot, zero_grad, Mode, Module};
use metadpa_nn::optim::{Adam, Optimizer};
use metadpa_nn::param::Param;
use metadpa_tensor::{Matrix, SeededRng};

use crate::common::{finetune_supervised, fit_supervised, score_pairs, SupervisedConfig};

/// TDAR hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TdarConfig {
    /// Width of the text towers.
    pub tower_dim: usize,
    /// Hidden width of the towers.
    pub tower_hidden: usize,
    /// Hidden width of the scorer.
    pub scorer_hidden: usize,
    /// Weight of the cross-domain text-alignment loss.
    pub align_weight: f32,
    /// Alignment pre-training epochs over shared users.
    pub align_epochs: usize,
    /// Supervised training schedule on target tasks.
    pub train: SupervisedConfig,
}

impl TdarConfig {
    /// Standard or reduced schedule.
    pub fn preset(fast: bool) -> Self {
        Self {
            tower_dim: if fast { 12 } else { 24 },
            tower_hidden: if fast { 24 } else { 48 },
            scorer_hidden: if fast { 16 } else { 32 },
            align_weight: 0.5,
            align_epochs: if fast { 3 } else { 10 },
            train: SupervisedConfig::preset(fast),
        }
    }
}

/// Two-tower scorer whose user tower is also the text-alignment target.
struct TdarNet {
    content_dim: usize,
    user_tower: Mlp,
    item_tower: Mlp,
    scorer: Mlp,
}

impl TdarNet {
    fn new(content_dim: usize, cfg: &TdarConfig, rng: &mut SeededRng) -> Self {
        Self {
            content_dim,
            user_tower: Mlp::new(
                &[content_dim, cfg.tower_hidden, cfg.tower_dim],
                Activation::Relu,
                rng,
            ),
            item_tower: Mlp::new(
                &[content_dim, cfg.tower_hidden, cfg.tower_dim],
                Activation::Relu,
                rng,
            ),
            scorer: Mlp::new(&[2 * cfg.tower_dim, cfg.scorer_hidden, 1], Activation::Relu, rng),
        }
    }
}

impl Module for TdarNet {
    fn forward(&mut self, input: &Matrix, mode: Mode) -> Matrix {
        let (cu, ci) = input.hsplit(self.content_dim);
        let eu = self.user_tower.forward(&cu, mode);
        let ei = self.item_tower.forward(&ci, mode);
        self.scorer.forward(&eu.hstack(&ei), mode)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let d = self.scorer.backward(grad_output);
        let (deu, dei) = d.hsplit(self.user_tower.out_dim());
        let dcu = self.user_tower.backward(&deu);
        let dci = self.item_tower.backward(&dei);
        dcu.hstack(&dci)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.user_tower.visit_params(visitor);
        self.item_tower.visit_params(visitor);
        self.scorer.visit_params(visitor);
    }
}

/// The TDAR recommender.
pub struct Tdar {
    config: TdarConfig,
    seed: u64,
    net: Option<TdarNet>,
}

impl Tdar {
    /// Creates an unfitted TDAR.
    pub fn new(config: TdarConfig, seed: u64) -> Self {
        Self { config, seed, net: None }
    }

    fn net_mut(&mut self) -> &mut TdarNet {
        self.net.as_mut().expect("Tdar: call fit first")
    }

    /// Cross-domain text alignment on the first source's shared users: pull
    /// `tower(x_source)` toward `tower(x_target)` (target side treated as
    /// the fixed anchor per step).
    fn align_towers(&mut self, world: &World) {
        let cfg = self.config;
        let pairs = build_adaptation_pairs(world, &AdaptationConfig::default());
        let Some(pair) = pairs.first() else { return };
        if pair.n_shared() < 2 {
            return;
        }
        let net = self.net.as_mut().expect("align after net construction");
        let mut opt = Adam::new(cfg.train.lr);
        for _ in 0..cfg.align_epochs {
            // Anchor: target-content embeddings under the current tower.
            let anchor = net.user_tower.forward(&pair.target_content, Mode::Eval);
            zero_grad(net);
            let source_emb = net.user_tower.forward(&pair.source_content, Mode::Train);
            let (_, grad) = mse(&source_emb, &anchor);
            let _ = net.user_tower.backward(&grad.scale(cfg.align_weight));
            opt.step(&mut net.user_tower);
        }
    }
}

impl Recommender for Tdar {
    fn name(&self) -> String {
        "TDAR".into()
    }

    fn fit(&mut self, world: &World, scenario: &Scenario) {
        let mut rng = SeededRng::new(self.seed);
        let net = TdarNet::new(world.target.user_content.cols(), &self.config, &mut rng);
        self.net = Some(net);
        // Text alignment first (domain adaptation), then supervised CF.
        self.align_towers(world);
        let cfg = self.config.train;
        let _ = fit_supervised(
            self.net_mut(),
            &scenario.train_tasks,
            &world.target.user_content,
            &world.target.item_content,
            &cfg,
        );
    }

    fn fine_tune(&mut self, tasks: &[Task], domain: &Domain) {
        let cfg = self.config.train;
        finetune_supervised(
            self.net_mut(),
            tasks,
            &domain.user_content,
            &domain.item_content,
            &cfg,
        );
    }

    fn score(&mut self, domain: &Domain, user: usize, items: &[usize]) -> Vec<f32> {
        let uc: Vec<f32> = domain.user_content.row(user).to_vec();
        score_pairs(self.net_mut(), &uc, &domain.item_content, items)
    }

    fn snapshot_state(&mut self) -> Vec<Matrix> {
        snapshot(self.net_mut())
    }

    fn restore_state(&mut self, state: &[Matrix]) {
        restore(self.net_mut(), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_core::eval::evaluate_scenario;
    use metadpa_data::generator::generate_world;
    use metadpa_data::presets::tiny_world;
    use metadpa_data::splits::{ScenarioKind, SplitConfig, Splitter};

    #[test]
    fn alignment_pulls_shared_user_embeddings_together() {
        // World seed pinned to the in-tree xoshiro256++ streams.
        let w = generate_world(&tiny_world(105));
        let mut model = Tdar::new(TdarConfig::preset(true), 1);
        let mut rng = SeededRng::new(1);
        model.net = Some(TdarNet::new(w.target.user_content.cols(), &model.config, &mut rng));
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        let pair = &pairs[0];
        let dist = |net: &mut TdarNet| {
            let a = net.user_tower.forward(&pair.source_content, Mode::Eval);
            let b = net.user_tower.forward(&pair.target_content, Mode::Eval);
            (&a - &b).frobenius_norm()
        };
        let before = dist(model.net.as_mut().unwrap());
        model.config.align_epochs = 20;
        model.align_towers(&w);
        let after = dist(model.net.as_mut().unwrap());
        assert!(after < before, "alignment should shrink the gap: {before} -> {after}");
    }

    #[test]
    fn tdar_beats_chance_on_warm_start() {
        let w = generate_world(&tiny_world(102));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let mut model = Tdar::new(TdarConfig::preset(true), 2);
        model.fit(&w, &warm);
        let s = evaluate_scenario(&mut model, &w, &warm, 10);
        assert!(s.auc > 0.5, "warm AUC {}", s.auc);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let w = generate_world(&tiny_world(103));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        let warm = sp.scenario(ScenarioKind::Warm);
        let cu = sp.scenario(ScenarioKind::ColdUser);
        let mut model = Tdar::new(TdarConfig::preset(true), 3);
        model.fit(&w, &warm);
        let user = cu.eval[0].user;
        let items: Vec<usize> = (0..5).collect();
        let before = model.score(&w.target, user, &items);
        let state = model.snapshot_state();
        model.fine_tune(&cu.finetune_tasks, &w.target);
        model.restore_state(&state);
        assert_eq!(before, model.score(&w.target, user, &items));
    }
}

//! Comparing two runs: per-span-path and per-metric deltas between two
//! recorded streams, and the BENCH-baseline regression gate.
//!
//! `obs-report diff a.jsonl b.jsonl` answers "what changed between these
//! two runs" (informational, never fails); `obs-report check` compares a
//! freshly measured BENCH report against a committed baseline and exits
//! nonzero when any block's p50 regressed beyond the tolerance — the CI
//! perf gate.

use crate::report::{BenchReport, Report};

/// One changed quantity between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaLine {
    /// Span path or metric name.
    pub name: String,
    /// Value in the first (baseline / `a`) run.
    pub a: f64,
    /// Value in the second (candidate / `b`) run.
    pub b: f64,
}

impl DeltaLine {
    /// Relative change `(b - a) / a` in percent; `None` when `a == 0`.
    pub fn pct(&self) -> Option<f64> {
        if self.a == 0.0 {
            None
        } else {
            Some((self.b - self.a) / self.a * 100.0)
        }
    }

    /// Whether the two values differ at all.
    pub fn changed(&self) -> bool {
        self.a != self.b
    }
}

/// Full diff between two reports.
#[derive(Clone, Debug, Default)]
pub struct StreamDiff {
    /// Inclusive-time deltas per span path (union of both runs; a path
    /// missing from one run contributes 0 on that side).
    pub spans: Vec<DeltaLine>,
    /// Metric value deltas (counters/gauges by value, histograms by p50).
    pub metrics: Vec<DeltaLine>,
}

impl StreamDiff {
    /// Computes the diff `a -> b`.
    pub fn between(a: &Report, b: &Report) -> Self {
        let mut spans = Vec::new();
        let span_names: std::collections::BTreeSet<&String> =
            a.spans.keys().chain(b.spans.keys()).collect();
        for name in span_names {
            let va = a.spans.get(name).map(|s| s.inclusive_ns as f64).unwrap_or(0.0);
            let vb = b.spans.get(name).map(|s| s.inclusive_ns as f64).unwrap_or(0.0);
            spans.push(DeltaLine { name: name.clone(), a: va, b: vb });
        }
        let mut metrics = Vec::new();
        let metric_names: std::collections::BTreeSet<&String> =
            a.metrics.keys().chain(b.metrics.keys()).collect();
        for name in metric_names {
            let va = a.metrics.get(name).map(|m| m.value).unwrap_or(0.0);
            let vb = b.metrics.get(name).map(|m| m.value).unwrap_or(0.0);
            metrics.push(DeltaLine { name: name.clone(), a: va, b: vb });
        }
        Self { spans, metrics }
    }

    /// Whether nothing differs anywhere (`diff run.jsonl run.jsonl`).
    pub fn is_zero(&self) -> bool {
        self.spans.iter().all(|d| !d.changed()) && self.metrics.iter().all(|d| !d.changed())
    }

    /// Human-readable rendering: changed lines first with percent change,
    /// then a one-line tally of unchanged entries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut render_section = |title: &str, lines: &[DeltaLine], as_ns: bool| {
            let changed: Vec<&DeltaLine> = lines.iter().filter(|d| d.changed()).collect();
            out.push_str(&format!(
                "{title}: {} changed, {} unchanged\n",
                changed.len(),
                lines.len() - changed.len()
            ));
            for d in changed {
                let pct = match d.pct() {
                    Some(p) => format!("{p:+.1}%"),
                    None => "new".to_string(),
                };
                if as_ns {
                    out.push_str(&format!(
                        "  {:<60} {} -> {}  ({pct})\n",
                        d.name,
                        fmt_ns(d.a),
                        fmt_ns(d.b)
                    ));
                } else {
                    out.push_str(&format!("  {:<60} {} -> {}  ({pct})\n", d.name, d.a, d.b));
                }
            }
        };
        render_section("span inclusive time", &self.spans, true);
        render_section("metrics", &self.metrics, false);
        if self.is_zero() {
            out.push_str("runs are identical\n");
        }
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Verdict for one baseline block.
#[derive(Clone, Debug, PartialEq)]
pub enum BlockVerdict {
    /// Within tolerance.
    Ok,
    /// Faster than baseline by more than the tolerance (worth re-baselining).
    Improved(f64),
    /// Slower than `baseline * (1 + tolerance)` — the gate trips.
    Regressed(f64),
    /// Present in the baseline but not measured now.
    MissingInCurrent,
    /// Measured now but absent from the baseline (informational).
    NewInCurrent,
}

/// Outcome of `obs-report check`.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Per-block verdicts in baseline order (new blocks appended).
    pub lines: Vec<(String, BlockVerdict)>,
    /// Number of `Regressed` verdicts.
    pub regressions: usize,
    /// Whether the baseline was recorded on matching hardware. Timing
    /// baselines only bind on the hardware that produced them; the CLI
    /// downgrades failures to warnings on a mismatch unless forced.
    pub hardware_match: bool,
}

impl CheckReport {
    /// Human-readable gate report.
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf gate: tolerance {:.0}%, hardware {}\n",
            tolerance * 100.0,
            if self.hardware_match { "matches baseline" } else { "DIFFERS from baseline" }
        ));
        for (name, verdict) in &self.lines {
            let line = match verdict {
                BlockVerdict::Ok => format!("  ok        {name}"),
                BlockVerdict::Improved(pct) => format!("  improved  {name}  ({pct:+.1}%)"),
                BlockVerdict::Regressed(pct) => format!("  REGRESSED {name}  ({pct:+.1}%)"),
                BlockVerdict::MissingInCurrent => format!("  missing   {name}"),
                BlockVerdict::NewInCurrent => format!("  new       {name}"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!(
            "{} regression(s), {} block(s) checked\n",
            self.regressions,
            self.lines.len()
        ));
        out
    }
}

/// Compares `current` against `baseline` block-by-block on p50 wall time.
/// A block regresses when `current.p50 > baseline.p50 * (1 + tolerance)`.
pub fn check(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> CheckReport {
    let mut lines = Vec::new();
    let mut regressions = 0;
    for base in &baseline.blocks {
        let verdict = match current.blocks.iter().find(|b| b.name == base.name) {
            None => BlockVerdict::MissingInCurrent,
            // A zero-p50 baseline can't express a ratio; never gate on it.
            Some(_) if base.p50_ns == 0 => BlockVerdict::Ok,
            Some(cur) => {
                let pct = (cur.p50_ns as f64 - base.p50_ns as f64) / base.p50_ns as f64 * 100.0;
                if cur.p50_ns as f64 > base.p50_ns as f64 * (1.0 + tolerance) {
                    regressions += 1;
                    BlockVerdict::Regressed(pct)
                } else if (cur.p50_ns as f64) < base.p50_ns as f64 * (1.0 - tolerance) {
                    BlockVerdict::Improved(pct)
                } else {
                    BlockVerdict::Ok
                }
            }
        };
        lines.push((base.name.clone(), verdict));
    }
    for cur in &current.blocks {
        if !baseline.blocks.iter().any(|b| b.name == cur.name) {
            lines.push((cur.name.clone(), BlockVerdict::NewInCurrent));
        }
    }
    CheckReport { lines, regressions, hardware_match: current.host == baseline.host }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchBlock, BenchReport, HostInfo};
    use crate::stream::read_str;

    fn report_from(lines: &[String]) -> Report {
        Report::from_events(&read_str(&lines.join("\n")).unwrap())
    }

    fn span_line(path: &str, dur: u64) -> String {
        format!("{{\"kind\":\"span\",\"name\":\"{path}\",\"t_ns\":1,\"dur_ns\":{dur}}}")
    }

    #[test]
    fn identical_streams_diff_to_zero() {
        let lines = vec![span_line("fit", 100), span_line("fit/adapt", 60)];
        let a = report_from(&lines);
        let b = report_from(&lines);
        let d = StreamDiff::between(&a, &b);
        assert!(d.is_zero());
        assert!(d.render().contains("runs are identical"));
    }

    #[test]
    fn diff_reports_percent_change_and_new_paths() {
        let a = report_from(&[span_line("fit", 100)]);
        let b = report_from(&[span_line("fit", 150), span_line("fit/new", 10)]);
        let d = StreamDiff::between(&a, &b);
        assert!(!d.is_zero());
        let fit = d.spans.iter().find(|l| l.name == "fit").unwrap();
        assert_eq!(fit.pct(), Some(50.0));
        let new = d.spans.iter().find(|l| l.name == "fit/new").unwrap();
        assert_eq!(new.pct(), None, "0 -> x has no percent change");
        assert!(d.render().contains("+50.0%"));
    }

    fn bench(name: &str, p50: u64) -> BenchBlock {
        BenchBlock {
            name: name.into(),
            iters: 10,
            p50_ns: p50,
            p90_ns: p50 + p50 / 10,
            mean_ns: p50 as f64,
            flops: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            server_p99_ns: 0,
        }
    }

    fn bench_report(blocks: Vec<BenchBlock>) -> BenchReport {
        BenchReport {
            git_rev: "test".into(),
            scenario: "unit".into(),
            host: HostInfo::current(),
            requests: 0,
            run_id: String::new(),
            blocks,
        }
    }

    #[test]
    fn check_passes_within_tolerance_and_flags_regressions() {
        let baseline = bench_report(vec![bench("a", 1000), bench("b", 1000)]);
        let ok = bench_report(vec![bench("a", 1100), bench("b", 950)]);
        let gate = check(&ok, &baseline, 0.15);
        assert_eq!(gate.regressions, 0, "{:?}", gate.lines);
        assert!(gate.hardware_match);

        let slow = bench_report(vec![bench("a", 1300), bench("b", 1000)]);
        let gate = check(&slow, &baseline, 0.15);
        assert_eq!(gate.regressions, 1);
        assert!(matches!(gate.lines[0].1, BlockVerdict::Regressed(p) if (p - 30.0).abs() < 1e-9));
        assert!(gate.render(0.15).contains("REGRESSED a"));
    }

    #[test]
    fn check_tracks_missing_new_and_improved_blocks() {
        let baseline = bench_report(vec![bench("gone", 1000), bench("kept", 1000)]);
        let current = bench_report(vec![bench("kept", 500), bench("fresh", 10)]);
        let gate = check(&current, &baseline, 0.15);
        assert_eq!(gate.regressions, 0);
        let verdict = |name: &str| {
            gate.lines.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone()).unwrap()
        };
        assert_eq!(verdict("gone"), BlockVerdict::MissingInCurrent);
        assert!(matches!(verdict("kept"), BlockVerdict::Improved(_)));
        assert_eq!(verdict("fresh"), BlockVerdict::NewInCurrent);
    }

    #[test]
    fn check_detects_hardware_mismatch() {
        let baseline = BenchReport {
            host: HostInfo { arch: "riscv64".into(), os: "plan9".into(), cpus: 1024 },
            ..bench_report(vec![bench("a", 1000)])
        };
        let current = bench_report(vec![bench("a", 5000)]);
        let gate = check(&current, &baseline, 0.15);
        assert_eq!(gate.regressions, 1, "mismatch does not silence the math");
        assert!(!gate.hardware_match, "but the caller can downgrade on it");
    }
}

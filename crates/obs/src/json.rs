//! Hand-rolled JSON: serialization for the event sink **and** the shared
//! read API used by `obs-report`, the BENCH baseline files, and the
//! `metadpa-serve` HTTP endpoints.
//!
//! The offline dependency policy rules out serde, so both halves live
//! here:
//!
//! * **Writing**: RFC 8259-compliant string escaping ([`escape`]) and a
//!   small single-object writer ([`ObjectWriter`]). Non-ASCII text is
//!   passed through as UTF-8 (valid JSON); only the two mandatory escapes
//!   (`"` and `\`), the conventional short escapes, and other control
//!   characters (as `\u00XX`) are rewritten.
//! * **Reading**: a recursive-descent parser ([`parse`]) covering the full
//!   grammar — objects, arrays, strings with escapes, numbers, booleans,
//!   null — into [`JsonValue`]. Nesting is capped at [`MAX_DEPTH`] so
//!   adversarial input returns a [`JsonError`] instead of overflowing the
//!   stack, and truncated input never panics.

/// Appends the JSON escape of `s` (without surrounding quotes) to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).expect("hex digit"));
                }
            }
            c => out.push(c),
        }
    }
}

/// The JSON string literal (with quotes) for `s`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Serializes an `f64` the way JSON requires: finite values as numbers,
/// non-finite ones as null (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` on f64 is a round-trippable shortest representation.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Builder for one flat JSON object, written in insertion order.
#[derive(Default)]
pub struct ObjectWriter {
    buf: String,
    n_fields: usize,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self { buf: String::from("{"), n_fields: 0 }
    }

    fn key(&mut self, k: &str) {
        if self.n_fields > 0 {
            self.buf.push(',');
        }
        self.n_fields += 1;
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64_field(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (non-finite values become null).
    pub fn f64_field(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON (a nested
    /// object or array built by another writer). The caller guarantees
    /// `raw` is valid JSON.
    pub fn raw_field(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Maximum object/array nesting depth [`parse`] accepts. The recursive-
/// descent parser uses the call stack, so the cap is what turns a
/// pathological `[[[[…` document into a [`JsonError`] rather than a stack
/// overflow.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value. Integers that fit `i64` are kept exact
/// ([`JsonValue::Int`]); everything else numeric becomes [`JsonValue::Float`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal that fits `i64` (durations, counts).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a key when the value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when the value is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { message: message.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.err(format!("nesting deeper than {MAX_DEPTH} levels"))
        } else {
            Ok(())
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte {:?}", other as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {word:?}"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(JsonError {
                                    message: "truncated \\u escape".into(),
                                    offset: self.pos,
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                message: format!("bad \\u escape {hex:?}"),
                                offset: self.pos,
                            })?;
                            // Surrogate pairs never occur in our own output
                            // (we write raw UTF-8); map lone surrogates to
                            // the replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        JsonError { message: "invalid UTF-8 in string".into(), offset: self.pos }
                    })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(JsonValue::Float(v)),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed).
///
/// Never panics: malformed, truncated, or pathologically nested input
/// returns a [`JsonError`] with the byte offset of the failure.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after JSON document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(escape(r#"say "hi" \ bye"#), r#""say \"hi\" \\ bye""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\tc\rd"), r#""a\nb\tc\rd""#);
        assert_eq!(escape("\u{08}\u{0C}"), r#""\b\f""#);
        assert_eq!(escape("\u{01}\u{1F}"), r#""\u0001\u001f""#);
    }

    #[test]
    fn non_ascii_passes_through_as_utf8() {
        assert_eq!(escape("café 日本語 ß"), "\"café 日本語 ß\"");
        assert_eq!(escape("emoji: 🦀"), "\"emoji: 🦀\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.25), "-0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_writer_orders_and_separates_fields() {
        let mut w = ObjectWriter::new();
        w.str_field("kind", "span")
            .u64_field("dur_ns", 1200)
            .i64_field("delta", -3)
            .f64_field("loss", 0.5)
            .bool_field("ok", true);
        assert_eq!(w.finish(), r#"{"kind":"span","dur_ns":1200,"delta":-3,"loss":0.5,"ok":true}"#);
    }

    #[test]
    fn raw_field_nests_prebuilt_json() {
        let mut inner = ObjectWriter::new();
        inner.u64_field("cpus", 8);
        let mut w = ObjectWriter::new();
        w.str_field("schema", "v1").raw_field("host", &inner.finish()).raw_field("xs", "[1,2]");
        assert_eq!(w.finish(), r#"{"schema":"v1","host":{"cpus":8},"xs":[1,2]}"#);
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }

    #[test]
    fn keys_are_escaped_too() {
        let mut w = ObjectWriter::new();
        w.str_field("weird\"key", "v");
        assert_eq!(w.finish(), r#"{"weird\"key":"v"}"#);
    }

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":1,"b":-2.5,"c":[true,null,"x"],"d":{"e":"f"}}"#).unwrap();
        assert_eq!(v.get("a"), Some(&JsonValue::Int(1)));
        assert_eq!(v.get("b"), Some(&JsonValue::Float(-2.5)));
        let arr = v.get("c").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2], JsonValue::Str("x".into()));
        assert_eq!(v.get("d").and_then(|d| d.get("e")).and_then(JsonValue::as_str), Some("f"));
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = parse("{\"t\":9007199254740993}").unwrap(); // 2^53 + 1
        assert_eq!(v.get("t").and_then(JsonValue::as_u64), Some(9007199254740993));
    }

    #[test]
    fn string_escapes_round_trip_with_the_writer() {
        let original = "q\"uote \\ back\nnew\ttab café \u{01}";
        let written = escape(original);
        let parsed = parse(&written).unwrap();
        assert_eq!(parsed, JsonValue::Str(original.to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn nesting_within_the_cap_parses() {
        let depth = MAX_DEPTH - 1;
        let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&doc).is_ok());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // 100k unclosed brackets: the recursion cap must trip long before
        // the call stack does, for both arrays and objects.
        let bombs = ["[".repeat(100_000), "{\"a\":".repeat(100_000), "[{\"x\":[".repeat(50_000)];
        for bomb in &bombs {
            let err = parse(bomb).expect_err("nesting bomb must fail");
            assert!(err.message.contains("nesting"), "{err}");
        }
    }

    #[test]
    fn every_truncation_of_a_document_fails_without_panicking() {
        // Fuzz-ish robustness: any prefix of a valid document must return
        // cleanly (truncated input is the common failure mode for a
        // half-written request body or a killed recorder).
        let doc = r#"{"a":[1,-2.5e3,true,null,"es\"c\u00e9"],"b":{"c":[{"d":"x"}]}}"#;
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            assert!(parse(prefix).is_err(), "prefix {prefix:?} should not parse");
        }
        assert!(parse(doc).is_ok());
    }

    #[test]
    fn truncated_escapes_and_garbage_bytes_error_cleanly() {
        for bad in ["\"\\", "\"\\u00", "\"\\u00zz\"", "\"abc", "tru", "-", "1e", "[,]", "{,}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_offsets_point_into_the_input() {
        let err = parse("{\"a\": nope}").unwrap_err();
        assert!(err.offset <= "{\"a\": nope}".len());
        assert!(err.to_string().contains("byte"));
    }
}

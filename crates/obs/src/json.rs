//! Hand-rolled JSON serialization for the event sink.
//!
//! The offline dependency policy rules out serde, and the sink only needs
//! to *write* flat objects — so this module provides exactly that: RFC
//! 8259-compliant string escaping and a small single-object writer.
//! Non-ASCII text is passed through as UTF-8 (valid JSON); only the two
//! mandatory escapes (`"` and `\`), the conventional short escapes, and
//! other control characters (as `\u00XX`) are rewritten.

/// Appends the JSON escape of `s` (without surrounding quotes) to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).expect("hex digit"));
                }
            }
            c => out.push(c),
        }
    }
}

/// The JSON string literal (with quotes) for `s`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Serializes an `f64` the way JSON requires: finite values as numbers,
/// non-finite ones as null (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` on f64 is a round-trippable shortest representation.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Builder for one flat JSON object, written in insertion order.
#[derive(Default)]
pub struct ObjectWriter {
    buf: String,
    n_fields: usize,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self { buf: String::from("{"), n_fields: 0 }
    }

    fn key(&mut self, k: &str) {
        if self.n_fields > 0 {
            self.buf.push(',');
        }
        self.n_fields += 1;
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64_field(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (non-finite values become null).
    pub fn f64_field(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON (a nested
    /// object or array built by another writer). The caller guarantees
    /// `raw` is valid JSON.
    pub fn raw_field(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(escape(r#"say "hi" \ bye"#), r#""say \"hi\" \\ bye""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\tc\rd"), r#""a\nb\tc\rd""#);
        assert_eq!(escape("\u{08}\u{0C}"), r#""\b\f""#);
        assert_eq!(escape("\u{01}\u{1F}"), r#""\u0001\u001f""#);
    }

    #[test]
    fn non_ascii_passes_through_as_utf8() {
        assert_eq!(escape("café 日本語 ß"), "\"café 日本語 ß\"");
        assert_eq!(escape("emoji: 🦀"), "\"emoji: 🦀\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.25), "-0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_writer_orders_and_separates_fields() {
        let mut w = ObjectWriter::new();
        w.str_field("kind", "span")
            .u64_field("dur_ns", 1200)
            .i64_field("delta", -3)
            .f64_field("loss", 0.5)
            .bool_field("ok", true);
        assert_eq!(w.finish(), r#"{"kind":"span","dur_ns":1200,"delta":-3,"loss":0.5,"ok":true}"#);
    }

    #[test]
    fn raw_field_nests_prebuilt_json() {
        let mut inner = ObjectWriter::new();
        inner.u64_field("cpus", 8);
        let mut w = ObjectWriter::new();
        w.str_field("schema", "v1").raw_field("host", &inner.finish()).raw_field("xs", "[1,2]");
        assert_eq!(w.finish(), r#"{"schema":"v1","host":{"cpus":8},"xs":[1,2]}"#);
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }

    #[test]
    fn keys_are_escaped_too() {
        let mut w = ObjectWriter::new();
        w.str_field("weird\"key", "v");
        assert_eq!(w.finish(), r#"{"weird\"key":"v"}"#);
    }
}

//! The process-global **run ledger**: deterministic run IDs that join a
//! training trace, the exported checkpoint, BENCH documents and the live
//! server on one key.
//!
//! A [`RunId`] is minted at pipeline start from the training seed, a
//! fingerprint of the full config, and a process-global monotonic
//! counter. There is deliberately **no wall-clock component**: two runs
//! of the same binary with the same seed and config produce the same ID
//! sequence, so determinism suites can compare artifacts across thread
//! counts without masking the metadata.
//!
//! Once [`install`]ed, the current run is stamped as a `"run"` field into
//! every span/event record by [`crate::emit`] (only while observability
//! is enabled — the disabled path stays one relaxed atomic load), read by
//! `export` into checkpoint metadata, and by the BENCH writer into
//! `metadpa-bench/v3` documents.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Monotonic per-process run counter; the first minted run is sequence 1.
static NEXT_RUN_SEQ: AtomicU64 = AtomicU64::new(1);

/// The currently installed run, if any. Written once per pipeline fit;
/// read under the same lock discipline as the recorder slot.
static CURRENT: RwLock<Option<RunId>> = RwLock::new(None);

/// A run-ledger key: `run-<seed:016x>-<config fingerprint:016x>-<seq>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunId {
    /// Training seed the run was launched with.
    pub seed: u64,
    /// FNV-1a fingerprint of the full pipeline config (see [`fingerprint`]).
    pub config_fingerprint: u64,
    /// Process-global monotonic sequence number (starts at 1).
    pub seq: u64,
}

impl RunId {
    /// Parses a rendered run ID back into its components.
    pub fn parse(s: &str) -> Option<RunId> {
        let rest = s.strip_prefix("run-")?;
        let mut parts = rest.splitn(3, '-');
        let seed = u64::from_str_radix(parts.next()?, 16).ok()?;
        let config_fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
        let seq = parts.next()?.parse().ok()?;
        Some(RunId { seed, config_fingerprint, seq })
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run-{:016x}-{:016x}-{}", self.seed, self.config_fingerprint, self.seq)
    }
}

/// 64-bit FNV-1a over `bytes` — the config fingerprint used in run IDs.
/// Stable across platforms and thread counts (pure byte fold).
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mints the next run ID for this process. Pure arithmetic plus one
/// relaxed atomic increment — no wall-clock, no I/O, no allocation.
pub fn mint(seed: u64, config_fingerprint: u64) -> RunId {
    RunId { seed, config_fingerprint, seq: NEXT_RUN_SEQ.fetch_add(1, Ordering::Relaxed) }
}

/// Installs `run` as the process-current run; subsequent records emitted
/// while observability is enabled carry it as a `"run"` field.
pub fn install(run: RunId) {
    *CURRENT.write().expect("obs run lock poisoned") = Some(run);
}

/// Clears the current run (tests; production runs leave it installed so
/// the closing metrics snapshot is stamped too).
pub fn clear() {
    *CURRENT.write().expect("obs run lock poisoned") = None;
}

/// The currently installed run, if any.
pub fn current() -> Option<RunId> {
    CURRENT.read().expect("obs run lock poisoned").clone()
}

/// The rendered current run ID, or `""` when no run is installed — the
/// form stamped into checkpoint metadata and BENCH documents.
pub fn current_string() -> String {
    current().map(|r| r.to_string()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_render_and_parse_round_trip() {
        let run = mint(7, fingerprint(b"config"));
        let rendered = run.to_string();
        assert!(rendered.starts_with("run-0000000000000007-"), "{rendered}");
        assert_eq!(RunId::parse(&rendered), Some(run.clone()));
        assert_eq!(RunId::parse("not-a-run"), None);
        assert_eq!(RunId::parse("run-zz-00-1"), None);
    }

    #[test]
    fn minting_is_monotonic_and_wall_clock_free() {
        let a = mint(3, 9);
        let b = mint(3, 9);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.config_fingerprint, b.config_fingerprint);
        assert!(b.seq > a.seq, "sequence numbers increase: {} then {}", a.seq, b.seq);
        // Identical inputs differ only in the sequence component.
        let (sa, sb) = (a.to_string(), b.to_string());
        assert_eq!(sa.rsplit_once('-').unwrap().0, sb.rsplit_once('-').unwrap().0);
    }

    #[test]
    fn install_current_clear_cycle() {
        let _g = crate::test_lock();
        let run = mint(11, fingerprint(b"cycle"));
        install(run.clone());
        assert_eq!(current(), Some(run.clone()));
        assert_eq!(current_string(), run.to_string());
        clear();
        assert_eq!(current(), None);
        assert_eq!(current_string(), "");
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint(b"metadpa"), fingerprint(b"metadpa"));
        assert_ne!(fingerprint(b"metadpa"), fingerprint(b"metadpb"));
    }
}

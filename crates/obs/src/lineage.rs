//! Run-lineage reconstruction: join a training trace, an exported
//! checkpoint's metadata, and a live server's `/health` document on the
//! run-ledger key ([`crate::run::RunId`]) and render one provenance
//! report.
//!
//! The heavy lifting (reading trace files, loading checkpoints, scraping
//! `/health`) stays with the callers — `obs-report lineage` and the
//! integration tests — so this module depends only on already-parsed
//! [`StreamEvent`]s and plain strings and stays free of serve-crate
//! dependencies.

use crate::json;
use crate::stream::StreamEvent;

/// What one evidence source contributed to the lineage join.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineageSource {
    /// Human label: `"trace"`, `"ckpt"`, `"health"`.
    pub label: &'static str,
    /// The run ID that source carries (`None` = source present but
    /// unstamped, e.g. a pre-run-ledger checkpoint).
    pub run_id: Option<String>,
}

/// The reconstructed train → export → serve chain.
#[derive(Clone, Debug, Default)]
pub struct Lineage {
    /// Evidence sources in join order.
    pub sources: Vec<LineageSource>,
    /// `train_epoch` records seen in the trace, per phase label.
    pub train_epochs: Vec<(String, usize)>,
    /// `train_anomaly` records seen in the trace.
    pub anomalies: usize,
    /// Whether the trace contains an `artifact.export` event.
    pub exported: bool,
    /// `request` records seen in the trace (a serve-side trace).
    pub requests: usize,
}

impl Lineage {
    /// Extracts the trace-side evidence from a parsed event stream: the
    /// run ID stamped on training/serve records, epoch counts per phase,
    /// anomaly count, and whether export/serving happened.
    pub fn from_events(events: &[StreamEvent]) -> Lineage {
        let mut lineage = Lineage::default();
        let mut run_id: Option<String> = None;
        let remember_run = |ev: &StreamEvent, out: &mut Option<String>| {
            if out.is_none() {
                if let Some(run) = ev.field("run").and_then(json::JsonValue::as_str) {
                    *out = Some(run.to_string());
                }
            }
        };
        for ev in events {
            match ev.kind.as_str() {
                "train_epoch" => {
                    remember_run(ev, &mut run_id);
                    let phase = ev
                        .field("phase")
                        .and_then(json::JsonValue::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    match lineage.train_epochs.iter_mut().find(|(p, _)| *p == phase) {
                        Some((_, n)) => *n += 1,
                        None => lineage.train_epochs.push((phase, 1)),
                    }
                }
                "train_anomaly" => {
                    remember_run(ev, &mut run_id);
                    lineage.anomalies += 1;
                }
                "request" => lineage.requests += 1,
                "event" if ev.name == "artifact.export" => {
                    remember_run(ev, &mut run_id);
                    lineage.exported = true;
                }
                // A serving process records which artifact run it loaded.
                "event" if ev.name == "serve.artifact" => {
                    if run_id.is_none() {
                        run_id = ev
                            .field("run_id")
                            .and_then(json::JsonValue::as_str)
                            .filter(|s| !s.is_empty())
                            .map(str::to_string);
                    }
                }
                _ => remember_run(ev, &mut run_id),
            }
        }
        lineage.sources.push(LineageSource { label: "trace", run_id });
        lineage
    }

    /// Adds the checkpoint's stamped run ID (`""` = pre-ledger artifact).
    pub fn with_ckpt(mut self, run_id: &str) -> Lineage {
        let run_id = (!run_id.is_empty()).then(|| run_id.to_string());
        self.sources.push(LineageSource { label: "ckpt", run_id });
        self
    }

    /// Adds the run ID a live server reported on `/health`.
    pub fn with_health(mut self, run_id: &str) -> Lineage {
        let run_id = (!run_id.is_empty()).then(|| run_id.to_string());
        self.sources.push(LineageSource { label: "health", run_id });
        self
    }

    /// Adds the run ID stamped on a feedback event log (the key every
    /// record of `POST /v1/feedback` ingestion carries).
    pub fn with_feedback(mut self, run_id: &str) -> Lineage {
        let run_id = (!run_id.is_empty()).then(|| run_id.to_string());
        self.sources.push(LineageSource { label: "feedback", run_id });
        self
    }

    /// The join verdict: `Ok(run_id)` when every source carries the same
    /// run ID, `Err(reason)` when any source is unstamped or disagrees.
    pub fn join(&self) -> Result<String, String> {
        let mut joined: Option<&str> = None;
        for src in &self.sources {
            let Some(id) = src.run_id.as_deref() else {
                return Err(format!("{} carries no run ID", src.label));
            };
            match joined {
                None => joined = Some(id),
                Some(prev) if prev != id => {
                    return Err(format!(
                        "run IDs disagree: {} has {prev:?}, {} has {id:?}",
                        self.sources[0].label, src.label
                    ));
                }
                Some(_) => {}
            }
        }
        joined.map(str::to_string).ok_or_else(|| "no lineage sources".to_string())
    }

    /// Renders the provenance report the `lineage` subcommand prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.join() {
            Ok(id) => out.push_str(&format!("lineage: {id} — all sources join\n")),
            Err(why) => out.push_str(&format!("lineage: BROKEN — {why}\n")),
        }
        for src in &self.sources {
            let id = src.run_id.as_deref().unwrap_or("(unstamped)");
            out.push_str(&format!("  {:<8} {id}\n", src.label));
        }
        if !self.train_epochs.is_empty() {
            let phases: Vec<String> =
                self.train_epochs.iter().map(|(p, n)| format!("{p}×{n}")).collect();
            out.push_str(&format!(
                "  train  {} epoch record(s) [{}], {} anomal{}\n",
                self.train_epochs.iter().map(|(_, n)| n).sum::<usize>(),
                phases.join(", "),
                self.anomalies,
                if self.anomalies == 1 { "y" } else { "ies" },
            ));
        }
        if self.exported {
            out.push_str("  export artifact.export recorded in trace\n");
        }
        if self.requests > 0 {
            out.push_str(&format!("  serve  {} request record(s) in trace\n", self.requests));
        }
        out
    }
}

/// Pulls the `run_id` field out of a `/health` response body.
pub fn run_id_from_health_json(body: &str) -> Option<String> {
    let root = json::parse(body).ok()?;
    root.get("run_id").and_then(json::JsonValue::as_str).map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_str_lenient;

    fn trace(lines: &[&str]) -> Vec<StreamEvent> {
        read_str_lenient(&lines.join("\n")).events
    }

    #[test]
    fn a_consistent_chain_joins_on_one_run_id() {
        let events = trace(&[
            r#"{"kind":"train_epoch","name":"train_epoch","t_ns":1,"phase":"maml","epoch":0,"run":"run-07-aa-1"}"#,
            r#"{"kind":"train_epoch","name":"train_epoch","t_ns":2,"phase":"maml","epoch":1,"run":"run-07-aa-1"}"#,
            r#"{"kind":"event","name":"artifact.export","t_ns":3,"run":"run-07-aa-1"}"#,
        ]);
        let lineage =
            Lineage::from_events(&events).with_ckpt("run-07-aa-1").with_health("run-07-aa-1");
        assert_eq!(lineage.join().as_deref(), Ok("run-07-aa-1"));
        assert_eq!(lineage.train_epochs, vec![("maml".to_string(), 2)]);
        assert!(lineage.exported);
        let report = lineage.render();
        assert!(report.contains("all sources join"), "{report}");
        assert!(report.contains("2 epoch record(s) [maml×2]"), "{report}");
    }

    #[test]
    fn a_mismatched_or_unstamped_source_breaks_the_join() {
        let events = trace(&[
            r#"{"kind":"train_epoch","name":"train_epoch","t_ns":1,"phase":"maml","epoch":0,"run":"run-07-aa-1"}"#,
        ]);
        let mismatch = Lineage::from_events(&events).with_ckpt("run-07-aa-2");
        let err = mismatch.join().unwrap_err();
        assert!(err.contains("disagree"), "{err}");
        assert!(mismatch.render().contains("BROKEN"), "{}", mismatch.render());

        let unstamped = Lineage::from_events(&events).with_ckpt("");
        assert!(unstamped.join().unwrap_err().contains("no run ID"));
    }

    #[test]
    fn serve_traces_join_through_the_serve_artifact_event() {
        let events = trace(&[
            r#"{"kind":"event","name":"serve.artifact","t_ns":1,"run_id":"run-07-aa-3"}"#,
            r#"{"kind":"request","name":"/v1/recommend","t_ns":2,"req":1,"status":200}"#,
        ]);
        let lineage = Lineage::from_events(&events).with_ckpt("run-07-aa-3");
        assert_eq!(lineage.join().as_deref(), Ok("run-07-aa-3"));
        assert_eq!(lineage.requests, 1);
    }

    #[test]
    fn feedback_logs_join_like_any_other_source() {
        let events =
            trace(&[r#"{"kind":"event","name":"serve.artifact","t_ns":1,"run_id":"run-07-aa-5"}"#]);
        let joined = Lineage::from_events(&events).with_feedback("run-07-aa-5");
        assert_eq!(joined.join().as_deref(), Ok("run-07-aa-5"));
        assert!(joined.render().contains("feedback"), "{}", joined.render());

        let broken = Lineage::from_events(&events).with_feedback("run-07-aa-6");
        assert!(broken.join().unwrap_err().contains("disagree"));
        let unstamped = Lineage::from_events(&events).with_feedback("");
        assert!(unstamped.join().unwrap_err().contains("feedback carries no run ID"));
    }

    #[test]
    fn health_bodies_yield_their_run_id() {
        let body = r#"{"status":"ok","model":"m","run_id":"run-07-aa-4"}"#;
        assert_eq!(run_id_from_health_json(body).as_deref(), Some("run-07-aa-4"));
        assert_eq!(run_id_from_health_json("{}"), None);
        assert_eq!(run_id_from_health_json("not json"), None);
    }
}

//! End-of-run summary: span tree plus metrics table, rendered as plain
//! text. Printed to stderr by [`crate::ObsSession`] when it drops.

use crate::metrics::{self, MetricSnapshot};
use crate::span;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the span tree. Paths sort lexicographically, so a child
/// (`a/b`) always directly follows its ancestors — indentation by segment
/// count recovers the tree shape without building one.
fn render_spans(out: &mut String) {
    let snap = span::aggregate_snapshot();
    if snap.is_empty() {
        return;
    }
    out.push_str("spans (total / count / mean):\n");
    for (path, stat) in &snap {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let mean = stat.total_ns.checked_div(stat.count).unwrap_or(0);
        let allocs = if stat.alloc_count > 0 {
            format!("  [{} allocs, {}B]", stat.alloc_count, stat.alloc_bytes)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{}  {} / {} / {}{}\n",
            leaf,
            fmt_ns(stat.total_ns),
            stat.count,
            fmt_ns(mean),
            allocs,
        ));
    }
}

fn render_metrics(out: &mut String) {
    let snap = metrics::snapshot();
    if snap.is_empty() {
        return;
    }
    out.push_str("metrics:\n");
    for (name, metric) in &snap {
        match metric {
            MetricSnapshot::Counter(v) => {
                out.push_str(&format!("  {name} = {v}\n"));
            }
            MetricSnapshot::Gauge(v) => {
                out.push_str(&format!("  {name} = {v:.6}\n"));
            }
            MetricSnapshot::Histogram { count, mean, p50, p90, p99, min, max } => {
                out.push_str(&format!(
                    "  {name}: n={count} mean={mean:.1} p50={p50} p90={p90} p99={p99} min={min} max={max}\n"
                ));
            }
            MetricSnapshot::Window { window_s, count, mean, p50, p90, p99 } => {
                out.push_str(&format!(
                    "  {name} [{window_s:.0}s window]: n={count} mean={mean:.1} p50={p50} p90={p90} p99={p99}\n"
                ));
            }
        }
    }
}

/// The full run summary. Empty sections are omitted; with nothing recorded
/// the result is just the header line.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("== obs run summary ==\n");
    render_spans(&mut out);
    render_metrics(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;
    use std::sync::Arc;

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn render_includes_span_tree_and_metrics() {
        let _g = crate::test_lock();
        crate::enable(Arc::new(MemoryRecorder::default()));
        span::reset_aggregates();
        metrics::reset();
        {
            let _outer = crate::span!("summary.outer");
            let _inner = crate::span!("summary.inner");
        }
        crate::metrics::counter("summary.test.counter").add(42);
        let text = render();
        crate::disable();

        assert!(text.contains("== obs run summary =="));
        assert!(text.contains("summary.outer"));
        // The child renders indented under its parent, by leaf name.
        assert!(text.contains("  summary.inner"));
        assert!(text.contains("summary.test.counter = 42"));
    }
}

//! Reading an observability stream back in: JSONL event decoding on top of
//! the shared [`crate::json`] parser.
//!
//! [`crate::recorder::FileRecorder`] writes one JSON object per line; this
//! module is its inverse, turning a `.jsonl` file back into
//! [`StreamEvent`]s that `obs-report` can aggregate. The JSON grammar
//! itself lives in [`crate::json`] (one parser shared with the BENCH
//! baseline files and the `metadpa-serve` request bodies); this module owns
//! only the event-stream framing.

use std::path::Path;

// The parser began life welded to this module; re-exported so existing
// `stream::{parse, JsonValue, JsonError}` callers keep compiling while the
// canonical home is `crate::json`.
pub use crate::json::{parse, JsonError, JsonValue};

/// One record read back from a JSONL observability stream — the parsed
/// counterpart of [`crate::recorder::Event`], with owned keys.
#[derive(Clone, Debug)]
pub struct StreamEvent {
    /// Record category: `"span"`, `"event"`, `"metric"`, `"manifest"`.
    pub kind: String,
    /// Dotted event name or `/`-joined span path.
    pub name: String,
    /// Nanoseconds since the recording process's observability epoch.
    pub t_ns: u64,
    /// Remaining key-value payload, in stream order.
    pub fields: Vec<(String, JsonValue)>,
}

impl StreamEvent {
    /// Looks up a payload field.
    pub fn field(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A `u64` payload field (missing or differently-typed → `None`).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(JsonValue::as_u64)
    }
}

/// Parses one JSONL line into a [`StreamEvent`].
pub fn parse_line(line: &str) -> Result<StreamEvent, JsonError> {
    let value = parse(line)?;
    let JsonValue::Obj(fields) = value else {
        return Err(JsonError { message: "event line is not a JSON object".into(), offset: 0 });
    };
    let mut kind = None;
    let mut name = None;
    let mut t_ns = 0u64;
    let mut rest = Vec::with_capacity(fields.len().saturating_sub(3));
    for (k, v) in fields {
        match (k.as_str(), &v) {
            ("kind", JsonValue::Str(s)) => kind = Some(s.clone()),
            ("name", JsonValue::Str(s)) => name = Some(s.clone()),
            ("t_ns", _) => t_ns = v.as_u64().unwrap_or(0),
            _ => rest.push((k, v)),
        }
    }
    match (kind, name) {
        (Some(kind), Some(name)) => Ok(StreamEvent { kind, name, t_ns, fields: rest }),
        _ => Err(JsonError { message: "event line missing kind/name".into(), offset: 0 }),
    }
}

/// Reads a whole JSONL stream. Blank lines are skipped; a malformed line
/// aborts with its line number (a truncated tail would silently corrupt
/// every aggregate downstream).
pub fn read_str(text: &str) -> Result<Vec<StreamEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Reads a JSONL stream from a file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<StreamEvent>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Result of a lenient stream read ([`read_str_lenient`]): the events that
/// parsed, plus per-line diagnostics for the ones that did not.
#[derive(Debug, Default)]
pub struct LenientRead {
    /// Successfully parsed events, in stream order.
    pub events: Vec<StreamEvent>,
    /// `(line_number, message)` for interior malformed lines — real
    /// corruption, not crash truncation.
    pub errors: Vec<(usize, String)>,
    /// Warning for a malformed **final** line, the signature a crash or
    /// rotation race leaves behind; the rest of the stream is still good.
    pub truncated_tail: Option<String>,
}

/// Reads a JSONL stream, tolerating a truncated final line.
///
/// Live trace logs are written by a server that may be killed mid-record,
/// and the rotated generation of a [`crate::recorder::RotatingFileRecorder`]
/// can end the same way. A malformed *last* line is therefore reported as
/// [`LenientRead::truncated_tail`] (a warning, the line is skipped); a
/// malformed line with valid lines *after* it is genuine corruption and
/// lands in [`LenientRead::errors`]. Blank lines are skipped as in
/// [`read_str`].
pub fn read_str_lenient(text: &str) -> LenientRead {
    let mut out = LenientRead::default();
    let mut pending: Option<(usize, String)> = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(ev) => {
                // A bad line followed by a good one cannot be tail
                // truncation: promote it to a hard per-line error.
                if let Some(err) = pending.take() {
                    out.errors.push(err);
                }
                out.events.push(ev);
            }
            Err(e) => {
                if let Some(err) = pending.take() {
                    out.errors.push(err);
                }
                pending = Some((i + 1, e.to_string()));
            }
        }
    }
    if let Some((line_no, e)) = pending {
        out.truncated_tail = Some(format!("line {line_no}: truncated record skipped ({e})"));
        // Surface the skip as a typed signal, not stderr-only prose:
        // `check-trace`/`check-train` can assert on the counter/event.
        // Inert while observability is off (one relaxed load per macro).
        crate::counter_add!("obs.stream.truncated_tail", 1u64);
        crate::event!("obs.stream.truncated_tail", "line" => line_no as u64);
    }
    out
}

/// [`read_str_lenient`] over a file.
pub fn read_file_lenient(path: impl AsRef<Path>) -> Result<LenientRead, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(read_str_lenient(&text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trip_through_recorder_serialization() {
        let mut ev = crate::recorder::Event::new("span", "a/b");
        ev.push("dur_ns", 1234u64);
        ev.push("depth", 1u64);
        ev.push("loss", 0.25f64);
        ev.push("label", "x y");
        let parsed = parse_line(&ev.to_json_line()).unwrap();
        assert_eq!(parsed.kind, "span");
        assert_eq!(parsed.name, "a/b");
        assert_eq!(parsed.field_u64("dur_ns"), Some(1234));
        assert_eq!(parsed.field("loss").and_then(JsonValue::as_f64), Some(0.25));
        assert_eq!(parsed.field("label").and_then(JsonValue::as_str), Some("x y"));
    }

    #[test]
    fn read_str_skips_blanks_and_reports_line_numbers() {
        let ok = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\n\n\
                  {\"kind\":\"span\",\"name\":\"b\",\"t_ns\":2,\"dur_ns\":5}\n";
        let events = read_str(ok).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].field_u64("dur_ns"), Some(5));

        let bad = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\nnot json\n";
        let err = read_str(bad).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn non_object_lines_are_rejected() {
        assert!(parse_line("[1,2,3]").is_err());
        assert!(parse_line("{\"name\":\"a\"}").is_err(), "missing kind");
    }

    #[test]
    fn lenient_read_downgrades_a_truncated_tail_to_a_warning() {
        // A crash mid-write: the final line stops partway through a record.
        let crashed = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\n\
                       {\"kind\":\"span\",\"name\":\"b\",\"t_ns\":2,\"dur_ns\":5}\n\
                       {\"kind\":\"span\",\"name\":\"c\",\"t_";
        let read = read_str_lenient(crashed);
        assert_eq!(read.events.len(), 2, "intact prefix is kept");
        assert!(read.errors.is_empty(), "tail truncation is not a hard error");
        let warn = read.truncated_tail.expect("truncated tail reported");
        assert!(warn.contains("line 3"), "{warn}");

        // Strict reading of the same stream still fails — the lenient path
        // is an explicit opt-in for crash-tolerant consumers.
        assert!(read_str(crashed).is_err());
    }

    #[test]
    fn lenient_read_still_hard_errors_on_interior_corruption() {
        let corrupt = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\n\
                       garbage in the middle\n\
                       {\"kind\":\"event\",\"name\":\"b\",\"t_ns\":2}\n";
        let read = read_str_lenient(corrupt);
        assert_eq!(read.events.len(), 2);
        assert!(read.truncated_tail.is_none());
        assert_eq!(read.errors.len(), 1);
        assert_eq!(read.errors[0].0, 2, "error carries its line number");
    }

    #[test]
    fn truncated_tail_is_surfaced_as_a_typed_counter_and_event() {
        let _g = crate::test_lock();
        let sink = std::sync::Arc::new(crate::recorder::MemoryRecorder::default());
        crate::enable(sink.clone());
        let before = crate::metrics::counter("obs.stream.truncated_tail").get();
        let crashed = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\n\
                       {\"kind\":\"span\",\"name\":\"c\",\"t_";
        let read = read_str_lenient(crashed);
        crate::disable();
        assert!(read.truncated_tail.is_some());
        assert_eq!(
            crate::metrics::counter("obs.stream.truncated_tail").get(),
            before + 1,
            "skipped tail increments the typed counter"
        );
        let ev = sink
            .events()
            .into_iter()
            .find(|e| e.name == "obs.stream.truncated_tail")
            .expect("typed truncated-tail event in the stream");
        assert_eq!(ev.kind, "event");
    }

    #[test]
    fn lenient_read_of_a_clean_stream_is_silent() {
        let ok = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\n";
        let read = read_str_lenient(ok);
        assert_eq!(read.events.len(), 1);
        assert!(read.errors.is_empty());
        assert!(read.truncated_tail.is_none());
    }
}

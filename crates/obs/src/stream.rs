//! Reading an observability stream back in: a hand-rolled JSON parser and
//! the typed record it yields.
//!
//! [`crate::recorder::FileRecorder`] writes one JSON object per line; this
//! module is its inverse, turning a `.jsonl` file back into
//! [`StreamEvent`]s that `obs-report` can aggregate. The parser is a small
//! recursive-descent JSON reader (the offline dependency set has no serde)
//! covering the full grammar — objects, arrays, strings with escapes,
//! numbers, booleans, null — because the BENCH baseline files are nested
//! even though event lines are flat.

use std::fmt;
use std::path::Path;

/// A parsed JSON value. Integers that fit `i64` are kept exact
/// ([`JsonValue::Int`]); everything else numeric becomes [`JsonValue::Float`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal that fits `i64` (durations, counts).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key when the value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when the value is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { message: message.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte {:?}", other as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {word:?}"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(JsonError {
                                    message: "truncated \\u escape".into(),
                                    offset: self.pos,
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                message: format!("bad \\u escape {hex:?}"),
                                offset: self.pos,
                            })?;
                            // Surrogate pairs never occur in our own output
                            // (we write raw UTF-8); map lone surrogates to
                            // the replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        JsonError { message: "invalid UTF-8 in string".into(), offset: self.pos }
                    })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(JsonValue::Float(v)),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after JSON document");
    }
    Ok(v)
}

/// One record read back from a JSONL observability stream — the parsed
/// counterpart of [`crate::recorder::Event`], with owned keys.
#[derive(Clone, Debug)]
pub struct StreamEvent {
    /// Record category: `"span"`, `"event"`, `"metric"`, `"manifest"`.
    pub kind: String,
    /// Dotted event name or `/`-joined span path.
    pub name: String,
    /// Nanoseconds since the recording process's observability epoch.
    pub t_ns: u64,
    /// Remaining key-value payload, in stream order.
    pub fields: Vec<(String, JsonValue)>,
}

impl StreamEvent {
    /// Looks up a payload field.
    pub fn field(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A `u64` payload field (missing or differently-typed → `None`).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(JsonValue::as_u64)
    }
}

/// Parses one JSONL line into a [`StreamEvent`].
pub fn parse_line(line: &str) -> Result<StreamEvent, JsonError> {
    let value = parse(line)?;
    let JsonValue::Obj(fields) = value else {
        return Err(JsonError { message: "event line is not a JSON object".into(), offset: 0 });
    };
    let mut kind = None;
    let mut name = None;
    let mut t_ns = 0u64;
    let mut rest = Vec::with_capacity(fields.len().saturating_sub(3));
    for (k, v) in fields {
        match (k.as_str(), &v) {
            ("kind", JsonValue::Str(s)) => kind = Some(s.clone()),
            ("name", JsonValue::Str(s)) => name = Some(s.clone()),
            ("t_ns", _) => t_ns = v.as_u64().unwrap_or(0),
            _ => rest.push((k, v)),
        }
    }
    match (kind, name) {
        (Some(kind), Some(name)) => Ok(StreamEvent { kind, name, t_ns, fields: rest }),
        _ => Err(JsonError { message: "event line missing kind/name".into(), offset: 0 }),
    }
}

/// Reads a whole JSONL stream. Blank lines are skipped; a malformed line
/// aborts with its line number (a truncated tail would silently corrupt
/// every aggregate downstream).
pub fn read_str(text: &str) -> Result<Vec<StreamEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Reads a JSONL stream from a file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<StreamEvent>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":1,"b":-2.5,"c":[true,null,"x"],"d":{"e":"f"}}"#).unwrap();
        assert_eq!(v.get("a"), Some(&JsonValue::Int(1)));
        assert_eq!(v.get("b"), Some(&JsonValue::Float(-2.5)));
        let arr = v.get("c").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2], JsonValue::Str("x".into()));
        assert_eq!(v.get("d").and_then(|d| d.get("e")).and_then(JsonValue::as_str), Some("f"));
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = parse("{\"t\":9007199254740993}").unwrap(); // 2^53 + 1
        assert_eq!(v.get("t").and_then(JsonValue::as_u64), Some(9007199254740993));
    }

    #[test]
    fn string_escapes_round_trip_with_the_writer() {
        let original = "q\"uote \\ back\nnew\ttab café \u{01}";
        let written = crate::json::escape(original);
        let parsed = parse(&written).unwrap();
        assert_eq!(parsed, JsonValue::Str(original.to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn event_round_trip_through_recorder_serialization() {
        let mut ev = crate::recorder::Event::new("span", "a/b");
        ev.push("dur_ns", 1234u64);
        ev.push("depth", 1u64);
        ev.push("loss", 0.25f64);
        ev.push("label", "x y");
        let parsed = parse_line(&ev.to_json_line()).unwrap();
        assert_eq!(parsed.kind, "span");
        assert_eq!(parsed.name, "a/b");
        assert_eq!(parsed.field_u64("dur_ns"), Some(1234));
        assert_eq!(parsed.field("loss").and_then(JsonValue::as_f64), Some(0.25));
        assert_eq!(parsed.field("label").and_then(JsonValue::as_str), Some("x y"));
    }

    #[test]
    fn read_str_skips_blanks_and_reports_line_numbers() {
        let ok = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\n\n\
                  {\"kind\":\"span\",\"name\":\"b\",\"t_ns\":2,\"dur_ns\":5}\n";
        let events = read_str(ok).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].field_u64("dur_ns"), Some(5));

        let bad = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\nnot json\n";
        let err = read_str(bad).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}

//! Reading an observability stream back in: JSONL event decoding on top of
//! the shared [`crate::json`] parser.
//!
//! [`crate::recorder::FileRecorder`] writes one JSON object per line; this
//! module is its inverse, turning a `.jsonl` file back into
//! [`StreamEvent`]s that `obs-report` can aggregate. The JSON grammar
//! itself lives in [`crate::json`] (one parser shared with the BENCH
//! baseline files and the `metadpa-serve` request bodies); this module owns
//! only the event-stream framing.

use std::path::Path;

// The parser began life welded to this module; re-exported so existing
// `stream::{parse, JsonValue, JsonError}` callers keep compiling while the
// canonical home is `crate::json`.
pub use crate::json::{parse, JsonError, JsonValue};

/// One record read back from a JSONL observability stream — the parsed
/// counterpart of [`crate::recorder::Event`], with owned keys.
#[derive(Clone, Debug)]
pub struct StreamEvent {
    /// Record category: `"span"`, `"event"`, `"metric"`, `"manifest"`.
    pub kind: String,
    /// Dotted event name or `/`-joined span path.
    pub name: String,
    /// Nanoseconds since the recording process's observability epoch.
    pub t_ns: u64,
    /// Remaining key-value payload, in stream order.
    pub fields: Vec<(String, JsonValue)>,
}

impl StreamEvent {
    /// Looks up a payload field.
    pub fn field(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A `u64` payload field (missing or differently-typed → `None`).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(JsonValue::as_u64)
    }
}

/// Parses one JSONL line into a [`StreamEvent`].
pub fn parse_line(line: &str) -> Result<StreamEvent, JsonError> {
    let value = parse(line)?;
    let JsonValue::Obj(fields) = value else {
        return Err(JsonError { message: "event line is not a JSON object".into(), offset: 0 });
    };
    let mut kind = None;
    let mut name = None;
    let mut t_ns = 0u64;
    let mut rest = Vec::with_capacity(fields.len().saturating_sub(3));
    for (k, v) in fields {
        match (k.as_str(), &v) {
            ("kind", JsonValue::Str(s)) => kind = Some(s.clone()),
            ("name", JsonValue::Str(s)) => name = Some(s.clone()),
            ("t_ns", _) => t_ns = v.as_u64().unwrap_or(0),
            _ => rest.push((k, v)),
        }
    }
    match (kind, name) {
        (Some(kind), Some(name)) => Ok(StreamEvent { kind, name, t_ns, fields: rest }),
        _ => Err(JsonError { message: "event line missing kind/name".into(), offset: 0 }),
    }
}

/// Reads a whole JSONL stream. Blank lines are skipped; a malformed line
/// aborts with its line number (a truncated tail would silently corrupt
/// every aggregate downstream).
pub fn read_str(text: &str) -> Result<Vec<StreamEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Reads a JSONL stream from a file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<StreamEvent>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trip_through_recorder_serialization() {
        let mut ev = crate::recorder::Event::new("span", "a/b");
        ev.push("dur_ns", 1234u64);
        ev.push("depth", 1u64);
        ev.push("loss", 0.25f64);
        ev.push("label", "x y");
        let parsed = parse_line(&ev.to_json_line()).unwrap();
        assert_eq!(parsed.kind, "span");
        assert_eq!(parsed.name, "a/b");
        assert_eq!(parsed.field_u64("dur_ns"), Some(1234));
        assert_eq!(parsed.field("loss").and_then(JsonValue::as_f64), Some(0.25));
        assert_eq!(parsed.field("label").and_then(JsonValue::as_str), Some("x y"));
    }

    #[test]
    fn read_str_skips_blanks_and_reports_line_numbers() {
        let ok = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\n\n\
                  {\"kind\":\"span\",\"name\":\"b\",\"t_ns\":2,\"dur_ns\":5}\n";
        let events = read_str(ok).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].field_u64("dur_ns"), Some(5));

        let bad = "{\"kind\":\"event\",\"name\":\"a\",\"t_ns\":1}\nnot json\n";
        let err = read_str(bad).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn non_object_lines_are_rejected() {
        assert!(parse_line("[1,2,3]").is_err());
        assert!(parse_line("{\"name\":\"a\"}").is_err(), "missing kind");
    }
}

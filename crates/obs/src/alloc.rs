//! Allocation profiling: a counting [`GlobalAlloc`] wrapper around the
//! system allocator.
//!
//! [`CountingAlloc`] forwards every request to [`System`] and — only when
//! profiling is switched on via [`enable_profiling`] — maintains four
//! process-global relaxed atomics: allocation count, allocated bytes,
//! live bytes, and the peak-live watermark. The disabled path costs one
//! relaxed load per allocator call and touches nothing else, so binaries
//! that install the allocator but never pass `--obs-alloc` behave exactly
//! like ones running on plain [`System`].
//!
//! Install it once per binary (the bench crate does this for every
//! experiment binary):
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: metadpa_obs::alloc::CountingAlloc =
//!     metadpa_obs::alloc::CountingAlloc::new();
//! ```
//!
//! Spans read [`snapshot`] at entry and exit; the deltas ride on the span
//! event (`alloc_count` / `alloc_bytes` fields) and the per-path
//! aggregates, so `obs-report` can attribute allocation churn to span
//! paths. Live/peak numbers are only meaningful when profiling is enabled
//! from process start: frees of memory allocated before enabling are
//! subtracted from a live total that never saw the matching allocation,
//! which is why [`live_bytes`] saturates at zero.
//!
//! This is the one module in the crate that needs `unsafe` (the
//! [`GlobalAlloc`] contract); everything it does with the pointers is
//! forward them to [`System`].
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

static PROFILING: AtomicBool = AtomicBool::new(false);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

/// Whether allocation profiling is currently on.
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turns allocation counting on. Call as early as possible (ideally before
/// any long-lived allocations) so live/peak numbers are meaningful.
pub fn enable_profiling() {
    PROFILING.store(true, Ordering::SeqCst);
}

/// Turns allocation counting off; counters keep their values.
pub fn disable_profiling() {
    PROFILING.store(false, Ordering::SeqCst);
}

/// Zeroes all allocation counters (tests; between bench cases).
pub fn reset_counters() {
    ALLOC_COUNT.store(0, Ordering::Relaxed);
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    LIVE_BYTES.store(0, Ordering::Relaxed);
    PEAK_LIVE_BYTES.store(0, Ordering::Relaxed);
}

/// Point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Number of allocation calls counted so far.
    pub alloc_count: u64,
    /// Total bytes requested by counted allocations.
    pub alloc_bytes: u64,
    /// Currently live bytes (clamped at zero; see module docs).
    pub live_bytes: u64,
    /// Highest live-bytes watermark seen while profiling.
    pub peak_live_bytes: u64,
}

/// Reads all counters. Cheap enough to call per span when profiling.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        alloc_count: ALLOC_COUNT.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
    }
}

#[inline]
fn record_alloc(bytes: u64) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn record_free(bytes: u64) {
    LIVE_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
}

/// Feeds the counters as if an allocation of `bytes` happened. Lets tests
/// exercise span/alloc attribution without installing the allocator as the
/// process-global one. Counts only while profiling is enabled, exactly
/// like the real hook.
#[doc(hidden)]
pub fn test_record_alloc(bytes: u64) {
    if profiling_enabled() {
        record_alloc(bytes);
    }
}

/// Counting wrapper around the system allocator. See the module docs for
/// the enable/disable semantics and installation.
pub struct CountingAlloc;

impl CountingAlloc {
    /// The allocator (a unit struct; all state is in process-global
    /// atomics so counters survive however many instances exist).
    pub const fn new() -> Self {
        Self
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if PROFILING.load(Ordering::Relaxed) && !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if PROFILING.load(Ordering::Relaxed) && !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if PROFILING.load(Ordering::Relaxed) {
            record_free(layout.size() as u64);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if PROFILING.load(Ordering::Relaxed) && !new_ptr.is_null() {
            record_free(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Drives the allocator directly (it is not installed as the global
    // allocator in this test binary), under the obs test lock so the
    // enable/disable toggles of the two tests cannot interleave.
    fn roundtrip_alloc(bytes: usize) {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(bytes, 8).expect("layout");
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, bytes * 2);
            assert!(!p2.is_null());
            let layout2 = Layout::from_size_align(bytes * 2, 8).expect("layout");
            a.dealloc(p2, layout2);
        }
    }

    #[test]
    fn disabled_path_touches_no_counters() {
        let _g = crate::test_lock();
        disable_profiling();
        reset_counters();
        roundtrip_alloc(256);
        // The whole point of the gate: with profiling off, the only work
        // beyond the System call is the one relaxed load — every counter
        // stays exactly zero.
        assert_eq!(snapshot(), AllocSnapshot::default());
    }

    #[test]
    fn enabled_path_counts_allocs_bytes_live_and_peak() {
        let _g = crate::test_lock();
        reset_counters();
        enable_profiling();
        roundtrip_alloc(128);
        disable_profiling();
        let snap = snapshot();
        // alloc(128) + realloc-as-alloc(256) = 2 allocations, 384 bytes.
        assert_eq!(snap.alloc_count, 2);
        assert_eq!(snap.alloc_bytes, 128 + 256);
        assert_eq!(snap.live_bytes, 0, "everything was freed");
        assert!(
            snap.peak_live_bytes >= 256 && snap.peak_live_bytes <= 384,
            "peak {} should cover the realloc window",
            snap.peak_live_bytes
        );
    }

    #[test]
    fn snapshot_clamps_negative_live_to_zero() {
        let _g = crate::test_lock();
        reset_counters();
        enable_profiling();
        // A free of memory allocated before profiling started: live would
        // go negative without the clamp.
        record_free(64);
        disable_profiling();
        assert_eq!(snapshot().live_bytes, 0);
        reset_counters();
    }
}

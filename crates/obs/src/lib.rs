//! # metadpa-obs
//!
//! Zero-dependency tracing and metrics substrate for the MetaDPA stack.
//!
//! The crate provides four pieces, all hand-rolled on `std` alone (the
//! build environment is offline, so no crates.io dependencies):
//!
//! 1. **Spans** ([`span::Span`], [`span!`]): RAII wall-clock timers with
//!    thread-local parent/child nesting. Each finished span emits a
//!    structured event carrying its full path (e.g.
//!    `harness.method.MetaDPA/pipeline.adaptation`) and feeds a global
//!    per-path aggregate used by the run summary.
//! 2. **Metrics** ([`metrics`]): a process-global registry of counters,
//!    gauges, and fixed-bucket histograms (p50/p90/p99 + mean). Hot-path
//!    updates are lock-free atomics behind per-callsite cached handles
//!    ([`counter_add!`], [`gauge_set!`], [`histogram_observe!`]).
//! 3. **Event sink** ([`recorder`]): pluggable [`recorder::Recorder`]
//!    backends — in-memory for tests, JSONL file for runs, human-readable
//!    stderr for live progress. JSON is serialized by hand ([`json`]);
//!    there is no serde.
//! 4. **Run summary** ([`summary`]): a span-tree / metrics-table renderer,
//!    printed at process exit by the [`ObsSession`] RAII guard, which also
//!    writes a `metric` snapshot record per registered metric into the
//!    stream so offline analysis sees the same table.
//!
//! On top of the producing half sits the **consumption half**, used by the
//! `obs-report` binary in `metadpa-bench`:
//!
//! 5. **Stream reader** ([`stream`]): JSONL event decoding on top of the
//!    shared hand-rolled JSON parser ([`json::parse`], also used by the
//!    BENCH baseline files and `metadpa-serve` request bodies).
//! 6. **Reports** ([`report`]): span-tree reconstruction, a text
//!    flamegraph with inclusive/exclusive time, the metrics table, a
//!    machine-readable summary, and the stable `BENCH_*.json` perf-baseline
//!    schema.
//! 7. **Diffs and gating** ([`diff`]): per-span-path / per-metric deltas
//!    between two runs, and the baseline regression check CI gates on.
//! 8. **Allocation profiling** ([`alloc`]): an opt-in counting
//!    [`std::alloc::GlobalAlloc`] wrapper attributing allocation counts and
//!    bytes to spans (`--obs-alloc` in the experiment binaries).
//!
//! ## Inertness contract
//!
//! Instrumentation must never change what an experiment computes: it never
//! touches `SeededRng`, and when observability is disabled every entry
//! point reduces to one relaxed atomic load — no allocation, no I/O, no
//! formatting. The root integration test `obs_inert.rs` pins this down by
//! asserting bit-identical `MetricSummary` values with observability on
//! and off.
//!
//! ## Usage
//!
//! ```
//! use std::sync::Arc;
//! let sink = Arc::new(metadpa_obs::recorder::MemoryRecorder::default());
//! metadpa_obs::enable(sink.clone());
//! {
//!     let _outer = metadpa_obs::span!("pipeline.fit");
//!     let _inner = metadpa_obs::span!("pipeline.adaptation");
//!     metadpa_obs::counter_add!("docs.example.work", 3);
//!     metadpa_obs::event!("docs.example", "epoch" => 1usize, "loss" => 0.25f32);
//! }
//! assert!(sink.events().iter().any(|e| e.name.contains("pipeline.adaptation")));
//! metadpa_obs::disable();
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// `alloc` module, whose `GlobalAlloc` impl is unavoidably unsafe and
// carries a module-level `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod diff;
pub mod json;
pub mod lineage;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod run;
pub mod span;
pub mod stream;
pub mod summary;
pub mod window;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

pub use recorder::{
    Event, FileRecorder, MemoryRecorder, NullRecorder, Recorder, RotatingFileRecorder,
    StderrRecorder, TeeRecorder, Value,
};

/// Fast global on/off switch. One relaxed load on every instrumentation
/// entry point; everything else is gated behind it.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn recorder_slot() -> &'static RwLock<Option<Arc<dyn Recorder>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Recorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether observability is currently enabled. This is the no-op check the
/// disabled path reduces to: a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables observability, routing all events to `recorder`.
///
/// Replaces any previously installed recorder. Span aggregates and metric
/// values are process-global and keep accumulating across enable/disable
/// cycles; call [`metrics::reset`] / [`span::reset_aggregates`] for a clean
/// slate (tests do).
pub fn enable(recorder: Arc<dyn Recorder>) {
    let _ = epoch(); // pin t=0 at first enable
    *recorder_slot().write().expect("obs recorder lock poisoned") = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables observability. Subsequent spans still measure time (so code
/// deriving durations from [`span::Span::finish`] behaves identically) but
/// nothing is recorded, allocated, or written.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    *recorder_slot().write().expect("obs recorder lock poisoned") = None;
}

/// Sends an event to the installed recorder, if enabled. When a run is
/// installed ([`run::install`]), the record is stamped with a `"run"`
/// field so every span/event/metric line joins the run ledger.
pub fn emit(mut event: Event) {
    if !enabled() {
        return;
    }
    if let Some(run) = run::current() {
        event.push("run", run.to_string());
    }
    if let Some(rec) = recorder_slot().read().expect("obs recorder lock poisoned").as_ref() {
        rec.record(&event);
    }
}

/// Flushes the installed recorder (e.g. the JSONL file sink's buffer).
pub fn flush() {
    if let Some(rec) = recorder_slot().read().expect("obs recorder lock poisoned").as_ref() {
        rec.flush();
    }
}

/// Nanoseconds since the observability epoch (first `enable` call).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// RAII guard for one observed run: typically constructed at the top of a
/// binary's `main`. On drop it flushes the recorder and (optionally)
/// prints the run summary — span tree plus metrics table — to stderr,
/// which is the "render at process exit" hook in a world without `atexit`.
pub struct ObsSession {
    print_summary: bool,
}

impl ObsSession {
    /// A session that prints the run summary on drop when observability is
    /// enabled.
    pub fn new(print_summary: bool) -> Self {
        Self { print_summary }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if enabled() {
            emit_metrics_snapshot();
            if self.print_summary {
                eprintln!("{}", summary::render());
            }
            flush();
        }
    }
}

/// Emits one `metric` record per registered metric to the installed
/// recorder — the stream-side counterpart of the summary's metrics table,
/// so `obs-report` can rebuild it from the JSONL file alone. Called
/// automatically when an [`ObsSession`] drops; no-op while disabled.
pub fn emit_metrics_snapshot() {
    if !enabled() {
        return;
    }
    for (name, snap) in metrics::snapshot() {
        let mut ev = Event::new("metric", name);
        match snap {
            metrics::MetricSnapshot::Counter(v) => {
                ev.push("metric_kind", "counter");
                ev.push("value", v);
            }
            metrics::MetricSnapshot::Gauge(v) => {
                ev.push("metric_kind", "gauge");
                ev.push("value", v);
            }
            metrics::MetricSnapshot::Histogram { count, mean, p50, p90, p99, min, max } => {
                ev.push("metric_kind", "histogram");
                ev.push("count", count);
                ev.push("mean", mean);
                ev.push("p50", p50);
                ev.push("p90", p90);
                ev.push("p99", p99);
                ev.push("min", min);
                ev.push("max", max);
            }
            metrics::MetricSnapshot::Window { window_s, count, mean, p50, p90, p99 } => {
                ev.push("metric_kind", "window");
                ev.push("window_s", window_s);
                ev.push("count", count);
                ev.push("mean", mean);
                ev.push("p50", p50);
                ev.push("p90", p90);
                ev.push("p99", p99);
            }
        }
        emit(ev);
    }
}

/// Serializes access to the global enable/disable state for tests that
/// install their own recorders. Production code never calls this.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Starts a named RAII span. Two forms:
///
/// * `span!("name")` — static name;
/// * `span!("method.{}", label)` — formatted name (only formatted when
///   observability is enabled; the disabled path does not allocate).
///
/// Bind the result: `let _sp = span!("block");` — the span ends when the
/// guard drops, or explicitly via [`span::Span::finish`], which also
/// returns the measured [`std::time::Duration`].
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::Span::enter_static($name)
    };
    ($fmt:literal, $($arg:tt)*) => {
        if $crate::enabled() {
            $crate::span::Span::enter(format!($fmt, $($arg)*))
        } else {
            $crate::span::Span::inert()
        }
    };
}

/// Emits a structured event with key-value fields:
///
/// `event!("maml.epoch", "epoch" => e, "loss" => loss)`
///
/// Keys are `&'static str`; values are anything convertible to
/// [`Value`] (integers, floats, bools, strings). When observability is
/// disabled this expands to one atomic load — fields are not evaluated.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::enabled() {
            #[allow(unused_mut)]
            let mut ev = $crate::Event::new("event", $name);
            $(ev.push($k, $v);)*
            $crate::emit(ev);
        }
    };
}

/// Adds `n` to the named counter through a per-callsite cached handle.
/// Disabled path: one relaxed atomic load, no allocation.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
                ::std::sync::OnceLock::new();
            CELL.get_or_init(|| $crate::metrics::counter($name)).add($n as u64);
        }
    };
}

/// Sets the named gauge through a per-callsite cached handle.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
                ::std::sync::OnceLock::new();
            CELL.get_or_init(|| $crate::metrics::gauge($name)).set($v as f64);
        }
    };
}

/// Records an observation in the named histogram through a per-callsite
/// cached handle.
#[macro_export]
macro_rules! histogram_observe {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
                ::std::sync::OnceLock::new();
            CELL.get_or_init(|| $crate::metrics::histogram($name)).observe($v as u64);
        }
    };
}

/// Records an observation in the named sliding-window histogram through a
/// per-callsite cached handle. Same disabled-path contract as
/// [`histogram_observe!`]: one relaxed atomic load, nothing else.
#[macro_export]
macro_rules! window_observe {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::window::WindowHistogram>> =
                ::std::sync::OnceLock::new();
            CELL.get_or_init(|| $crate::metrics::window($name)).observe($v as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::MemoryRecorder;

    #[test]
    fn disabled_emits_nothing_and_allocates_no_names() {
        let _g = test_lock();
        disable();
        let sink = Arc::new(MemoryRecorder::default());
        // Not enabled: spans are inert, events vanish.
        {
            let sp = span!("never.recorded");
            assert!(sp.is_inert());
            event!("never.recorded", "x" => 1);
            counter_add!("never.counter", 5);
        }
        assert!(sink.events().is_empty());
    }

    #[test]
    fn enable_disable_roundtrip_routes_events() {
        let _g = test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        enable(sink.clone());
        event!("roundtrip.ping", "n" => 3usize);
        disable();
        event!("roundtrip.after_disable");
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "roundtrip.ping");
        assert_eq!(events[0].kind, "event");
    }

    #[test]
    fn session_drop_flushes_without_panicking() {
        let _g = test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        enable(sink);
        let session = ObsSession::new(false);
        drop(session);
        disable();
    }
}

//! Offline analysis of a recorded observability stream: span-tree
//! reconstruction, a text flamegraph, the metrics table, and the BENCH
//! perf-baseline schema.
//!
//! The live [`crate::summary`] renders from process-global aggregates at
//! exit; this module computes the same quantities *from the JSONL stream
//! alone*, so any recorded run can be re-analyzed, diffed against another
//! run ([`crate::diff`]), or turned into a regression baseline long after
//! the process is gone. Inclusive time per span path is the sum of that
//! path's span durations — identical, by construction, to the live
//! aggregate's `total_ns` — and exclusive (self) time subtracts the
//! inclusive time of direct children.

use std::collections::BTreeMap;

use crate::json::ObjectWriter;
use crate::stream::{JsonValue, StreamEvent};

/// Per-span-path statistics reconstructed from a stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanPathStat {
    /// Completions recorded at this path.
    pub count: u64,
    /// Summed duration of this path's spans (includes children).
    pub inclusive_ns: u64,
    /// Inclusive minus the inclusive time of direct children (saturating).
    pub exclusive_ns: u64,
    /// Allocations attributed to this path (0 unless `--obs-alloc`).
    pub alloc_count: u64,
    /// Allocated bytes attributed to this path.
    pub alloc_bytes: u64,
}

/// One metric reading carried by a stream's `metric` records.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricReading {
    /// `"counter"`, `"gauge"`, `"histogram"`, or `"window"`.
    pub metric_kind: String,
    /// Scalar value (counter total / gauge value / histogram or window p50).
    pub value: f64,
    /// Full payload for rendering (count, mean, p90, ... for histograms).
    pub fields: Vec<(String, JsonValue)>,
}

/// Everything `obs-report` knows about one recorded run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Manifest payload (binary, seed, flags), when the stream has one.
    pub manifest: Vec<(String, JsonValue)>,
    /// Per-path span statistics, keyed by full `/`-joined path.
    pub spans: BTreeMap<String, SpanPathStat>,
    /// Metric readings, keyed by metric name.
    pub metrics: BTreeMap<String, MetricReading>,
    /// Total records in the stream, by kind.
    pub record_counts: BTreeMap<String, u64>,
}

impl Report {
    /// Aggregates a parsed stream into a report.
    pub fn from_events(events: &[StreamEvent]) -> Self {
        let mut report = Report::default();
        for ev in events {
            *report.record_counts.entry(ev.kind.clone()).or_insert(0) += 1;
            match ev.kind.as_str() {
                "span" => {
                    let stat = report.spans.entry(ev.name.clone()).or_default();
                    stat.count += 1;
                    stat.inclusive_ns += ev.field_u64("dur_ns").unwrap_or(0);
                    stat.alloc_count += ev.field_u64("alloc_count").unwrap_or(0);
                    stat.alloc_bytes += ev.field_u64("alloc_bytes").unwrap_or(0);
                }
                "metric" => {
                    let metric_kind = ev
                        .field("metric_kind")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("counter")
                        .to_string();
                    let value = match metric_kind.as_str() {
                        "histogram" | "window" => ev.field("p50").and_then(JsonValue::as_f64),
                        _ => ev.field("value").and_then(JsonValue::as_f64),
                    }
                    .unwrap_or(0.0);
                    report.metrics.insert(
                        ev.name.clone(),
                        MetricReading { metric_kind, value, fields: ev.fields.clone() },
                    );
                }
                "manifest" => report.manifest = ev.fields.clone(),
                _ => {}
            }
        }
        report.compute_exclusive();
        report
    }

    /// Fills in `exclusive_ns` by subtracting every path's direct
    /// children from its inclusive total.
    fn compute_exclusive(&mut self) {
        let mut child_sum: BTreeMap<String, u64> = BTreeMap::new();
        for (path, stat) in &self.spans {
            if let Some(idx) = path.rfind('/') {
                let parent = path[..idx].to_string();
                *child_sum.entry(parent).or_insert(0) += stat.inclusive_ns;
            }
        }
        for (path, stat) in self.spans.iter_mut() {
            let children = child_sum.get(path).copied().unwrap_or(0);
            stat.exclusive_ns = stat.inclusive_ns.saturating_sub(children);
        }
    }

    /// Text flamegraph: the span tree in path order (children indented
    /// under parents), one line per path with inclusive/exclusive/count,
    /// followed by a hot-list of the same paths sorted by self-time.
    pub fn render_flamegraph(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            out.push_str("no span records in stream\n");
            return out;
        }
        let total: u64 = self
            .spans
            .iter()
            .filter(|(path, _)| !path.contains('/'))
            .map(|(_, s)| s.inclusive_ns)
            .sum();
        out.push_str("span tree (inclusive / exclusive / count):\n");
        for (path, stat) in &self.spans {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            for _ in 0..depth {
                out.push_str("  ");
            }
            let share = if total > 0 {
                format!(" {:5.1}%", stat.inclusive_ns as f64 / total as f64 * 100.0)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{}  {} / {} / {}{}{}\n",
                leaf,
                fmt_ns(stat.inclusive_ns),
                fmt_ns(stat.exclusive_ns),
                stat.count,
                share,
                fmt_allocs(stat),
            ));
        }
        out.push_str("\nhot paths by self time:\n");
        let mut by_self: Vec<(&String, &SpanPathStat)> = self.spans.iter().collect();
        by_self.sort_by(|a, b| b.1.exclusive_ns.cmp(&a.1.exclusive_ns).then(a.0.cmp(b.0)));
        for (path, stat) in by_self.iter().take(15) {
            out.push_str(&format!(
                "  {:<60} self {} ({} calls){}\n",
                path,
                fmt_ns(stat.exclusive_ns),
                stat.count,
                fmt_allocs(stat),
            ));
        }
        out
    }

    /// The metrics table reconstructed from `metric` records.
    pub fn render_metrics(&self) -> String {
        let mut out = String::new();
        if self.metrics.is_empty() {
            out.push_str("no metric records in stream (older streams predate metric snapshots)\n");
            return out;
        }
        out.push_str("metrics:\n");
        for (name, m) in &self.metrics {
            match m.metric_kind.as_str() {
                "histogram" => {
                    let g = |k: &str| {
                        m.fields
                            .iter()
                            .find(|(fk, _)| fk == k)
                            .and_then(|(_, v)| v.as_f64())
                            .unwrap_or(0.0)
                    };
                    out.push_str(&format!(
                        "  {name}: n={} mean={:.1} p50={} p90={} p99={} min={} max={}\n",
                        g("count") as u64,
                        g("mean"),
                        g("p50") as u64,
                        g("p90") as u64,
                        g("p99") as u64,
                        g("min") as u64,
                        g("max") as u64,
                    ));
                }
                "window" => {
                    let g = |k: &str| {
                        m.fields
                            .iter()
                            .find(|(fk, _)| fk == k)
                            .and_then(|(_, v)| v.as_f64())
                            .unwrap_or(0.0)
                    };
                    out.push_str(&format!(
                        "  {name} [{:.0}s window]: n={} mean={:.1} p50={} p90={} p99={}\n",
                        g("window_s"),
                        g("count") as u64,
                        g("mean"),
                        g("p50") as u64,
                        g("p90") as u64,
                        g("p99") as u64,
                    ));
                }
                "gauge" => out.push_str(&format!("  {name} = {:.6}\n", m.value)),
                _ => out.push_str(&format!("  {name} = {}\n", m.value as u64)),
            }
        }
        out
    }

    /// Machine-readable summary: one JSON object with the manifest, every
    /// span path's statistics, and every metric reading.
    pub fn to_json(&self) -> String {
        let mut spans = String::from("[");
        for (i, (path, stat)) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push(',');
            }
            let mut w = ObjectWriter::new();
            w.str_field("path", path)
                .u64_field("count", stat.count)
                .u64_field("inclusive_ns", stat.inclusive_ns)
                .u64_field("exclusive_ns", stat.exclusive_ns)
                .u64_field("alloc_count", stat.alloc_count)
                .u64_field("alloc_bytes", stat.alloc_bytes);
            spans.push_str(&w.finish());
        }
        spans.push(']');

        let mut metrics = String::from("[");
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            if i > 0 {
                metrics.push(',');
            }
            let mut w = ObjectWriter::new();
            w.str_field("name", name).str_field("metric_kind", &m.metric_kind);
            w.f64_field("value", m.value);
            metrics.push_str(&w.finish());
        }
        metrics.push(']');

        let mut manifest = ObjectWriter::new();
        for (k, v) in &self.manifest {
            push_json_value(&mut manifest, k, v);
        }

        let mut w = ObjectWriter::new();
        w.str_field("schema", "metadpa-obs-report/v1");
        w.raw_field("manifest", &manifest.finish());
        w.raw_field("spans", &spans);
        w.raw_field("metrics", &metrics);
        w.finish()
    }
}

fn push_json_value(w: &mut ObjectWriter, k: &str, v: &JsonValue) {
    match v {
        JsonValue::Int(x) => {
            w.i64_field(k, *x);
        }
        JsonValue::Float(x) => {
            w.f64_field(k, *x);
        }
        JsonValue::Str(x) => {
            w.str_field(k, x);
        }
        JsonValue::Bool(x) => {
            w.bool_field(k, *x);
        }
        JsonValue::Null => {
            w.raw_field(k, "null");
        }
        // Nested values don't occur in manifests; serialize defensively.
        other => {
            w.str_field(k, &format!("{other:?}"));
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

fn fmt_allocs(stat: &SpanPathStat) -> String {
    if stat.alloc_count == 0 {
        String::new()
    } else {
        format!("  [{} allocs, {}]", stat.alloc_count, fmt_bytes(stat.alloc_bytes))
    }
}

/// BENCH baseline schema version tag. v3 adds the top-level `run_id`
/// (the run-ledger key of [`crate::run`], `""` when the recording process
/// had no run installed); v2 added the optional per-block `server_p99_ns`
/// and the top-level `requests` total. Every added field defaults, so v2
/// and v1 documents still decode.
pub const BENCH_SCHEMA: &str = "metadpa-bench/v3";

/// The previous schema tags, still accepted by [`BenchReport::from_json`].
pub const BENCH_SCHEMA_V2: &str = "metadpa-bench/v2";

/// The original schema tag, still accepted by [`BenchReport::from_json`].
pub const BENCH_SCHEMA_V1: &str = "metadpa-bench/v1";

/// The current git revision (short hash, `-dirty` suffixed when the tree
/// has local modifications), or `"unknown"` outside a git checkout.
/// Stamped into BENCH baselines and exported model artifacts so a stored
/// file can always be traced back to the code that produced it.
pub fn git_rev() -> String {
    let run = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    };
    match run(&["rev-parse", "--short=12", "HEAD"]) {
        Some(rev) if !rev.is_empty() => {
            let dirty = run(&["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
            if dirty {
                format!("{rev}-dirty")
            } else {
                rev
            }
        }
        _ => "unknown".to_string(),
    }
}

/// Hardware fingerprint a baseline was recorded on. The regression gate
/// downgrades to warnings when this does not match the current machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostInfo {
    /// Target architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Available parallelism at record time.
    pub cpus: u64,
}

impl HostInfo {
    /// The machine this process runs on.
    pub fn current() -> Self {
        Self {
            arch: std::env::consts::ARCH.to_string(),
            os: std::env::consts::OS.to_string(),
            cpus: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1),
        }
    }
}

/// One timed block inside a BENCH report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchBlock {
    /// Block name (microbench case or pipeline block).
    pub name: String,
    /// Measured iterations behind the quantiles.
    pub iters: u64,
    /// Median wall-time per iteration, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile wall-time per iteration, nanoseconds.
    pub p90_ns: u64,
    /// Mean wall-time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// FLOPs per iteration (from the `tensor.matmul.flops` counter; 0
    /// when observability was off during the run).
    pub flops: u64,
    /// Allocations per iteration (0 unless `--obs-alloc`).
    pub alloc_count: u64,
    /// Allocated bytes per iteration.
    pub alloc_bytes: u64,
    /// Server-side windowed p99 for this block, nanoseconds, as scraped
    /// from the serving layer's `/metrics` (0 when not applicable — every
    /// v1 document and all client-only measurements).
    pub server_p99_ns: u64,
}

/// A perf baseline: stable, machine-readable, diffable. See DESIGN.md §6
/// for the schema contract.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Git revision the numbers were recorded at (or `"unknown"`).
    pub git_rev: String,
    /// What was measured (e.g. `microbench.blocks` or `fig6.scalability`).
    pub scenario: String,
    /// Hardware fingerprint.
    pub host: HostInfo,
    /// Total requests behind the report (0 when not a load scenario or
    /// when decoded from a v1 document).
    pub requests: u64,
    /// Run-ledger key of the run that produced the numbers (see
    /// [`crate::run`]); `""` when no run was installed or when decoded
    /// from a pre-v3 document.
    pub run_id: String,
    /// Per-block statistics.
    pub blocks: Vec<BenchBlock>,
}

impl BenchReport {
    /// Serializes to the stable BENCH JSON schema (pretty enough to diff
    /// in review: one block per line).
    pub fn to_json(&self) -> String {
        let mut host = ObjectWriter::new();
        host.str_field("arch", &self.host.arch)
            .str_field("os", &self.host.os)
            .u64_field("cpus", self.host.cpus);
        let mut blocks = String::from("[\n");
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                blocks.push_str(",\n");
            }
            let mut w = ObjectWriter::new();
            w.str_field("name", &b.name)
                .u64_field("iters", b.iters)
                .u64_field("p50_ns", b.p50_ns)
                .u64_field("p90_ns", b.p90_ns)
                .f64_field("mean_ns", b.mean_ns)
                .u64_field("flops", b.flops)
                .u64_field("alloc_count", b.alloc_count)
                .u64_field("alloc_bytes", b.alloc_bytes)
                .u64_field("server_p99_ns", b.server_p99_ns);
            blocks.push_str("    ");
            blocks.push_str(&w.finish());
        }
        blocks.push_str("\n  ]");
        let mut w = ObjectWriter::new();
        w.str_field("schema", BENCH_SCHEMA)
            .str_field("git_rev", &self.git_rev)
            .str_field("scenario", &self.scenario)
            .u64_field("requests", self.requests)
            .str_field("run_id", &self.run_id)
            .raw_field("host", &host.finish())
            .raw_field("blocks", &blocks);
        // Re-indent the top level for readability.
        w.finish()
            .replacen("{\"schema\"", "{\n  \"schema\"", 1)
            .replacen(",\"git_rev\"", ",\n  \"git_rev\"", 1)
            .replacen(",\"scenario\"", ",\n  \"scenario\"", 1)
            .replacen(",\"requests\"", ",\n  \"requests\"", 1)
            .replacen(",\"run_id\"", ",\n  \"run_id\"", 1)
            .replacen(",\"host\"", ",\n  \"host\"", 1)
            .replacen(",\"blocks\"", ",\n  \"blocks\"", 1)
            + "\n"
    }

    /// Parses a BENCH JSON document, validating the schema tag. The
    /// current v3 schema and the older v2/v1 are all accepted; older
    /// documents simply decode with the added fields at their defaults
    /// (`run_id = ""`, `requests`/`server_p99_ns` = 0).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = crate::stream::parse(text).map_err(|e| e.to_string())?;
        let schema = v.get("schema").and_then(JsonValue::as_str).unwrap_or("");
        if schema != BENCH_SCHEMA && schema != BENCH_SCHEMA_V2 && schema != BENCH_SCHEMA_V1 {
            return Err(format!(
                "unsupported BENCH schema {schema:?} \
                 (want {BENCH_SCHEMA:?}, {BENCH_SCHEMA_V2:?} or {BENCH_SCHEMA_V1:?})"
            ));
        }
        let str_of = |key: &str| {
            v.get(key).and_then(JsonValue::as_str).map(str::to_string).unwrap_or_default()
        };
        let host = v.get("host").ok_or("missing host")?;
        let host = HostInfo {
            arch: host.get("arch").and_then(JsonValue::as_str).unwrap_or("").to_string(),
            os: host.get("os").and_then(JsonValue::as_str).unwrap_or("").to_string(),
            cpus: host.get("cpus").and_then(JsonValue::as_u64).unwrap_or(0),
        };
        let mut blocks = Vec::new();
        for b in v.get("blocks").and_then(JsonValue::as_arr).ok_or("missing blocks array")? {
            let name =
                b.get("name").and_then(JsonValue::as_str).ok_or("block missing name")?.to_string();
            let u = |key: &str| b.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            blocks.push(BenchBlock {
                name,
                iters: u("iters"),
                p50_ns: u("p50_ns"),
                p90_ns: u("p90_ns"),
                mean_ns: b.get("mean_ns").and_then(JsonValue::as_f64).unwrap_or(0.0),
                flops: u("flops"),
                alloc_count: u("alloc_count"),
                alloc_bytes: u("alloc_bytes"),
                server_p99_ns: u("server_p99_ns"),
            });
        }
        Ok(Self {
            git_rev: str_of("git_rev"),
            scenario: str_of("scenario"),
            host,
            requests: v.get("requests").and_then(JsonValue::as_u64).unwrap_or(0),
            run_id: str_of("run_id"),
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_str;

    fn span_line(path: &str, dur: u64) -> String {
        format!("{{\"kind\":\"span\",\"name\":\"{path}\",\"t_ns\":1,\"dur_ns\":{dur}}}")
    }

    #[test]
    fn inclusive_and_exclusive_times_reconstruct_the_tree() {
        let stream = [
            span_line("fit/adapt", 30),
            span_line("fit/adapt", 20),
            span_line("fit/augment", 10),
            span_line("fit", 100),
        ]
        .join("\n");
        let report = Report::from_events(&read_str(&stream).unwrap());
        let fit = &report.spans["fit"];
        assert_eq!(fit.inclusive_ns, 100);
        assert_eq!(fit.exclusive_ns, 100 - 30 - 20 - 10);
        let adapt = &report.spans["fit/adapt"];
        assert_eq!(adapt.count, 2);
        assert_eq!(adapt.inclusive_ns, 50);
        assert_eq!(adapt.exclusive_ns, 50, "leaf spans own all their time");
        let flame = report.render_flamegraph();
        assert!(flame.contains("span tree"));
        assert!(flame.contains("  adapt"), "child indented under parent: {flame}");
        assert!(flame.contains("hot paths by self time"));
    }

    #[test]
    fn exclusive_saturates_when_children_overshoot() {
        // Clock skew between parent/child measurements must not underflow.
        let stream = [span_line("p/c", 120), span_line("p", 100)].join("\n");
        let report = Report::from_events(&read_str(&stream).unwrap());
        assert_eq!(report.spans["p"].exclusive_ns, 0);
    }

    #[test]
    fn metric_records_feed_the_metrics_table() {
        let stream = "{\"kind\":\"metric\",\"name\":\"tensor.matmul.flops\",\"t_ns\":9,\
                      \"metric_kind\":\"counter\",\"value\":123}\n\
                      {\"kind\":\"metric\",\"name\":\"lat\",\"t_ns\":9,\
                      \"metric_kind\":\"histogram\",\"count\":4,\"mean\":2.5,\"p50\":2,\
                      \"p90\":4,\"p99\":4,\"min\":1,\"max\":4}";
        let report = Report::from_events(&read_str(stream).unwrap());
        assert_eq!(report.metrics["tensor.matmul.flops"].value, 123.0);
        assert_eq!(report.metrics["lat"].value, 2.0, "histograms summarize as p50");
        let table = report.render_metrics();
        assert!(table.contains("tensor.matmul.flops = 123"));
        assert!(table.contains("lat: n=4"));
    }

    #[test]
    fn machine_summary_is_parseable_json() {
        let stream = [span_line("a", 10), span_line("a/b", 4)].join("\n");
        let report = Report::from_events(&read_str(&stream).unwrap());
        let summary = crate::stream::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            summary.get("schema").and_then(JsonValue::as_str),
            Some("metadpa-obs-report/v1")
        );
        let spans = summary.get("spans").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("path").and_then(JsonValue::as_str), Some("a"));
        assert_eq!(spans[0].get("exclusive_ns").and_then(JsonValue::as_u64), Some(6));
    }

    #[test]
    fn bench_report_round_trips_through_json() {
        let report = BenchReport {
            git_rev: "abc123".into(),
            scenario: "microbench.blocks".into(),
            host: HostInfo { arch: "x86_64".into(), os: "linux".into(), cpus: 8 },
            requests: 27_000,
            run_id: "run-0000000000000007-00000000deadbeef-1".into(),
            blocks: vec![BenchBlock {
                name: "block1/100".into(),
                iters: 10,
                p50_ns: 1000,
                p90_ns: 1200,
                mean_ns: 1050.5,
                flops: 64000,
                alloc_count: 12,
                alloc_bytes: 4096,
                server_p99_ns: 1500,
            }],
        };
        let parsed = BenchReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report);
        assert!(report.to_json().contains("metadpa-bench/v3"));
    }

    #[test]
    fn bench_v2_documents_still_decode_with_a_defaulted_run_id() {
        // A literal v2 document: `requests` and `server_p99_ns` present,
        // no `run_id` yet.
        let v2 = "{\n  \"schema\":\"metadpa-bench/v2\",\n  \"git_rev\":\"cafe02\",\n  \
                  \"scenario\":\"serve.loadgen\",\n  \"requests\":500,\n  \
                  \"host\":{\"arch\":\"x86_64\",\"os\":\"linux\",\"cpus\":4},\n  \
                  \"blocks\":[\n    {\"name\":\"serve.recommend.warm\",\"iters\":100,\
                  \"p50_ns\":5000,\"p90_ns\":9000,\"mean_ns\":6000.0,\"flops\":0,\
                  \"alloc_count\":0,\"alloc_bytes\":0,\"server_p99_ns\":7000}\n  ]}\n";
        let parsed = BenchReport::from_json(v2).expect("v2 stays decodable");
        assert_eq!(parsed.requests, 500);
        assert_eq!(parsed.run_id, "", "v2 has no run_id field");
        assert_eq!(parsed.blocks[0].server_p99_ns, 7000);
    }

    #[test]
    fn bench_v1_documents_still_decode_with_defaulted_v2_fields() {
        // A literal pre-v2 document: no `requests`, no `server_p99_ns`.
        let v1 = "{\n  \"schema\":\"metadpa-bench/v1\",\n  \"git_rev\":\"cafe01\",\n  \
                  \"scenario\":\"serve.loadgen\",\n  \
                  \"host\":{\"arch\":\"x86_64\",\"os\":\"linux\",\"cpus\":4},\n  \
                  \"blocks\":[\n    {\"name\":\"serve.recommend.warm\",\"iters\":100,\
                  \"p50_ns\":5000,\"p90_ns\":9000,\"mean_ns\":6000.0,\"flops\":0,\
                  \"alloc_count\":0,\"alloc_bytes\":0}\n  ]}\n";
        let parsed = BenchReport::from_json(v1).expect("v1 stays decodable");
        assert_eq!(parsed.scenario, "serve.loadgen");
        assert_eq!(parsed.requests, 0, "v1 has no requests field");
        assert_eq!(parsed.blocks.len(), 1);
        assert_eq!(parsed.blocks[0].p50_ns, 5000);
        assert_eq!(parsed.blocks[0].server_p99_ns, 0, "v1 blocks default the server p99");
    }

    #[test]
    fn bench_report_rejects_wrong_schema() {
        assert!(BenchReport::from_json("{\"schema\":\"other/v9\"}").is_err());
    }
}

//! Rolling-window metrics: a sliding-window histogram and a quantile-drift
//! tracker, both built on a fixed ring of time slots.
//!
//! The cumulative [`crate::metrics::Histogram`] answers "what happened
//! since the process started"; serving wants "what happened in the last
//! minute". [`WindowHistogram`] keeps a fixed ring of time buckets (default
//! 12 slots x 5 s = a 60 s window): an observation lands in the slot for
//! its timestamp's epoch, and a slot is lazily cleared the first time a new
//! epoch touches it, so expiry costs nothing on the read path. Reads merge
//! every slot whose epoch still falls inside the window.
//!
//! Each slot sits behind its own mutex. That keeps slot reset atomic with
//! the observation that triggers it (a CAS design can interleave a reset
//! with a concurrent add and lose counts) and the hot serving path already
//! serializes on the engine's recommender lock, so the per-observation lock
//! is never contended in practice. Everything is deterministic given the
//! observation timestamps: the explicit `*_at` entry points take the
//! timestamp as an argument (tests pass fixed clocks; production uses
//! [`crate::now_ns`]), and nothing here touches the model's RNG or floats,
//! preserving the bit-identical-when-obs-off contract.
//!
//! [`QuantileDrift`] is the live half of the drift-fingerprint check: the
//! exported artifact carries the training-time score quantiles (the
//! fingerprint), and the tracker bins serve-time scores against those
//! frozen thresholds per window. The drift statistic is the
//! Kolmogorov–Smirnov-style sup-distance between the windowed empirical
//! CDF evaluated at the fingerprint's quantile points and the fingerprint's
//! own probabilities — 0 when serving reproduces the training distribution,
//! approaching 1 when it has drifted entirely past the training range.

use std::sync::Mutex;

use crate::metrics::{bucket_index, bucket_midpoint, N_BUCKETS};

/// Default number of ring slots.
pub const DEFAULT_SLOTS: usize = 12;

/// Default slot width: 5 seconds (so the default window is one minute).
pub const DEFAULT_SLOT_WIDTH_NS: u64 = 5_000_000_000;

/// Epoch value marking a slot that has never been written.
const EMPTY_EPOCH: u64 = u64::MAX;

struct HistSlot {
    /// Which window epoch (`t_ns / slot_width_ns`) this slot holds data
    /// for; [`EMPTY_EPOCH`] when untouched.
    epoch: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u32>,
}

impl HistSlot {
    fn new() -> Self {
        Self { epoch: EMPTY_EPOCH, count: 0, sum: 0, min: u64::MAX, max: 0, buckets: Vec::new() }
    }

    fn clear_for(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.buckets.iter_mut().for_each(|b| *b = 0);
    }
}

/// Point-in-time digest of one [`WindowHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowSnapshot {
    /// Window length in seconds.
    pub window_s: f64,
    /// Observations inside the window.
    pub count: u64,
    /// Arithmetic mean over the window (0.0 when empty).
    pub mean: f64,
    /// Windowed median (bucket-midpoint accuracy, clamped to min/max).
    pub p50: u64,
    /// Windowed 90th percentile.
    pub p90: u64,
    /// Windowed 99th percentile.
    pub p99: u64,
    /// Smallest observation in the window (0 when empty).
    pub min: u64,
    /// Largest observation in the window.
    pub max: u64,
}

/// Sliding-window histogram over `u64` observations: a fixed ring of time
/// slots, each a fixed-bucket histogram sharing the cumulative histogram's
/// bucket layout (≤ 12.5% relative quantile error).
pub struct WindowHistogram {
    slot_width_ns: u64,
    slots: Vec<Mutex<HistSlot>>,
}

impl Default for WindowHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_SLOTS, DEFAULT_SLOT_WIDTH_NS)
    }
}

impl WindowHistogram {
    /// A ring of `n_slots` slots of `slot_width_ns` each; the window spans
    /// `n_slots * slot_width_ns`.
    pub fn new(n_slots: usize, slot_width_ns: u64) -> Self {
        let n_slots = n_slots.max(1);
        Self {
            slot_width_ns: slot_width_ns.max(1),
            slots: (0..n_slots).map(|_| Mutex::new(HistSlot::new())).collect(),
        }
    }

    /// Window length in seconds.
    pub fn window_s(&self) -> f64 {
        (self.slots.len() as u64 * self.slot_width_ns) as f64 / 1e9
    }

    fn lock_slot(&self, idx: usize) -> std::sync::MutexGuard<'_, HistSlot> {
        match self.slots[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records `v` at explicit timestamp `t_ns` (nanoseconds since the obs
    /// epoch). The slot the timestamp maps to is cleared first if it still
    /// holds an older epoch's data.
    pub fn observe_at(&self, t_ns: u64, v: u64) {
        let epoch = t_ns / self.slot_width_ns;
        let idx = (epoch % self.slots.len() as u64) as usize;
        let mut slot = self.lock_slot(idx);
        if slot.epoch != epoch {
            slot.clear_for(epoch);
        }
        if slot.buckets.is_empty() {
            slot.buckets = vec![0u32; N_BUCKETS];
        }
        slot.buckets[bucket_index(v)] = slot.buckets[bucket_index(v)].saturating_add(1);
        slot.count += 1;
        slot.sum = slot.sum.saturating_add(v);
        slot.min = slot.min.min(v);
        slot.max = slot.max.max(v);
    }

    /// Records `v` now.
    pub fn observe(&self, v: u64) {
        self.observe_at(crate::now_ns(), v);
    }

    /// Digest of every observation whose slot is still inside the window
    /// ending at `t_ns`.
    pub fn snapshot_at(&self, t_ns: u64) -> WindowSnapshot {
        let now_epoch = t_ns / self.slot_width_ns;
        let n = self.slots.len() as u64;
        let oldest = now_epoch.saturating_sub(n - 1);
        let mut merged = vec![0u64; N_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for idx in 0..self.slots.len() {
            let slot = self.lock_slot(idx);
            if slot.epoch == EMPTY_EPOCH || slot.epoch < oldest || slot.epoch > now_epoch {
                continue;
            }
            count += slot.count;
            sum = sum.saturating_add(slot.sum);
            min = min.min(slot.min);
            max = max.max(slot.max);
            for (m, b) in merged.iter_mut().zip(&slot.buckets) {
                *m += *b as u64;
            }
        }
        if count == 0 {
            return WindowSnapshot { window_s: self.window_s(), ..WindowSnapshot::default() };
        }
        let quantile = |q: f64| -> u64 {
            let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (idx, b) in merged.iter().enumerate() {
                seen += b;
                if seen >= target {
                    return bucket_midpoint(idx).clamp(min, max);
                }
            }
            max
        };
        WindowSnapshot {
            window_s: self.window_s(),
            count,
            mean: sum as f64 / count as f64,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            min,
            max,
        }
    }

    /// Digest of the window ending now.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(crate::now_ns())
    }

    /// Clears every slot (the in-place zero [`crate::metrics::reset`]
    /// performs on cached handles).
    pub fn reset(&self) {
        for idx in 0..self.slots.len() {
            let mut slot = self.lock_slot(idx);
            slot.epoch = EMPTY_EPOCH;
        }
    }
}

struct DriftSlot {
    epoch: u64,
    /// `counts[i]` = observations in `(threshold[i-1], threshold[i]]`;
    /// the final bin holds everything above the last threshold.
    counts: Vec<u64>,
}

/// Windowed quantile-drift tracker: bins live observations against the
/// frozen quantile thresholds of a training-time fingerprint and reports
/// the sup-distance between the windowed empirical CDF and the
/// fingerprint's probabilities at those thresholds.
pub struct QuantileDrift {
    /// Cumulative probabilities of the fingerprint (e.g. 0.01 .. 0.99).
    probs: Vec<f64>,
    /// The fingerprint's quantile values at those probabilities, ascending.
    thresholds: Vec<f64>,
    slot_width_ns: u64,
    slots: Vec<Mutex<DriftSlot>>,
}

impl QuantileDrift {
    /// A tracker over `probs`/`thresholds` (parallel, `probs` in (0, 1),
    /// `thresholds` ascending) with the given ring shape. Returns `None`
    /// for an empty or mismatched fingerprint.
    pub fn new(
        probs: &[f64],
        thresholds: &[f64],
        n_slots: usize,
        slot_width_ns: u64,
    ) -> Option<Self> {
        if probs.is_empty() || probs.len() != thresholds.len() {
            return None;
        }
        if thresholds.iter().any(|t| !t.is_finite()) {
            return None;
        }
        let n_slots = n_slots.max(1);
        let bins = thresholds.len() + 1;
        Some(Self {
            probs: probs.to_vec(),
            thresholds: thresholds.to_vec(),
            slot_width_ns: slot_width_ns.max(1),
            slots: (0..n_slots)
                .map(|_| Mutex::new(DriftSlot { epoch: EMPTY_EPOCH, counts: vec![0; bins] }))
                .collect(),
        })
    }

    /// Tracker with the default ring shape (60 s window).
    pub fn with_defaults(probs: &[f64], thresholds: &[f64]) -> Option<Self> {
        Self::new(probs, thresholds, DEFAULT_SLOTS, DEFAULT_SLOT_WIDTH_NS)
    }

    fn lock_slot(&self, idx: usize) -> std::sync::MutexGuard<'_, DriftSlot> {
        match self.slots[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records one live score at explicit timestamp `t_ns`. Non-finite
    /// scores are ignored (the serving path rejects them before ranking
    /// anyway).
    pub fn observe_at(&self, t_ns: u64, score: f64) {
        if !score.is_finite() {
            return;
        }
        let epoch = t_ns / self.slot_width_ns;
        let idx = (epoch % self.slots.len() as u64) as usize;
        let bin = self.thresholds.partition_point(|&th| score > th);
        let mut slot = self.lock_slot(idx);
        if slot.epoch != epoch {
            slot.epoch = epoch;
            slot.counts.iter_mut().for_each(|c| *c = 0);
        }
        slot.counts[bin] += 1;
    }

    /// Records one live score now.
    pub fn observe(&self, score: f64) {
        self.observe_at(crate::now_ns(), score);
    }

    /// `(drift statistic, windowed observation count)` for the window
    /// ending at `t_ns`; `None` when the window is empty. The statistic is
    /// `max_i |ecdf(threshold_i) - prob_i|` over the fingerprint's quantile
    /// points — in `[0, 1]`, 0 meaning the windowed scores sit exactly on
    /// the training distribution.
    pub fn stat_at(&self, t_ns: u64) -> Option<(f64, u64)> {
        let now_epoch = t_ns / self.slot_width_ns;
        let n = self.slots.len() as u64;
        let oldest = now_epoch.saturating_sub(n - 1);
        let mut merged = vec![0u64; self.thresholds.len() + 1];
        for idx in 0..self.slots.len() {
            let slot = self.lock_slot(idx);
            if slot.epoch == EMPTY_EPOCH || slot.epoch < oldest || slot.epoch > now_epoch {
                continue;
            }
            for (m, c) in merged.iter_mut().zip(&slot.counts) {
                *m += *c;
            }
        }
        let total: u64 = merged.iter().sum();
        if total == 0 {
            return None;
        }
        let mut cum = 0u64;
        let mut stat = 0.0f64;
        for (i, prob) in self.probs.iter().enumerate() {
            cum += merged[i];
            let ecdf = cum as f64 / total as f64;
            stat = stat.max((ecdf - prob).abs());
        }
        Some((stat, total))
    }

    /// Drift over the window ending now.
    pub fn stat(&self) -> Option<(f64, u64)> {
        self.stat_at(crate::now_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000; // 1 µs slots for fast, deterministic tests

    #[test]
    fn observations_expire_once_the_window_has_passed() {
        let h = WindowHistogram::new(4, W);
        h.observe_at(0, 10);
        h.observe_at(W, 20);
        let snap = h.snapshot_at(W);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 10);
        assert_eq!(snap.max, 20);

        // Four slots: at t = 4W the epoch-0 slot has fallen out.
        let snap = h.snapshot_at(4 * W);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min, 20);

        // And at t = 5W everything has expired.
        let snap = h.snapshot_at(5 * W);
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p99, 0);
    }

    #[test]
    fn slot_reuse_clears_stale_data() {
        let h = WindowHistogram::new(2, W);
        h.observe_at(0, 100);
        // Epoch 2 maps onto epoch 0's slot and must wipe it first.
        h.observe_at(2 * W, 7);
        let snap = h.snapshot_at(2 * W);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max, 7, "stale slot data must not leak into the new epoch");
    }

    #[test]
    fn a_scrape_after_a_long_idle_reports_only_fresh_data() {
        // Fill every slot in the ring, go idle for longer than the whole
        // window, then resume. The resumed epochs wrap onto the same slot
        // indices as the stale data; the first write must lazily clear its
        // slot and the first scrape must see only post-idle observations.
        let h = WindowHistogram::new(4, W);
        for epoch in 0..4u64 {
            h.observe_at(epoch * W, 1_000);
        }
        assert_eq!(h.snapshot_at(3 * W).count, 4, "ring fully populated before the idle");

        // > one full window of silence (e.g. >60 s on the default shape).
        let resume = 100 * W;

        // A read-only scrape during the idle: every slot still physically
        // holds stale data, but none of it is in-window any more.
        let idle = h.snapshot_at(resume);
        assert_eq!(idle.count, 0, "stale epochs must not leak into a post-idle scrape");
        assert_eq!(idle.p99, 0);

        // First post-idle write lands on a slot holding epoch-0 data and
        // must wipe it rather than merge with it.
        h.observe_at(resume, 7);
        let snap = h.snapshot_at(resume);
        assert_eq!(snap.count, 1, "only the fresh observation is visible");
        assert_eq!(snap.max, 7, "stale pre-idle values must not survive the wraparound");
        assert_eq!(snap.min, 7);
    }

    #[test]
    fn windowed_quantiles_match_the_bucket_error_band() {
        let h = WindowHistogram::new(8, W);
        for v in 1..=1000u64 {
            h.observe_at(v % (8 * W), v);
        }
        let snap = h.snapshot_at(8 * W - 1);
        assert_eq!(snap.count, 1000);
        assert!((snap.mean - 500.5).abs() < 1e-9);
        assert!((snap.p50 as f64 - 500.0).abs() / 500.0 <= 0.15, "p50 = {}", snap.p50);
        assert!((snap.p90 as f64 - 900.0).abs() / 900.0 <= 0.15, "p90 = {}", snap.p90);
        assert!((snap.p99 as f64 - 990.0).abs() / 990.0 <= 0.15, "p99 = {}", snap.p99);
    }

    #[test]
    fn single_observation_collapses_quantiles_to_it() {
        let h = WindowHistogram::new(4, W);
        h.observe_at(10, 1_000_000);
        let snap = h.snapshot_at(10);
        assert_eq!(snap.p50, 1_000_000);
        assert_eq!(snap.p99, 1_000_000);
    }

    #[test]
    fn drift_is_zero_on_the_training_distribution_and_large_off_it() {
        // Fingerprint of Uniform(0, 1): quantile q at value q.
        let probs = [0.1, 0.25, 0.5, 0.75, 0.9];
        let d = QuantileDrift::new(&probs, &probs, 4, W).unwrap();
        assert_eq!(d.stat_at(0), None, "empty window has no statistic");

        // Scores drawn exactly on the fingerprint's quantile grid.
        for i in 0..1000 {
            d.observe_at(0, (i as f64 + 0.5) / 1000.0);
        }
        let (stat, n) = d.stat_at(0).unwrap();
        assert_eq!(n, 1000);
        assert!(stat < 0.01, "on-distribution drift should be ~0, got {stat}");

        // A fresh window where every score sits above the last threshold.
        for _ in 0..100 {
            d.observe_at(4 * W, 5.0);
        }
        let (stat, n) = d.stat_at(4 * W).unwrap();
        assert_eq!(n, 100, "the on-distribution scores expired with their window");
        assert!(stat > 0.85, "fully shifted scores must max out the statistic, got {stat}");
    }

    #[test]
    fn drift_rejects_degenerate_fingerprints() {
        assert!(QuantileDrift::new(&[], &[], 4, W).is_none());
        assert!(QuantileDrift::new(&[0.5], &[0.1, 0.2], 4, W).is_none());
        assert!(QuantileDrift::new(&[0.5], &[f64::NAN], 4, W).is_none());
        // Non-finite observations are dropped, not binned.
        let d = QuantileDrift::new(&[0.5], &[0.0], 1, W).unwrap();
        d.observe_at(0, f64::NAN);
        assert_eq!(d.stat_at(0), None);
    }

    #[test]
    fn reset_empties_every_slot() {
        let h = WindowHistogram::new(4, W);
        h.observe_at(0, 5);
        h.reset();
        assert_eq!(h.snapshot_at(0).count, 0);
    }
}

//! Process-global metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles are `Arc`s into a name-keyed registry; hot paths cache them in
//! per-callsite `OnceLock`s (see [`crate::counter_add!`]), so a metric
//! update is an atomic op — no lock, no lookup. [`reset`] zeroes values *in
//! place* rather than dropping entries, keeping every cached handle wired
//! to live storage.
//!
//! Histograms use a log2 major / 8-linear-sub-bucket layout (≤ 12.5%
//! relative quantile error over the full `u64` range) with exact storage
//! for values below 16 — plenty for the nanosecond timings and loss-scaled
//! integers recorded here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotone event count.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Values 0..16 land in exact buckets; above that, one major bucket per
/// power of two, split into 8 linear sub-buckets.
const EXACT: u64 = 16;
pub(crate) const N_BUCKETS: usize = 16 + (64 - 4) * 8; // 496

pub(crate) fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let major = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (major - 3)) & 0x7) as usize;
        16 + (major - 4) * 8 + sub
    }
}

/// Midpoint of the bucket's value range — the representative a quantile
/// query reports.
pub(crate) fn bucket_midpoint(idx: usize) -> u64 {
    if idx < EXACT as usize {
        idx as u64
    } else {
        let major = 4 + (idx - 16) / 8;
        let sub = ((idx - 16) % 8) as u64;
        let width = 1u64 << (major - 3);
        let lo = (1u64 << major) + sub * width;
        lo + width / 2
    }
}

/// Fixed-bucket histogram over `u64` observations.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean (exact, from sum/count; 0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), accurate to the bucket width
    /// (≤ 12.5% relative error) and clamped to the observed min/max. An
    /// empty histogram has no quantiles: `None`, never a bucket midpoint.
    /// With a single distinct observation the min/max clamp collapses every
    /// quantile to that exact value (so p50 == p99 by construction).
    pub fn try_quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Some(bucket_midpoint(idx).clamp(self.min(), self.max()));
            }
        }
        Some(self.max())
    }

    /// [`Histogram::try_quantile`] with `0` standing in for "no data" —
    /// convenient for tables that render integers unconditionally.
    pub fn quantile(&self, q: f64) -> u64 {
        self.try_quantile(q).unwrap_or(0)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Window(Arc<crate::window::WindowHistogram>),
}

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    static REG: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    // Recover from poisoning: a panic elsewhere (e.g. a kind-mismatch
    // registration) must not take the whole registry down with it.
    match REG.get_or_init(|| Mutex::new(BTreeMap::new())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Gets or registers the named counter.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Gets or registers the named gauge.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = registry();
    match reg.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default()))) {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Gets or registers the named histogram.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
    {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Gets or registers the named sliding-window histogram (default 60 s
/// window: 12 slots of 5 s).
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn window(name: &str) -> Arc<crate::window::WindowHistogram> {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Window(Arc::new(crate::window::WindowHistogram::default())))
    {
        Metric::Window(w) => w.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Zeroes every registered metric **in place**. Entries are never removed:
/// per-callsite cached handles (the `OnceLock<Arc<...>>` cells inside the
/// macros) must stay connected to live storage.
pub fn reset() {
    let reg = registry();
    for metric in reg.values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
            Metric::Window(w) => w.reset(),
        }
    }
}

/// Point-in-time reading of one metric, for the run summary.
#[derive(Clone, Debug)]
pub enum MetricSnapshot {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram digest.
    Histogram {
        /// Observation count.
        count: u64,
        /// Arithmetic mean.
        mean: f64,
        /// Median.
        p50: u64,
        /// 90th percentile.
        p90: u64,
        /// 99th percentile.
        p99: u64,
        /// Smallest observation.
        min: u64,
        /// Largest observation.
        max: u64,
    },
    /// Sliding-window histogram digest (counts only what is still inside
    /// the window, unlike the cumulative [`MetricSnapshot::Histogram`]).
    Window {
        /// Window length in seconds.
        window_s: f64,
        /// Observations inside the window.
        count: u64,
        /// Windowed mean.
        mean: f64,
        /// Windowed median.
        p50: u64,
        /// Windowed 90th percentile.
        p90: u64,
        /// Windowed 99th percentile.
        p99: u64,
    },
}

/// Snapshot of every registered metric, sorted by name.
pub fn snapshot() -> Vec<(String, MetricSnapshot)> {
    let reg = registry();
    reg.iter()
        .map(|(name, metric)| {
            let snap = match metric {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    count: h.count(),
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                    min: h.min(),
                    max: h.max(),
                },
                Metric::Window(w) => {
                    let s = w.snapshot();
                    MetricSnapshot::Window {
                        window_s: s.window_s,
                        count: s.count,
                        mean: s.mean,
                        p50: s.p50,
                        p90: s.p90,
                        p99: s.p99,
                    }
                }
            };
            (name.clone(), snap)
        })
        .collect()
}

/// Renders every registered metric as exposition-style plain text, one
/// value per line (`name value`, histograms exploded into `_count`,
/// `_mean`, `_p50`, `_p90`, `_p99`, `_min`, `_max` suffixes). Metric names
/// have their dots replaced by underscores so the output is scrapeable by
/// Prometheus-style tooling; this is the body of `metadpa-serve`'s
/// `GET /metrics` endpoint.
pub fn render_text() -> String {
    let mut out = String::new();
    for (name, snap) in snapshot() {
        let flat = name.replace('.', "_");
        match snap {
            MetricSnapshot::Counter(v) => {
                out.push_str(&format!("{flat} {v}\n"));
            }
            MetricSnapshot::Gauge(v) => {
                out.push_str(&format!("{flat} {}\n", crate::json::number(v)));
            }
            MetricSnapshot::Histogram { count, mean, p50, p90, p99, min, max } => {
                out.push_str(&format!("{flat}_count {count}\n"));
                out.push_str(&format!("{flat}_mean {}\n", crate::json::number(mean)));
                out.push_str(&format!("{flat}_p50 {p50}\n"));
                out.push_str(&format!("{flat}_p90 {p90}\n"));
                out.push_str(&format!("{flat}_p99 {p99}\n"));
                out.push_str(&format!("{flat}_min {min}\n"));
                out.push_str(&format!("{flat}_max {max}\n"));
            }
            MetricSnapshot::Window { window_s, count, mean, p50, p90, p99 } => {
                out.push_str(&format!("{flat}_window_s {}\n", crate::json::number(window_s)));
                out.push_str(&format!("{flat}_count {count}\n"));
                out.push_str(&format!("{flat}_mean {}\n", crate::json::number(mean)));
                out.push_str(&format!("{flat}_p50 {p50}\n"));
                out.push_str(&format!("{flat}_p90 {p90}\n"));
                out.push_str(&format!("{flat}_p99 {p99}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets_in_place() {
        let c = counter("test.metrics.counter");
        c.add(2);
        c.add(3);
        assert_eq!(c.get(), 5);
        let same = counter("test.metrics.counter");
        assert_eq!(same.get(), 5, "same name returns the same storage");
        reset();
        assert_eq!(c.get(), 0, "old handle still wired after reset");
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = gauge("test.metrics.gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..63 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2, (v << 1).wrapping_sub(1).max(v)] {
                let idx = bucket_index(probe);
                assert!(idx < N_BUCKETS, "index {idx} out of range for {probe}");
                assert!(idx >= last, "bucket index not monotone at {probe}");
                last = idx;
                // The midpoint must stay within the same relative-error band.
                let mid = bucket_midpoint(idx);
                if probe >= EXACT {
                    let err = (mid as f64 - probe as f64).abs() / probe as f64;
                    assert!(err <= 0.125, "relative error {err} too big at {probe}");
                } else {
                    assert_eq!(mid, probe, "sub-16 values are exact");
                }
            }
        }
    }

    #[test]
    fn histogram_quantiles_on_uniform_ramp() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // 12.5% bucket error + ceil-rank discretization.
        let p50 = h.quantile(0.50) as f64;
        assert!((p50 - 500.0).abs() / 500.0 <= 0.15, "p50 = {p50}");
        let p90 = h.quantile(0.90) as f64;
        assert!((p90 - 900.0).abs() / 900.0 <= 0.15, "p90 = {p90}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 990.0).abs() / 990.0 <= 0.15, "p99 = {p99}");
        // Extremes clamp to the observed range.
        assert_eq!(h.quantile(0.0), 1);
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn histogram_single_value_is_exact_everywhere() {
        let h = Histogram::default();
        for _ in 0..10 {
            h.observe(7);
        }
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(0.99), 7);
        assert_eq!(h.mean(), 7.0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles_at_any_rank() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.try_quantile(q), None, "empty histogram must not invent a q={q}");
        }
        // The integer-table convenience form reports 0, not a midpoint.
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn single_observation_collapses_all_quantiles_to_it() {
        // 1_000_000 sits deep in a log2 major bucket whose raw midpoint is
        // far from the value — the min/max clamp must hide that entirely.
        let h = Histogram::default();
        h.observe(1_000_000);
        assert_eq!(h.try_quantile(0.5), Some(1_000_000));
        assert_eq!(h.quantile(0.5), h.quantile(0.99), "p50 == p99 with one observation");
        assert_eq!(h.quantile(0.0), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn snapshot_contains_all_kinds() {
        counter("test.snapshot.c").add(1);
        gauge("test.snapshot.g").set(2.0);
        histogram("test.snapshot.h").observe(3);
        let snap = snapshot();
        let find = |name: &str| snap.iter().find(|(n, _)| n == name).map(|(_, s)| s.clone());
        assert!(matches!(find("test.snapshot.c"), Some(MetricSnapshot::Counter(_))));
        assert!(matches!(find("test.snapshot.g"), Some(MetricSnapshot::Gauge(_))));
        assert!(matches!(find("test.snapshot.h"), Some(MetricSnapshot::Histogram { .. })));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("test.metrics.kind_clash");
        gauge("test.metrics.kind_clash");
    }

    #[test]
    fn window_registers_snapshots_and_renders() {
        let w = window("test.metrics.window");
        w.observe(42);
        let snap = snapshot();
        let found = snap.iter().find(|(n, _)| n == "test.metrics.window").map(|(_, s)| s.clone());
        match found {
            Some(MetricSnapshot::Window { window_s, count, .. }) => {
                assert_eq!(window_s, 60.0, "default window is one minute");
                assert_eq!(count, 1);
            }
            other => panic!("expected a window snapshot, got {other:?}"),
        }
        let text = render_text();
        assert!(text.contains("test_metrics_window_window_s 60.0"), "{text}");
        assert!(text.contains("test_metrics_window_count 1"), "{text}");
        assert!(text.contains("test_metrics_window_p99 42"), "{text}");
        for line in text.lines() {
            assert_eq!(line.split(' ').count(), 2, "one name one value per line: {line:?}");
        }
        reset();
        assert!(render_text().contains("test_metrics_window_count 0"), "reset clears the window");
    }

    #[test]
    fn render_text_flattens_names_and_explodes_histograms() {
        counter("test.render.requests").add(7);
        histogram("test.render.latency").observe(10);
        let text = render_text();
        assert!(text.contains("test_render_requests 7"), "{text}");
        assert!(text.contains("test_render_latency_count 1"), "{text}");
        assert!(text.contains("test_render_latency_p50 10"), "{text}");
        for line in text.lines() {
            assert_eq!(line.split(' ').count(), 2, "one name one value per line: {line:?}");
        }
    }
}

//! RAII wall-clock spans with thread-local parent/child nesting.
//!
//! A [`Span`] always measures real elapsed time — production code derives
//! durations (e.g. `BlockTimings`) from [`Span::finish`], so the clock must
//! run whether or not observability is enabled. Everything else — the name
//! allocation, the thread-local path stack, the emitted span event, the
//! global per-path aggregates — only happens when the global switch is on.
//!
//! Paths are built by joining the names of the spans live on the current
//! thread with `/`, e.g. `pipeline.fit/pipeline.adaptation`.
//!
//! ## Thread-local nesting contract
//!
//! The parent/child stack is **per thread**. A span opened on a spawned
//! worker thread does not see spans live on the spawning thread: it
//! becomes a root of its own path (`worker.task`, not
//! `pipeline.fit/worker.task`), and closing it can never pop or corrupt
//! another thread's stack. The per-path aggregates and the recorder are
//! process-global and safely shared, so spans from any number of threads
//! land in the same summary and stream.
//!
//! Pools that fan work out to short-lived workers can opt into cross-thread
//! nesting explicitly: the dispatching thread captures [`current_path`] and
//! each worker installs it with [`inherit_root`]. Spans opened while the
//! guard is live are prefixed with the inherited path, so
//! `pipeline.fit/tensor.matmul` appears under the same tree whether the row
//! block ran on the caller or on a pool worker — child spans are never
//! silently re-rooted (or dropped from the tree) just because they ran on a
//! worker. Plain `std::thread::spawn` without the guard keeps the old
//! behaviour: workers form their own roots. Every span event also carries a
//! `thread` field (the OS thread name, falling back to the `ThreadId`) so
//! streams can attribute work to threads even without inheritance.
//!
//! When allocation profiling is on ([`crate::alloc::enable_profiling`],
//! `--obs-alloc` in the experiment binaries), each span additionally
//! carries the number of allocations and allocated bytes that occurred
//! while it was live (process-wide counters, so concurrent threads'
//! allocations are attributed to every span open at the time).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::recorder::Event;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// Path prefix installed by [`inherit_root`]; prepended to every span
    /// path opened on this thread while the guard is live.
    static INHERITED: RefCell<Option<String>> = const { RefCell::new(None) };
    /// Request ID installed by [`enter_request`]; 0 = outside any request.
    static REQUEST: Cell<u64> = const { Cell::new(0) };
}

/// Process-global request-ID sequence; see [`next_request_id`].
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates the next request ID: a deterministic process-wide sequence
/// starting at 1 (0 is reserved for "no request"). IDs are unique within a
/// server process, which is exactly the scope of one trace log.
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// The request ID installed on this thread, or `None` outside a request
/// scope.
pub fn current_request() -> Option<u64> {
    REQUEST.with(|r| match r.get() {
        0 => None,
        v => Some(v),
    })
}

/// RAII guard for a request scope; see [`enter_request`].
#[must_use = "dropping the guard immediately would uninstall the request ID"]
pub struct RequestScope {
    prev: u64,
}

/// Installs `req` as this thread's request ID. Every span completing on
/// this thread while the guard is live carries a `req` field in its event,
/// tying the whole span tree — across pool workers, via the same
/// capture-and-install pattern as [`inherit_root`] — back to one HTTP
/// request. `None` is accepted and is a no-op, so dispatchers can pass
/// [`current_request`] through unconditionally.
pub fn enter_request(req: Option<u64>) -> RequestScope {
    let prev = REQUEST.with(|r| r.replace(req.unwrap_or(0)));
    RequestScope { prev }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        let prev = self.prev;
        REQUEST.with(|r| r.set(prev));
    }
}

/// The `/`-joined path of the innermost span live on this thread (including
/// any inherited root), or `None` when no span is live or observability is
/// disabled. Pool dispatchers capture this and hand it to workers via
/// [`inherit_root`] so worker spans nest under the dispatching span.
pub fn current_path() -> Option<String> {
    if !crate::enabled() {
        return None;
    }
    let inherited = INHERITED.with(|p| p.borrow().clone());
    STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            return inherited;
        }
        let mut path = inherited
            .map(|mut p| {
                p.push('/');
                p
            })
            .unwrap_or_default();
        for (i, part) in stack.iter().enumerate() {
            if i > 0 {
                path.push('/');
            }
            path.push_str(part);
        }
        Some(path)
    })
}

/// RAII guard for a cross-thread span-root inheritance; see [`inherit_root`].
#[must_use = "dropping the guard immediately would uninstall the inherited root"]
pub struct InheritedRoot {
    prev: Option<String>,
}

/// Installs `parent` (typically a [`current_path`] captured on the
/// dispatching thread) as the span-root prefix for this thread. While the
/// returned guard is live, spans opened here build paths under `parent`
/// instead of forming their own roots; dropping the guard restores the
/// previous prefix. `None` is accepted and is a no-op, so callers can pass
/// `current_path()` through unconditionally.
pub fn inherit_root(parent: Option<String>) -> InheritedRoot {
    let prev = INHERITED.with(|p| p.replace(parent));
    InheritedRoot { prev }
}

impl Drop for InheritedRoot {
    fn drop(&mut self) {
        let prev = self.prev.take();
        INHERITED.with(|p| *p.borrow_mut() = prev);
    }
}

/// This thread's name, falling back to its `ThreadId` for unnamed threads.
fn thread_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", t.id()),
    }
}

/// Aggregate timing statistics for one span path.
#[derive(Clone, Copy, Debug)]
pub struct SpanStat {
    /// How many spans completed at this path.
    pub count: u64,
    /// Summed duration across all completions.
    pub total_ns: u64,
    /// Fastest single completion.
    pub min_ns: u64,
    /// Slowest single completion.
    pub max_ns: u64,
    /// Allocations while spans at this path were live (0 unless
    /// allocation profiling is enabled).
    pub alloc_count: u64,
    /// Bytes allocated while spans at this path were live.
    pub alloc_bytes: u64,
}

impl SpanStat {
    const EMPTY: SpanStat = SpanStat {
        count: 0,
        total_ns: 0,
        min_ns: u64::MAX,
        max_ns: 0,
        alloc_count: 0,
        alloc_bytes: 0,
    };

    fn observe(&mut self, dur_ns: u64, alloc_count: u64, alloc_bytes: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
        self.alloc_count += alloc_count;
        self.alloc_bytes += alloc_bytes;
    }
}

fn aggregates() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static AGG: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Snapshot of the per-path aggregates, sorted by path. Paths sort so that
/// children (`a/b`) follow their parent (`a`), which is what the summary
/// tree renderer relies on.
pub fn aggregate_snapshot() -> Vec<(String, SpanStat)> {
    aggregates()
        .lock()
        .expect("span aggregate lock poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clears the per-path aggregates (tests; between bench repetitions).
pub fn reset_aggregates() {
    aggregates().lock().expect("span aggregate lock poisoned").clear();
}

/// An in-flight timed region. Create via [`crate::span!`] (preferred) or the
/// `enter*` constructors; the region ends when the guard drops or at an
/// explicit [`Span::finish`], which also hands back the measured duration.
#[must_use = "a span measures the region it is alive for; bind it with `let _sp = ...`"]
pub struct Span {
    start: Instant,
    /// Full `/`-joined path. `None` marks an inert span: the clock still
    /// runs, but nothing was pushed on the thread stack and nothing will be
    /// recorded.
    path: Option<String>,
    depth: usize,
    done: bool,
    /// Allocation counters at entry, when allocation profiling was on.
    alloc0: Option<crate::alloc::AllocSnapshot>,
}

impl Span {
    /// Enters a span with a static name. When observability is disabled
    /// this only reads the clock — no allocation, no stack push.
    pub fn enter_static(name: &'static str) -> Self {
        if crate::enabled() {
            Self::enter(name.to_string())
        } else {
            Self::inert()
        }
    }

    /// Enters a span with an owned name (the [`crate::span!`] macro only
    /// builds the name once observability is known to be enabled).
    pub fn enter(name: String) -> Self {
        let start = Instant::now();
        let inherited = INHERITED.with(|p| p.borrow().clone());
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let depth = stack.len();
            let mut path = String::with_capacity(
                inherited.as_ref().map(|p| p.len() + 1).unwrap_or(0)
                    + stack.iter().map(|s| s.len() + 1).sum::<usize>()
                    + name.len(),
            );
            if let Some(pre) = &inherited {
                path.push_str(pre);
                path.push('/');
            }
            for part in stack.iter() {
                path.push_str(part);
                path.push('/');
            }
            path.push_str(&name);
            stack.push(name);
            (path, depth)
        });
        let alloc0 =
            if crate::alloc::profiling_enabled() { Some(crate::alloc::snapshot()) } else { None };
        Self { start, path: Some(path), depth, done: false, alloc0 }
    }

    /// A span that measures time but records nothing (disabled path).
    pub fn inert() -> Self {
        Self { start: Instant::now(), path: None, depth: 0, done: false, alloc0: None }
    }

    /// Whether this span will record anything on completion.
    pub fn is_inert(&self) -> bool {
        self.path.is_none()
    }

    /// The full `/`-joined path, when recording.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }

    /// Ends the span now and returns the measured wall-clock duration.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.complete(dur);
        dur
    }

    fn complete(&mut self, dur: Duration) {
        if self.done {
            return;
        }
        self.done = true;
        let Some(path) = self.path.take() else {
            return;
        };
        // Keep the thread stack balanced even if observability was switched
        // off while this span was live.
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let dur_ns = dur.as_nanos() as u64;
        let (alloc_count, alloc_bytes) = match self.alloc0 {
            Some(at_entry) => {
                let now = crate::alloc::snapshot();
                (
                    now.alloc_count.saturating_sub(at_entry.alloc_count),
                    now.alloc_bytes.saturating_sub(at_entry.alloc_bytes),
                )
            }
            None => (0, 0),
        };
        aggregates()
            .lock()
            .expect("span aggregate lock poisoned")
            .entry(path.clone())
            .or_insert(SpanStat::EMPTY)
            .observe(dur_ns, alloc_count, alloc_bytes);
        if crate::enabled() {
            let mut ev = Event::new("span", path);
            ev.push("dur_ns", dur_ns);
            ev.push("depth", self.depth as u64);
            ev.push("thread", thread_label());
            if let Some(req) = current_request() {
                ev.push("req", req);
            }
            if self.alloc0.is_some() {
                ev.push("alloc_count", alloc_count);
                ev.push("alloc_bytes", alloc_bytes);
            }
            crate::emit(ev);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        self.complete(dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;
    use std::sync::Arc;

    #[test]
    fn inert_span_still_measures_time() {
        let sp = Span::inert();
        std::thread::sleep(Duration::from_millis(2));
        let dur = sp.finish();
        assert!(dur >= Duration::from_millis(2));
    }

    #[test]
    fn nesting_builds_slash_paths_and_depths() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink.clone());
        reset_aggregates();
        {
            let outer = Span::enter_static("outer");
            assert_eq!(outer.path(), Some("outer"));
            {
                let inner = Span::enter_static("inner");
                assert_eq!(inner.path(), Some("outer/inner"));
            }
            {
                let sibling = Span::enter_static("sibling");
                assert_eq!(sibling.path(), Some("outer/sibling"));
            }
        }
        crate::disable();

        let events = sink.events();
        // Children finish (and emit) before the parent.
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["outer/inner", "outer/sibling", "outer"]);
        let depth_of = |name: &str| {
            events
                .iter()
                .find(|e| e.name == name)
                .and_then(|e| e.fields.iter().find(|(k, _)| *k == "depth"))
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(format!("{:?}", depth_of("outer")), format!("{:?}", crate::Value::from(0u64)));
        assert_eq!(
            format!("{:?}", depth_of("outer/inner")),
            format!("{:?}", crate::Value::from(1u64))
        );
    }

    #[test]
    fn finish_returns_duration_and_updates_aggregates() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink);
        reset_aggregates();
        for _ in 0..3 {
            let sp = Span::enter_static("agg.target");
            let dur = sp.finish();
            assert!(dur <= Duration::from_secs(5));
        }
        crate::disable();

        let snap = aggregate_snapshot();
        let (_, stat) =
            snap.iter().find(|(path, _)| path == "agg.target").expect("aggregate recorded");
        assert_eq!(stat.count, 3);
        assert!(stat.min_ns <= stat.max_ns);
        assert!(stat.total_ns >= stat.max_ns);
    }

    #[test]
    fn spans_on_spawned_threads_form_their_own_root_paths() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink.clone());
        reset_aggregates();
        {
            let outer = Span::enter_static("main.outer");
            assert_eq!(outer.path(), Some("main.outer"));
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    std::thread::spawn(move || {
                        // The worker must NOT inherit `main.outer` as a
                        // parent: its stack is thread-local and empty.
                        let sp = Span::enter(format!("worker.{i}"));
                        assert_eq!(sp.path(), Some(format!("worker.{i}").as_str()));
                        let inner = Span::enter_static("inner");
                        assert_eq!(inner.path(), Some(format!("worker.{i}/inner").as_str()));
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
            // The main thread's stack is untouched by the workers.
            let sibling = Span::enter_static("main.sibling");
            assert_eq!(sibling.path(), Some("main.outer/main.sibling"));
        }
        crate::disable();

        let snap = aggregate_snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        for i in 0..4 {
            let root = format!("worker.{i}");
            assert!(paths.contains(&root.as_str()), "missing worker root: {paths:?}");
            let nested = format!("worker.{i}/inner");
            assert!(paths.contains(&nested.as_str()), "missing worker child: {paths:?}");
        }
        assert!(paths.contains(&"main.outer"), "main thread spans intact");
    }

    #[test]
    fn inherited_root_nests_worker_spans_under_the_dispatcher() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink.clone());
        reset_aggregates();
        {
            let _outer = Span::enter_static("dispatch.outer");
            let parent = current_path();
            assert_eq!(parent.as_deref(), Some("dispatch.outer"));
            let handle = std::thread::spawn(move || {
                let root = inherit_root(parent);
                let sp = Span::enter_static("pool.task");
                assert_eq!(sp.path(), Some("dispatch.outer/pool.task"));
                let inner = Span::enter_static("inner");
                assert_eq!(inner.path(), Some("dispatch.outer/pool.task/inner"));
                drop(inner);
                drop(sp);
                // Guard drop restores the thread to un-inherited roots.
                drop(root);
                let fresh = Span::enter_static("fresh");
                assert_eq!(fresh.path(), Some("fresh"));
            });
            handle.join().expect("worker panicked");
        }
        crate::disable();
        let snap = aggregate_snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"dispatch.outer/pool.task"), "{paths:?}");
        assert!(paths.contains(&"dispatch.outer/pool.task/inner"), "{paths:?}");
    }

    #[test]
    fn request_scope_tags_spans_here_and_on_inheriting_workers() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink.clone());
        reset_aggregates();
        let req = next_request_id();
        assert!(next_request_id() > req, "IDs are strictly increasing");
        {
            let _scope = enter_request(Some(req));
            assert_eq!(current_request(), Some(req));
            let _root = Span::enter_static("req.root");
            let captured = (current_path(), current_request());
            std::thread::spawn(move || {
                let _parent = inherit_root(captured.0);
                let _req = enter_request(captured.1);
                let _sp = Span::enter_static("req.worker");
            })
            .join()
            .expect("worker panicked");
        }
        assert_eq!(current_request(), None, "guard drop uninstalls the ID");
        {
            let _sp = Span::enter_static("req.outside");
        }
        crate::disable();

        let events = sink.events();
        let req_of = |name: &str| {
            events
                .iter()
                .find(|e| e.name.ends_with(name))
                .map(|e| e.fields.iter().any(|(k, _)| *k == "req"))
                .expect("span event present")
        };
        assert!(req_of("req.root"), "request-scoped span carries req");
        assert!(req_of("req.worker"), "inheriting worker span carries req");
        assert!(!req_of("req.outside"), "spans outside a request carry no req field");
    }

    #[test]
    fn current_path_reflects_the_live_stack() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink);
        reset_aggregates();
        assert_eq!(current_path(), None);
        {
            let _a = Span::enter_static("a");
            assert_eq!(current_path().as_deref(), Some("a"));
            let _b = Span::enter_static("b");
            assert_eq!(current_path().as_deref(), Some("a/b"));
        }
        assert_eq!(current_path(), None);
        crate::disable();
        assert_eq!(current_path(), None, "disabled observability reports no path");
    }

    #[test]
    fn span_events_carry_thread_attribution() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink.clone());
        reset_aggregates();
        {
            let _sp = Span::enter_static("thread.attr");
        }
        crate::disable();
        let ev = sink.events().into_iter().find(|e| e.name == "thread.attr").expect("span event");
        let thread = ev
            .fields
            .iter()
            .find(|(k, _)| *k == "thread")
            .map(|(_, v)| v.to_string())
            .expect("thread field present");
        assert!(!thread.is_empty());
    }

    #[test]
    fn spans_attribute_allocations_when_profiling() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink.clone());
        reset_aggregates();
        crate::alloc::reset_counters();
        crate::alloc::enable_profiling();
        {
            let _sp = Span::enter_static("alloc.attributed");
            // The counting allocator is not installed as the global
            // allocator in this test binary, so simulate the hook the
            // allocator would hit for a 1 KiB allocation.
            crate::alloc::test_record_alloc(1024);
        }
        crate::alloc::disable_profiling();
        crate::disable();

        let snap = aggregate_snapshot();
        let (_, stat) = snap.iter().find(|(p, _)| p == "alloc.attributed").unwrap();
        assert_eq!(stat.alloc_count, 1);
        assert_eq!(stat.alloc_bytes, 1024);
        let ev = sink
            .events()
            .into_iter()
            .find(|e| e.kind == "span" && e.name == "alloc.attributed")
            .expect("span event");
        let field = |k: &str| {
            ev.fields.iter().find(|(fk, _)| *fk == k).map(|(_, v)| format!("{v:?}")).unwrap()
        };
        assert_eq!(field("alloc_count"), format!("{:?}", crate::Value::from(1u64)));
        assert_eq!(field("alloc_bytes"), format!("{:?}", crate::Value::from(1024u64)));
    }

    #[test]
    fn spans_without_profiling_carry_no_alloc_fields() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink.clone());
        reset_aggregates();
        {
            let _sp = Span::enter_static("alloc.absent");
        }
        crate::disable();
        let ev = sink.events().into_iter().find(|e| e.name == "alloc.absent").unwrap();
        assert!(
            !ev.fields.iter().any(|(k, _)| *k == "alloc_count"),
            "span events must be unchanged when --obs-alloc is off"
        );
    }

    #[test]
    fn stack_stays_balanced_when_disabled_mid_span() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink);
        reset_aggregates();
        let sp = Span::enter_static("balanced");
        crate::disable();
        drop(sp); // must pop despite being disabled now
        STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }
}

//! RAII wall-clock spans with thread-local parent/child nesting.
//!
//! A [`Span`] always measures real elapsed time — production code derives
//! durations (e.g. `BlockTimings`) from [`Span::finish`], so the clock must
//! run whether or not observability is enabled. Everything else — the name
//! allocation, the thread-local path stack, the emitted span event, the
//! global per-path aggregates — only happens when the global switch is on.
//!
//! Paths are built by joining the names of the spans live on the current
//! thread with `/`, e.g. `pipeline.fit/pipeline.adaptation`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::recorder::Event;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate timing statistics for one span path.
#[derive(Clone, Copy, Debug)]
pub struct SpanStat {
    /// How many spans completed at this path.
    pub count: u64,
    /// Summed duration across all completions.
    pub total_ns: u64,
    /// Fastest single completion.
    pub min_ns: u64,
    /// Slowest single completion.
    pub max_ns: u64,
}

impl SpanStat {
    fn observe(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
    }
}

fn aggregates() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static AGG: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Snapshot of the per-path aggregates, sorted by path. Paths sort so that
/// children (`a/b`) follow their parent (`a`), which is what the summary
/// tree renderer relies on.
pub fn aggregate_snapshot() -> Vec<(String, SpanStat)> {
    aggregates()
        .lock()
        .expect("span aggregate lock poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clears the per-path aggregates (tests; between bench repetitions).
pub fn reset_aggregates() {
    aggregates().lock().expect("span aggregate lock poisoned").clear();
}

/// An in-flight timed region. Create via [`crate::span!`] (preferred) or the
/// `enter*` constructors; the region ends when the guard drops or at an
/// explicit [`Span::finish`], which also hands back the measured duration.
#[must_use = "a span measures the region it is alive for; bind it with `let _sp = ...`"]
pub struct Span {
    start: Instant,
    /// Full `/`-joined path. `None` marks an inert span: the clock still
    /// runs, but nothing was pushed on the thread stack and nothing will be
    /// recorded.
    path: Option<String>,
    depth: usize,
    done: bool,
}

impl Span {
    /// Enters a span with a static name. When observability is disabled
    /// this only reads the clock — no allocation, no stack push.
    pub fn enter_static(name: &'static str) -> Self {
        if crate::enabled() {
            Self::enter(name.to_string())
        } else {
            Self::inert()
        }
    }

    /// Enters a span with an owned name (the [`crate::span!`] macro only
    /// builds the name once observability is known to be enabled).
    pub fn enter(name: String) -> Self {
        let start = Instant::now();
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let depth = stack.len();
            let mut path = String::with_capacity(
                stack.iter().map(|s| s.len() + 1).sum::<usize>() + name.len(),
            );
            for part in stack.iter() {
                path.push_str(part);
                path.push('/');
            }
            path.push_str(&name);
            stack.push(name);
            (path, depth)
        });
        Self { start, path: Some(path), depth, done: false }
    }

    /// A span that measures time but records nothing (disabled path).
    pub fn inert() -> Self {
        Self { start: Instant::now(), path: None, depth: 0, done: false }
    }

    /// Whether this span will record anything on completion.
    pub fn is_inert(&self) -> bool {
        self.path.is_none()
    }

    /// The full `/`-joined path, when recording.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }

    /// Ends the span now and returns the measured wall-clock duration.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.complete(dur);
        dur
    }

    fn complete(&mut self, dur: Duration) {
        if self.done {
            return;
        }
        self.done = true;
        let Some(path) = self.path.take() else {
            return;
        };
        // Keep the thread stack balanced even if observability was switched
        // off while this span was live.
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let dur_ns = dur.as_nanos() as u64;
        aggregates()
            .lock()
            .expect("span aggregate lock poisoned")
            .entry(path.clone())
            .or_insert(SpanStat { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 })
            .observe(dur_ns);
        if crate::enabled() {
            let mut ev = Event::new("span", path);
            ev.push("dur_ns", dur_ns);
            ev.push("depth", self.depth as u64);
            crate::emit(ev);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        self.complete(dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;
    use std::sync::Arc;

    #[test]
    fn inert_span_still_measures_time() {
        let sp = Span::inert();
        std::thread::sleep(Duration::from_millis(2));
        let dur = sp.finish();
        assert!(dur >= Duration::from_millis(2));
    }

    #[test]
    fn nesting_builds_slash_paths_and_depths() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink.clone());
        reset_aggregates();
        {
            let outer = Span::enter_static("outer");
            assert_eq!(outer.path(), Some("outer"));
            {
                let inner = Span::enter_static("inner");
                assert_eq!(inner.path(), Some("outer/inner"));
            }
            {
                let sibling = Span::enter_static("sibling");
                assert_eq!(sibling.path(), Some("outer/sibling"));
            }
        }
        crate::disable();

        let events = sink.events();
        // Children finish (and emit) before the parent.
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["outer/inner", "outer/sibling", "outer"]);
        let depth_of = |name: &str| {
            events
                .iter()
                .find(|e| e.name == name)
                .and_then(|e| e.fields.iter().find(|(k, _)| *k == "depth"))
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(format!("{:?}", depth_of("outer")), format!("{:?}", crate::Value::from(0u64)));
        assert_eq!(
            format!("{:?}", depth_of("outer/inner")),
            format!("{:?}", crate::Value::from(1u64))
        );
    }

    #[test]
    fn finish_returns_duration_and_updates_aggregates() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink);
        reset_aggregates();
        for _ in 0..3 {
            let sp = Span::enter_static("agg.target");
            let dur = sp.finish();
            assert!(dur <= Duration::from_secs(5));
        }
        crate::disable();

        let snap = aggregate_snapshot();
        let (_, stat) =
            snap.iter().find(|(path, _)| path == "agg.target").expect("aggregate recorded");
        assert_eq!(stat.count, 3);
        assert!(stat.min_ns <= stat.max_ns);
        assert!(stat.total_ns >= stat.max_ns);
    }

    #[test]
    fn stack_stays_balanced_when_disabled_mid_span() {
        let _g = crate::test_lock();
        let sink = Arc::new(MemoryRecorder::default());
        crate::enable(sink);
        reset_aggregates();
        let sp = Span::enter_static("balanced");
        crate::disable();
        drop(sp); // must pop despite being disabled now
        STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }
}

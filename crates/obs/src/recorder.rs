//! Structured events and pluggable sinks.
//!
//! Every piece of instrumentation funnels into an [`Event`] handed to the
//! installed [`Recorder`]. Three backends cover the repo's needs:
//!
//! * [`MemoryRecorder`] — in-process buffer, used by tests;
//! * [`FileRecorder`] — JSONL file sink (`--obs-out run.jsonl`);
//! * [`StderrRecorder`] — human-readable progress lines for live runs.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::ObjectWriter;

/// A dynamically-typed field value. Integers keep their signedness;
/// non-finite floats serialize as JSON `null`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counters, sizes, durations in ns).
    U64(u64),
    /// Floating point (losses, norms).
    F64(f64),
    /// Text.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One structured record: a kind (`span`, `event`, `manifest`, ...), a
/// name, a timestamp relative to the observability epoch, and ordered
/// key-value fields.
#[derive(Clone, Debug)]
pub struct Event {
    /// Record category: `"span"`, `"event"`, or `"manifest"`.
    pub kind: &'static str,
    /// Dotted event name or `/`-joined span path.
    pub name: String,
    /// Nanoseconds since the observability epoch at creation time.
    pub t_ns: u64,
    /// Ordered key-value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Creates an event stamped with the current time.
    pub fn new(kind: &'static str, name: impl Into<String>) -> Self {
        Self { kind, name: name.into(), t_ns: crate::now_ns(), fields: Vec::new() }
    }

    /// Appends a field.
    pub fn push(&mut self, key: &'static str, value: impl Into<Value>) {
        self.fields.push((key, value.into()));
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str_field("kind", self.kind);
        w.str_field("name", &self.name);
        w.u64_field("t_ns", self.t_ns);
        for (k, v) in &self.fields {
            match v {
                Value::I64(x) => w.i64_field(k, *x),
                Value::U64(x) => w.u64_field(k, *x),
                Value::F64(x) => w.f64_field(k, *x),
                Value::Str(x) => w.str_field(k, x),
                Value::Bool(x) => w.bool_field(k, *x),
            };
        }
        w.finish()
    }
}

/// An event sink. Implementations must tolerate concurrent `record` calls.
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: &Event);
    /// Flushes any buffered output. Default: nothing to flush.
    fn flush(&self) {}
}

/// Buffers events in memory; the test backend.
#[derive(Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// A copy of everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory recorder lock poisoned").clone()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.events.lock().expect("memory recorder lock poisoned").push(event.clone());
    }
}

/// Writes one JSON object per line to a file (JSONL).
pub struct FileRecorder {
    out: Mutex<BufWriter<File>>,
}

impl FileRecorder {
    /// Creates (truncating) the sink file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)) })
    }
}

impl Recorder for FileRecorder {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().expect("file recorder lock poisoned");
        // A failing sink must never take the experiment down with it.
        let _ = writeln!(out, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("file recorder lock poisoned").flush();
    }
}

/// Human-readable progress lines on stderr, replacing the ad-hoc
/// `eprintln!` calls the bench binaries used to carry.
#[derive(Default)]
pub struct StderrRecorder {
    /// Also echo span-completion records (noisy; off by default).
    pub spans: bool,
}

impl Recorder for StderrRecorder {
    fn record(&self, event: &Event) {
        // Spans are noisy (opt-in) and the end-of-run metric snapshot is
        // already rendered as a table by the session summary.
        if (event.kind == "span" && !self.spans) || event.kind == "metric" {
            return;
        }
        let mut line = String::with_capacity(64);
        line.push_str("[obs] ");
        line.push_str(event.kind);
        line.push(' ');
        line.push_str(&event.name);
        for (k, v) in &event.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        eprintln!("{line}");
    }
}

/// Swallows every event. Useful when a process only wants the live metric
/// registry and span aggregates (e.g. the microbench harness capturing
/// FLOP counters) without buffering or writing an event stream.
#[derive(Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}
}

/// Fans one event stream out to several recorders (e.g. stderr progress
/// *and* a JSONL file).
pub struct TeeRecorder {
    sinks: Vec<std::sync::Arc<dyn Recorder>>,
}

impl TeeRecorder {
    /// Combines `sinks`; events are delivered in the given order.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_to_one_json_object() {
        let mut ev = Event::new("event", "maml.epoch");
        ev.push("epoch", 3usize);
        ev.push("loss", 0.25f64);
        ev.push("tag", "q\"uote");
        ev.push("ok", true);
        ev.push("delta", -2i64);
        let line = ev.to_json_line();
        assert!(line.starts_with(r#"{"kind":"event","name":"maml.epoch","t_ns":"#));
        assert!(line.contains(r#""epoch":3"#));
        assert!(line.contains(r#""loss":0.25"#));
        assert!(line.contains(r#""tag":"q\"uote""#));
        assert!(line.contains(r#""ok":true"#));
        assert!(line.ends_with(r#""delta":-2}"#));
    }

    #[test]
    fn file_recorder_writes_jsonl() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metadpa_obs_test_{}.jsonl", std::process::id()));
        let rec = FileRecorder::create(&path).expect("create sink");
        let mut ev = Event::new("event", "file.test");
        ev.push("n", 1u64);
        rec.record(&ev);
        rec.record(&ev);
        rec.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains(r#""name":"file.test""#));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_delivers_to_all_sinks() {
        let a = std::sync::Arc::new(MemoryRecorder::default());
        let b = std::sync::Arc::new(MemoryRecorder::default());
        let tee = TeeRecorder::new(vec![a.clone(), b.clone()]);
        tee.record(&Event::new("event", "tee.test"));
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    fn value_conversions_preserve_type() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-3i32), Value::I64(-3));
        assert_eq!(Value::from(0.5f32), Value::F64(0.5));
        assert_eq!(Value::from("s"), Value::Str("s".to_string()));
    }
}

//! Structured events and pluggable sinks.
//!
//! Every piece of instrumentation funnels into an [`Event`] handed to the
//! installed [`Recorder`]. Three backends cover the repo's needs:
//!
//! * [`MemoryRecorder`] — in-process buffer, used by tests;
//! * [`FileRecorder`] — JSONL file sink (`--obs-out run.jsonl`);
//! * [`StderrRecorder`] — human-readable progress lines for live runs.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::ObjectWriter;

/// A dynamically-typed field value. Integers keep their signedness;
/// non-finite floats serialize as JSON `null`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counters, sizes, durations in ns).
    U64(u64),
    /// Floating point (losses, norms).
    F64(f64),
    /// Text.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One structured record: a kind (`span`, `event`, `manifest`, ...), a
/// name, a timestamp relative to the observability epoch, and ordered
/// key-value fields.
#[derive(Clone, Debug)]
pub struct Event {
    /// Record category: `"span"`, `"event"`, or `"manifest"`.
    pub kind: &'static str,
    /// Dotted event name or `/`-joined span path.
    pub name: String,
    /// Nanoseconds since the observability epoch at creation time.
    pub t_ns: u64,
    /// Ordered key-value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Creates an event stamped with the current time.
    pub fn new(kind: &'static str, name: impl Into<String>) -> Self {
        Self { kind, name: name.into(), t_ns: crate::now_ns(), fields: Vec::new() }
    }

    /// Appends a field.
    pub fn push(&mut self, key: &'static str, value: impl Into<Value>) {
        self.fields.push((key, value.into()));
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str_field("kind", self.kind);
        w.str_field("name", &self.name);
        w.u64_field("t_ns", self.t_ns);
        for (k, v) in &self.fields {
            match v {
                Value::I64(x) => w.i64_field(k, *x),
                Value::U64(x) => w.u64_field(k, *x),
                Value::F64(x) => w.f64_field(k, *x),
                Value::Str(x) => w.str_field(k, x),
                Value::Bool(x) => w.bool_field(k, *x),
            };
        }
        w.finish()
    }
}

/// An event sink. Implementations must tolerate concurrent `record` calls.
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: &Event);
    /// Flushes any buffered output. Default: nothing to flush.
    fn flush(&self) {}
}

/// Buffers events in memory; the test backend.
#[derive(Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// A copy of everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory recorder lock poisoned").clone()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.events.lock().expect("memory recorder lock poisoned").push(event.clone());
    }
}

/// Writes one JSON object per line to a file (JSONL).
pub struct FileRecorder {
    out: Mutex<BufWriter<File>>,
}

impl FileRecorder {
    /// Creates (truncating) the sink file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)) })
    }
}

impl Recorder for FileRecorder {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().expect("file recorder lock poisoned");
        // A failing sink must never take the experiment down with it.
        let _ = writeln!(out, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("file recorder lock poisoned").flush();
    }
}

/// Size-rotated JSONL sink for live trace logs.
///
/// When writing the next record would push the active file past
/// `max_bytes`, the file is renamed to `<path>.1` (displacing any previous
/// generation) and a fresh file is started — at most two generations live
/// on disk, bounding a long-running server's trace footprint. Rotation
/// happens on record boundaries, so rotated files always contain complete
/// lines; only a crash mid-write can leave a truncated final line, which
/// [`crate::stream::read_str_lenient`] skips with a warning instead of
/// failing the whole parse.
pub struct RotatingFileRecorder {
    path: std::path::PathBuf,
    max_bytes: u64,
    inner: Mutex<RotState>,
}

struct RotState {
    out: BufWriter<File>,
    written: u64,
}

impl RotatingFileRecorder {
    /// Default rotation threshold: 64 MiB.
    pub const DEFAULT_MAX_BYTES: u64 = 64 << 20;

    /// Creates (truncating) the active sink file and removes any stale
    /// rotated generation from a previous run.
    pub fn create(path: impl AsRef<Path>, max_bytes: u64) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(Self::rotated_of(&path));
        let file = File::create(&path)?;
        Ok(Self {
            path,
            max_bytes: max_bytes.max(1),
            inner: Mutex::new(RotState { out: BufWriter::new(file), written: 0 }),
        })
    }

    fn rotated_of(path: &Path) -> std::path::PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".1");
        std::path::PathBuf::from(os)
    }

    /// Where the rotated-out generation lives (`<path>.1`).
    pub fn rotated_path(&self) -> std::path::PathBuf {
        Self::rotated_of(&self.path)
    }
}

impl Recorder for RotatingFileRecorder {
    fn record(&self, event: &Event) {
        let line = event.to_json_line();
        let needed = line.len() as u64 + 1;
        let mut st = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if st.written > 0 && st.written + needed > self.max_bytes {
            let _ = st.out.flush();
            // Swap in a fresh file; on any failure keep appending to the
            // current one — a failing sink never takes the server down.
            if std::fs::rename(&self.path, Self::rotated_of(&self.path)).is_ok() {
                if let Ok(file) = File::create(&self.path) {
                    st.out = BufWriter::new(file);
                    st.written = 0;
                }
            }
        }
        let _ = writeln!(st.out, "{line}");
        st.written += needed;
    }

    fn flush(&self) {
        let mut st = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = st.out.flush();
    }
}

/// Human-readable progress lines on stderr, replacing the ad-hoc
/// `eprintln!` calls the bench binaries used to carry.
#[derive(Default)]
pub struct StderrRecorder {
    /// Also echo span-completion records (noisy; off by default).
    pub spans: bool,
}

impl Recorder for StderrRecorder {
    fn record(&self, event: &Event) {
        // Spans are noisy (opt-in) and the end-of-run metric snapshot is
        // already rendered as a table by the session summary.
        if (event.kind == "span" && !self.spans) || event.kind == "metric" {
            return;
        }
        let mut line = String::with_capacity(64);
        line.push_str("[obs] ");
        line.push_str(event.kind);
        line.push(' ');
        line.push_str(&event.name);
        for (k, v) in &event.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&v.to_string());
        }
        eprintln!("{line}");
    }
}

/// Swallows every event. Useful when a process only wants the live metric
/// registry and span aggregates (e.g. the microbench harness capturing
/// FLOP counters) without buffering or writing an event stream.
#[derive(Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}
}

/// Fans one event stream out to several recorders (e.g. stderr progress
/// *and* a JSONL file).
pub struct TeeRecorder {
    sinks: Vec<std::sync::Arc<dyn Recorder>>,
}

impl TeeRecorder {
    /// Combines `sinks`; events are delivered in the given order.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_to_one_json_object() {
        let mut ev = Event::new("event", "maml.epoch");
        ev.push("epoch", 3usize);
        ev.push("loss", 0.25f64);
        ev.push("tag", "q\"uote");
        ev.push("ok", true);
        ev.push("delta", -2i64);
        let line = ev.to_json_line();
        assert!(line.starts_with(r#"{"kind":"event","name":"maml.epoch","t_ns":"#));
        assert!(line.contains(r#""epoch":3"#));
        assert!(line.contains(r#""loss":0.25"#));
        assert!(line.contains(r#""tag":"q\"uote""#));
        assert!(line.contains(r#""ok":true"#));
        assert!(line.ends_with(r#""delta":-2}"#));
    }

    #[test]
    fn file_recorder_writes_jsonl() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metadpa_obs_test_{}.jsonl", std::process::id()));
        let rec = FileRecorder::create(&path).expect("create sink");
        let mut ev = Event::new("event", "file.test");
        ev.push("n", 1u64);
        rec.record(&ev);
        rec.record(&ev);
        rec.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains(r#""name":"file.test""#));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotating_recorder_rotates_on_record_boundaries_and_loses_nothing() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metadpa_obs_rot_{}.jsonl", std::process::id()));
        // Threshold sized to force several rotations over 50 records.
        let rec = RotatingFileRecorder::create(&path, 400).expect("create sink");
        for i in 0..50u64 {
            let mut ev = Event::new("event", "rot.test");
            ev.push("i", i);
            rec.record(&ev);
        }
        rec.flush();
        let active = std::fs::read_to_string(&path).expect("active file");
        let rotated = std::fs::read_to_string(rec.rotated_path()).expect("rotated generation");
        for line in active.lines().chain(rotated.lines()) {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "rotation must land on record boundaries: {line:?}"
            );
        }
        // Only two generations are kept, so early records may be gone, but
        // the surviving tail is contiguous and ends at the last record.
        let last = active.lines().last().expect("active file has records");
        assert!(last.contains("\"i\":49"), "{last}");
        assert!(
            !rotated.is_empty() && active.len() as u64 <= 400,
            "rotation actually happened (active={}, rotated={})",
            active.len(),
            rotated.len()
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(rec.rotated_path());
    }

    #[test]
    fn a_record_landing_exactly_on_the_cap_rotates_on_the_record_boundary() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("metadpa_obs_rot_exact_{}.jsonl", std::process::id()));
        let events: Vec<Event> = (0..3u64)
            .map(|i| {
                let mut ev = Event::new("event", "rot.exact");
                ev.push("i", i);
                ev
            })
            .collect();
        let lens: Vec<u64> = events.iter().map(|e| e.to_json_line().len() as u64 + 1).collect();
        // Cap sized to exactly two records: the second lands flush on the
        // cap and must complete the current generation in full; only the
        // third opens a fresh file.
        let cap = lens[0] + lens[1];
        let rec = RotatingFileRecorder::create(&path, cap).expect("create sink");
        for ev in &events {
            rec.record(ev);
        }
        rec.flush();
        let active = std::fs::read_to_string(&path).expect("active file");
        let rotated = std::fs::read_to_string(rec.rotated_path()).expect("rotated generation");
        assert_eq!(rotated.len() as u64, cap, "the exact-fit record stays in its generation");
        assert_eq!(rotated.lines().count(), 2);
        assert_eq!(active.lines().count(), 1);
        // No record is split across the boundary or duplicated: the three
        // records appear exactly once each, in order, each a whole object.
        let all: Vec<&str> = rotated.lines().chain(active.lines()).collect();
        assert_eq!(all.len(), 3);
        for (i, line) in all.iter().enumerate() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "record split across rotation: {line:?}"
            );
            assert!(
                line.contains(&format!("\"i\":{i}")),
                "record {i} duplicated or out of order: {line:?}"
            );
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(rec.rotated_path());
    }

    #[test]
    fn tee_delivers_to_all_sinks() {
        let a = std::sync::Arc::new(MemoryRecorder::default());
        let b = std::sync::Arc::new(MemoryRecorder::default());
        let tee = TeeRecorder::new(vec![a.clone(), b.clone()]);
        tee.record(&Event::new("event", "tee.test"));
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    fn value_conversions_preserve_type() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-3i32), Value::I64(-3));
        assert_eq!(Value::from(0.5f32), Value::F64(0.5));
        assert_eq!(Value::from("s"), Value::Str("s".to_string()));
    }
}

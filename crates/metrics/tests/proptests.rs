//! Property-based tests for metric invariants.

use metadpa_metrics::{auc, hr_at_k, mrr_at_k, ndcg_at_k, rank_of_positive, wilcoxon_signed_rank};
use metadpa_metrics::MetricSummary;
use proptest::prelude::*;

fn scores() -> impl Strategy<Value = (f32, Vec<f32>)> {
    (
        -10.0f32..10.0,
        proptest::collection::vec(-10.0f32..10.0, 1..120),
    )
}

proptest! {
    /// All metrics live in [0, 1].
    #[test]
    fn metrics_are_bounded((pos, negs) in scores(), k in 1usize..20) {
        for v in [
            hr_at_k(pos, &negs, k),
            mrr_at_k(pos, &negs, k),
            ndcg_at_k(pos, &negs, k),
            auc(pos, &negs),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
        }
    }

    /// Metric dominance: HR >= NDCG >= 0 and HR >= MRR (each hit contributes
    /// at most 1 to HR and <= 1 to the others).
    #[test]
    fn hr_dominates((pos, negs) in scores(), k in 1usize..20) {
        let hr = hr_at_k(pos, &negs, k);
        prop_assert!(hr >= mrr_at_k(pos, &negs, k));
        prop_assert!(hr >= ndcg_at_k(pos, &negs, k));
    }

    /// Metrics are monotone in k.
    #[test]
    fn metrics_monotone_in_k((pos, negs) in scores()) {
        let mut prev = (0.0f32, 0.0f32, 0.0f32);
        for k in 1..=20 {
            let cur = (hr_at_k(pos, &negs, k), mrr_at_k(pos, &negs, k), ndcg_at_k(pos, &negs, k));
            prop_assert!(cur.0 >= prev.0);
            prop_assert!(cur.1 >= prev.1);
            prop_assert!(cur.2 >= prev.2);
            prev = cur;
        }
    }

    /// Raising the positive score never hurts any metric.
    #[test]
    fn metrics_monotone_in_positive_score((pos, negs) in scores(), k in 1usize..20, bump in 0.0f32..5.0) {
        prop_assert!(hr_at_k(pos + bump, &negs, k) >= hr_at_k(pos, &negs, k));
        prop_assert!(mrr_at_k(pos + bump, &negs, k) >= mrr_at_k(pos, &negs, k));
        prop_assert!(ndcg_at_k(pos + bump, &negs, k) >= ndcg_at_k(pos, &negs, k));
        prop_assert!(auc(pos + bump, &negs) >= auc(pos, &negs));
    }

    /// Rank is between 1 and 1 + #negatives.
    #[test]
    fn rank_bounds((pos, negs) in scores()) {
        let r = rank_of_positive(pos, &negs);
        prop_assert!(r >= 1 && r <= negs.len() + 1);
    }

    /// AUC and rank agree: auc == 1 - (rank-1-ties/2)/n. With no exact
    /// ties this is exact.
    #[test]
    fn auc_consistent_with_rank(pos in -9.9f32..9.9, negs in proptest::collection::vec(-10.0f32..10.0, 1..50)) {
        prop_assume!(negs.iter().all(|&s| s != pos));
        let better = negs.iter().filter(|&&s| s > pos).count();
        let expect = 1.0 - better as f32 / negs.len() as f32;
        prop_assert!((auc(pos, &negs) - expect).abs() < 1e-6);
    }

    /// Summary accumulation equals merging per-instance summaries.
    #[test]
    fn summary_merge_associative(instances in proptest::collection::vec(scores(), 1..20)) {
        let k = 10;
        let mut direct = MetricSummary::default();
        let mut merged = MetricSummary::default();
        for (pos, negs) in &instances {
            direct.add_instance(*pos, negs, k);
            let single = metadpa_metrics::evaluate_instance(*pos, negs, k);
            merged.merge(&single);
        }
        prop_assert_eq!(direct.count, merged.count);
        prop_assert!((direct.hr - merged.hr).abs() < 1e-4);
        prop_assert!((direct.ndcg - merged.ndcg).abs() < 1e-4);
    }

    /// Wilcoxon p-value is a probability, and the test is antisymmetric-ish:
    /// swapping the samples flips significance.
    #[test]
    fn wilcoxon_pvalue_bounds_and_swap(
        base in proptest::collection::vec(0.0f64..1.0, 10..40),
        delta in 0.01f64..0.3,
    ) {
        let x: Vec<f64> = base.iter().map(|v| v + delta).collect();
        let fwd = wilcoxon_signed_rank(&x, &base);
        let rev = wilcoxon_signed_rank(&base, &x);
        prop_assert!((0.0..=1.0).contains(&fwd.p_value));
        prop_assert!((0.0..=1.0).contains(&rev.p_value));
        // x dominates base everywhere -> strongly significant forward,
        // not significant reversed.
        prop_assert!(fwd.p_value < 0.01);
        prop_assert!(rev.p_value > 0.5);
    }

    /// W+ + W- always equals n(n+1)/2 over effective pairs.
    #[test]
    fn wilcoxon_rank_sum_invariant(
        x in proptest::collection::vec(0.0f64..1.0, 10..40),
        y_shift in proptest::collection::vec(-0.5f64..0.5, 10..40),
    ) {
        let n = x.len().min(y_shift.len());
        let x = &x[..n];
        let y: Vec<f64> = x.iter().zip(&y_shift[..n]).map(|(a, s)| a + s).collect();
        let out = wilcoxon_signed_rank(x, &y);
        if out.n_effective >= 5 {
            let expect = (out.n_effective * (out.n_effective + 1)) as f64 / 2.0;
            prop_assert!((out.w_plus + out.w_minus - expect).abs() < 1e-9);
        }
    }
}

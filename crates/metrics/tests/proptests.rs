//! Property-based tests for metric invariants.
//!
//! The randomized `proptest` suite is opt-in (`--features proptest`): the
//! build environment is offline, so the `proptest` crate cannot be a
//! default dev-dependency. To run it, restore `proptest = "1"` under
//! `[dev-dependencies]` and enable the feature. The `deterministic` module
//! below always compiles, driving the same invariants from a tiny local
//! SplitMix64 (this crate has no dependency on metadpa-tensor).

use metadpa_metrics::MetricSummary;
use metadpa_metrics::{auc, hr_at_k, mrr_at_k, ndcg_at_k, rank_of_positive, wilcoxon_signed_rank};

/// Minimal SplitMix64 so the fallback cases still cover varied inputs.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [lo, hi).
    fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        let u = (self.next() >> 40) as f32 / (1u32 << 24) as f32;
        lo + u * (hi - lo)
    }

    fn scores(&mut self, n: usize) -> (f32, Vec<f32>) {
        let pos = self.f32_in(-10.0, 10.0);
        let negs = (0..n).map(|_| self.f32_in(-10.0, 10.0)).collect();
        (pos, negs)
    }
}

mod deterministic {
    use super::*;

    /// All metrics live in [0, 1].
    #[test]
    fn metrics_are_bounded() {
        let mut mix = Mix(1);
        for n in [1usize, 3, 17, 64, 119] {
            let (pos, negs) = mix.scores(n);
            for k in [1usize, 5, 10, 19] {
                for v in [
                    hr_at_k(pos, &negs, k),
                    mrr_at_k(pos, &negs, k),
                    ndcg_at_k(pos, &negs, k),
                    auc(pos, &negs),
                ] {
                    assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
                }
            }
        }
    }

    /// HR >= MRR and HR >= NDCG (each hit contributes at most 1 to HR and
    /// <= 1 to the others).
    #[test]
    fn hr_dominates() {
        let mut mix = Mix(2);
        for n in [1usize, 8, 40, 110] {
            let (pos, negs) = mix.scores(n);
            for k in 1..20 {
                let hr = hr_at_k(pos, &negs, k);
                assert!(hr >= mrr_at_k(pos, &negs, k));
                assert!(hr >= ndcg_at_k(pos, &negs, k));
            }
        }
    }

    /// Metrics are monotone in k.
    #[test]
    fn metrics_monotone_in_k() {
        let mut mix = Mix(3);
        for n in [2usize, 15, 77] {
            let (pos, negs) = mix.scores(n);
            let mut prev = (0.0f32, 0.0f32, 0.0f32);
            for k in 1..=20 {
                let cur =
                    (hr_at_k(pos, &negs, k), mrr_at_k(pos, &negs, k), ndcg_at_k(pos, &negs, k));
                assert!(cur.0 >= prev.0);
                assert!(cur.1 >= prev.1);
                assert!(cur.2 >= prev.2);
                prev = cur;
            }
        }
    }

    /// Raising the positive score never hurts any metric.
    #[test]
    fn metrics_monotone_in_positive_score() {
        let mut mix = Mix(4);
        for n in [5usize, 30, 90] {
            let (pos, negs) = mix.scores(n);
            for bump in [0.0f32, 0.5, 2.5, 4.9] {
                for k in [1usize, 7, 19] {
                    assert!(hr_at_k(pos + bump, &negs, k) >= hr_at_k(pos, &negs, k));
                    assert!(mrr_at_k(pos + bump, &negs, k) >= mrr_at_k(pos, &negs, k));
                    assert!(ndcg_at_k(pos + bump, &negs, k) >= ndcg_at_k(pos, &negs, k));
                    assert!(auc(pos + bump, &negs) >= auc(pos, &negs));
                }
            }
        }
    }

    /// Rank is between 1 and 1 + #negatives.
    #[test]
    fn rank_bounds() {
        let mut mix = Mix(5);
        for n in [1usize, 4, 25, 100] {
            let (pos, negs) = mix.scores(n);
            let r = rank_of_positive(pos, &negs);
            assert!(r >= 1 && r <= negs.len() + 1);
        }
    }

    /// AUC and rank agree when there are no exact ties.
    #[test]
    fn auc_consistent_with_rank() {
        let mut mix = Mix(6);
        for n in [1usize, 10, 49] {
            let (pos, negs) = mix.scores(n);
            if negs.contains(&pos) {
                continue; // vanishing probability, but stay faithful to the property
            }
            let better = negs.iter().filter(|&&s| s > pos).count();
            let expect = 1.0 - better as f32 / negs.len() as f32;
            assert!((auc(pos, &negs) - expect).abs() < 1e-6);
        }
    }

    /// Summary accumulation equals merging per-instance summaries.
    #[test]
    fn summary_merge_associative() {
        let mut mix = Mix(7);
        let k = 10;
        let mut direct = MetricSummary::default();
        let mut merged = MetricSummary::default();
        for n in [3usize, 12, 30, 60, 119] {
            let (pos, negs) = mix.scores(n);
            direct.add_instance(pos, &negs, k);
            let single = metadpa_metrics::evaluate_instance(pos, &negs, k);
            merged.merge(&single);
        }
        assert_eq!(direct.count, merged.count);
        assert!((direct.hr - merged.hr).abs() < 1e-4);
        assert!((direct.ndcg - merged.ndcg).abs() < 1e-4);
    }

    /// Wilcoxon p-value is a probability; a uniform shift is significant
    /// forward and not significant reversed.
    #[test]
    fn wilcoxon_pvalue_bounds_and_swap() {
        let mut mix = Mix(8);
        for (n, delta) in [(10usize, 0.05f64), (25, 0.15), (39, 0.29)] {
            let base: Vec<f64> = (0..n).map(|_| mix.f32_in(0.0, 1.0) as f64).collect();
            let x: Vec<f64> = base.iter().map(|v| v + delta).collect();
            let fwd = wilcoxon_signed_rank(&x, &base);
            let rev = wilcoxon_signed_rank(&base, &x);
            assert!((0.0..=1.0).contains(&fwd.p_value));
            assert!((0.0..=1.0).contains(&rev.p_value));
            assert!(fwd.p_value < 0.01);
            assert!(rev.p_value > 0.5);
        }
    }

    /// W+ + W- always equals n(n+1)/2 over effective pairs.
    #[test]
    fn wilcoxon_rank_sum_invariant() {
        let mut mix = Mix(9);
        for n in [10usize, 20, 39] {
            let x: Vec<f64> = (0..n).map(|_| mix.f32_in(0.0, 1.0) as f64).collect();
            let y: Vec<f64> = x.iter().map(|a| a + mix.f32_in(-0.5, 0.5) as f64).collect();
            let out = wilcoxon_signed_rank(&x, &y);
            if out.n_effective >= 5 {
                let expect = (out.n_effective * (out.n_effective + 1)) as f64 / 2.0;
                assert!((out.w_plus + out.w_minus - expect).abs() < 1e-9);
            }
        }
    }
}

#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    fn scores() -> impl Strategy<Value = (f32, Vec<f32>)> {
        (-10.0f32..10.0, proptest::collection::vec(-10.0f32..10.0, 1..120))
    }

    proptest! {
        /// All metrics live in [0, 1].
        #[test]
        fn metrics_are_bounded((pos, negs) in scores(), k in 1usize..20) {
            for v in [
                hr_at_k(pos, &negs, k),
                mrr_at_k(pos, &negs, k),
                ndcg_at_k(pos, &negs, k),
                auc(pos, &negs),
            ] {
                prop_assert!((0.0..=1.0).contains(&v), "metric {v} out of range");
            }
        }

        /// Metric dominance: HR >= NDCG >= 0 and HR >= MRR.
        #[test]
        fn hr_dominates((pos, negs) in scores(), k in 1usize..20) {
            let hr = hr_at_k(pos, &negs, k);
            prop_assert!(hr >= mrr_at_k(pos, &negs, k));
            prop_assert!(hr >= ndcg_at_k(pos, &negs, k));
        }

        /// Metrics are monotone in k.
        #[test]
        fn metrics_monotone_in_k((pos, negs) in scores()) {
            let mut prev = (0.0f32, 0.0f32, 0.0f32);
            for k in 1..=20 {
                let cur = (hr_at_k(pos, &negs, k), mrr_at_k(pos, &negs, k), ndcg_at_k(pos, &negs, k));
                prop_assert!(cur.0 >= prev.0);
                prop_assert!(cur.1 >= prev.1);
                prop_assert!(cur.2 >= prev.2);
                prev = cur;
            }
        }

        /// Raising the positive score never hurts any metric.
        #[test]
        fn metrics_monotone_in_positive_score((pos, negs) in scores(), k in 1usize..20, bump in 0.0f32..5.0) {
            prop_assert!(hr_at_k(pos + bump, &negs, k) >= hr_at_k(pos, &negs, k));
            prop_assert!(mrr_at_k(pos + bump, &negs, k) >= mrr_at_k(pos, &negs, k));
            prop_assert!(ndcg_at_k(pos + bump, &negs, k) >= ndcg_at_k(pos, &negs, k));
            prop_assert!(auc(pos + bump, &negs) >= auc(pos, &negs));
        }

        /// Rank is between 1 and 1 + #negatives.
        #[test]
        fn rank_bounds((pos, negs) in scores()) {
            let r = rank_of_positive(pos, &negs);
            prop_assert!(r >= 1 && r <= negs.len() + 1);
        }

        /// AUC and rank agree when there are no exact ties.
        #[test]
        fn auc_consistent_with_rank(pos in -9.9f32..9.9, negs in proptest::collection::vec(-10.0f32..10.0, 1..50)) {
            prop_assume!(negs.iter().all(|&s| s != pos));
            let better = negs.iter().filter(|&&s| s > pos).count();
            let expect = 1.0 - better as f32 / negs.len() as f32;
            prop_assert!((auc(pos, &negs) - expect).abs() < 1e-6);
        }

        /// Summary accumulation equals merging per-instance summaries.
        #[test]
        fn summary_merge_associative(instances in proptest::collection::vec(scores(), 1..20)) {
            let k = 10;
            let mut direct = MetricSummary::default();
            let mut merged = MetricSummary::default();
            for (pos, negs) in &instances {
                direct.add_instance(*pos, negs, k);
                let single = metadpa_metrics::evaluate_instance(*pos, negs, k);
                merged.merge(&single);
            }
            prop_assert_eq!(direct.count, merged.count);
            prop_assert!((direct.hr - merged.hr).abs() < 1e-4);
            prop_assert!((direct.ndcg - merged.ndcg).abs() < 1e-4);
        }

        /// Wilcoxon p-value is a probability; swapping the samples flips
        /// significance.
        #[test]
        fn wilcoxon_pvalue_bounds_and_swap(
            base in proptest::collection::vec(0.0f64..1.0, 10..40),
            delta in 0.01f64..0.3,
        ) {
            let x: Vec<f64> = base.iter().map(|v| v + delta).collect();
            let fwd = wilcoxon_signed_rank(&x, &base);
            let rev = wilcoxon_signed_rank(&base, &x);
            prop_assert!((0.0..=1.0).contains(&fwd.p_value));
            prop_assert!((0.0..=1.0).contains(&rev.p_value));
            prop_assert!(fwd.p_value < 0.01);
            prop_assert!(rev.p_value > 0.5);
        }

        /// W+ + W- always equals n(n+1)/2 over effective pairs.
        #[test]
        fn wilcoxon_rank_sum_invariant(
            x in proptest::collection::vec(0.0f64..1.0, 10..40),
            y_shift in proptest::collection::vec(-0.5f64..0.5, 10..40),
        ) {
            let n = x.len().min(y_shift.len());
            let x = &x[..n];
            let y: Vec<f64> = x.iter().zip(&y_shift[..n]).map(|(a, s)| a + s).collect();
            let out = wilcoxon_signed_rank(x, &y);
            if out.n_effective >= 5 {
                let expect = (out.n_effective * (out.n_effective + 1)) as f64 / 2.0;
                prop_assert!((out.w_plus + out.w_minus - expect).abs() < 1e-9);
            }
        }
    }
}

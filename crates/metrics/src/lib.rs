//! # metadpa-metrics
//!
//! Evaluation metrics for the MetaDPA reproduction.
//!
//! The paper evaluates top-k recommendation under the leave-one-out protocol
//! of He et al. (2017): each test instance is one positive item ranked
//! against 99 sampled negatives. Four metrics are reported (§V-A2):
//!
//! * [`ranking::hr_at_k`] — hit ratio,
//! * [`ranking::mrr_at_k`] — mean reciprocal rank,
//! * [`ranking::ndcg_at_k`] — normalized discounted cumulative gain,
//! * [`ranking::auc`] — area under the ROC curve.
//!
//! [`wilcoxon`] implements the one-sided Wilcoxon signed-rank test used in
//! §V-D to establish significance over the second-best baseline across 30
//! random splits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ranking;
pub mod summary;
pub mod wilcoxon;

pub use ranking::{auc, hr_at_k, mrr_at_k, ndcg_at_k, rank_of_positive};
pub use summary::{evaluate_instance, MetricSummary};
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonOutcome};

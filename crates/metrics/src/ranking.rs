//! Per-instance ranking metrics under the leave-one-out protocol.
//!
//! Every function takes the score of the single positive item and the scores
//! of the sampled negatives (99 of them in the paper's protocol) and returns
//! the metric for that one test instance; [`crate::summary`] aggregates over
//! instances. Ties are broken pessimistically (a negative with an equal
//! score ranks ahead of the positive), so a model scoring everything
//! identically receives the worst rank rather than a lucky one — this keeps
//! degenerate models from looking competent.

/// Rank of the positive item among `1 + negatives.len()` candidates,
/// 1-indexed; equal-scoring negatives count against the positive.
pub fn rank_of_positive(positive_score: f32, negative_scores: &[f32]) -> usize {
    1 + negative_scores.iter().filter(|&&s| s >= positive_score).count()
}

/// Hit ratio at `k`: 1 if the positive ranks within the top `k`, else 0.
///
/// # Panics
/// Panics if `k == 0`.
pub fn hr_at_k(positive_score: f32, negative_scores: &[f32], k: usize) -> f32 {
    assert!(k > 0, "hr_at_k: k must be positive");
    if rank_of_positive(positive_score, negative_scores) <= k {
        1.0
    } else {
        0.0
    }
}

/// Reciprocal rank at `k`: `1/rank` if the positive ranks within the top
/// `k`, else 0.
///
/// # Panics
/// Panics if `k == 0`.
pub fn mrr_at_k(positive_score: f32, negative_scores: &[f32], k: usize) -> f32 {
    assert!(k > 0, "mrr_at_k: k must be positive");
    let rank = rank_of_positive(positive_score, negative_scores);
    if rank <= k {
        1.0 / rank as f32
    } else {
        0.0
    }
}

/// NDCG at `k` for a single positive: `1 / log2(rank + 1)` if the positive
/// ranks within the top `k`, else 0. (With one relevant item the ideal DCG
/// is 1, so DCG equals NDCG.)
///
/// # Panics
/// Panics if `k == 0`.
pub fn ndcg_at_k(positive_score: f32, negative_scores: &[f32], k: usize) -> f32 {
    assert!(k > 0, "ndcg_at_k: k must be positive");
    let rank = rank_of_positive(positive_score, negative_scores);
    if rank <= k {
        1.0 / ((rank as f32) + 1.0).log2()
    } else {
        0.0
    }
}

/// AUC for a single positive: the fraction of negatives scored strictly
/// below the positive, with ties counted half.
///
/// Returns 0.5 for an empty negative set (no information).
pub fn auc(positive_score: f32, negative_scores: &[f32]) -> f32 {
    if negative_scores.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f32;
    for &s in negative_scores {
        if positive_score > s {
            wins += 1.0;
        } else if positive_score == s {
            wins += 0.5;
        }
    }
    wins / negative_scores.len() as f32
}

/// One candidate in the top-K heap: ordered by score, ties broken toward
/// the smaller index (so results match a full descending sort with
/// index tie-breaks, the [`top_k_indices`] oracle).
#[derive(PartialEq)]
struct HeapEntry {
    score: f32,
    index: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Greater = better: higher score first, then smaller index.
        self.score
            .partial_cmp(&other.score)
            .expect("top_k_indices: NaN score")
            .then(other.index.cmp(&self.index))
    }
}

/// Indices of the `k` largest scores, best first, ties broken by smaller
/// index — the shared partial-select used by both the offline evaluation
/// harness (`recommend_top_k`) and the serve-time scorer.
///
/// A size-`k` min-heap makes this `O(n log k)` instead of the `O(n log n)`
/// full sort, which matters when ranking a whole catalogue per request.
/// Returns fewer than `k` indices when the slice is shorter than `k`.
///
/// # Panics
/// Panics if any inspected score is NaN.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if k == 0 || scores.is_empty() {
        return Vec::new();
    }
    // Min-heap of the best k seen so far (worst of the k at the top).
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::with_capacity(k + 1);
    for (index, &score) in scores.iter().enumerate() {
        if heap.len() < k {
            heap.push(Reverse(HeapEntry { score, index }));
        } else if let Some(worst) = heap.peek() {
            let candidate = HeapEntry { score, index };
            if candidate > worst.0 {
                heap.pop();
                heap.push(Reverse(candidate));
            }
        }
    }
    let mut out: Vec<usize> = Vec::with_capacity(heap.len());
    while let Some(Reverse(entry)) = heap.pop() {
        out.push(entry.index);
    }
    out.reverse(); // heap popped worst-first
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_ties_pessimistically() {
        assert_eq!(rank_of_positive(0.5, &[0.4, 0.5, 0.6]), 3);
        assert_eq!(rank_of_positive(1.0, &[0.1, 0.2]), 1);
        assert_eq!(rank_of_positive(0.0, &[]), 1);
    }

    #[test]
    fn hr_boundary_at_k() {
        // Positive ranked exactly k-th counts as a hit.
        let negatives = [0.9, 0.8, 0.7]; // positive 0.75 -> rank 3
        assert_eq!(rank_of_positive(0.75, &negatives), 3);
        assert_eq!(hr_at_k(0.75, &negatives, 3), 1.0);
        assert_eq!(hr_at_k(0.75, &negatives, 2), 0.0);
    }

    #[test]
    fn mrr_is_reciprocal_rank_within_k() {
        let negatives = [0.9]; // positive 0.5 -> rank 2
        assert_eq!(mrr_at_k(0.5, &negatives, 10), 0.5);
        assert_eq!(mrr_at_k(0.5, &negatives, 1), 0.0);
        assert_eq!(mrr_at_k(1.0, &negatives, 10), 1.0);
    }

    #[test]
    fn ndcg_known_values() {
        // rank 1 -> 1/log2(2) = 1; rank 2 -> 1/log2(3) ~ 0.6309.
        assert!((ndcg_at_k(1.0, &[0.5], 10) - 1.0).abs() < 1e-6);
        assert!((ndcg_at_k(0.4, &[0.5], 10) - 1.0 / 3.0f32.log2()).abs() < 1e-6);
        assert_eq!(ndcg_at_k(0.4, &[0.5], 1), 0.0);
    }

    #[test]
    fn ndcg_decreases_with_rank() {
        let mut last = f32::INFINITY;
        for n_better in 0..9 {
            let negatives: Vec<f32> =
                (0..9).map(|i| if i < n_better { 1.0 } else { 0.0 }).collect();
            let v = ndcg_at_k(0.5, &negatives, 10);
            assert!(v < last);
            last = v;
        }
    }

    #[test]
    fn auc_perfect_and_worst() {
        assert_eq!(auc(1.0, &[0.0, 0.1, 0.2]), 1.0);
        assert_eq!(auc(0.0, &[0.5, 0.6]), 0.0);
        assert_eq!(auc(0.5, &[0.5, 0.5]), 0.5);
        assert_eq!(auc(0.5, &[]), 0.5);
    }

    #[test]
    fn random_scores_have_auc_near_half() {
        // Deterministic pseudo-random: positive in the middle of a spread.
        let negatives: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let v = auc(0.505, &negatives);
        assert!((v - 0.51).abs() < 0.02, "auc {v}");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn hr_rejects_zero_k() {
        let _ = hr_at_k(0.5, &[0.1], 0);
    }

    /// The sort-based oracle the heap select must agree with exactly.
    fn sort_oracle(scores: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).expect("oracle: NaN").then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }

    #[test]
    fn top_k_basics_and_ties() {
        let v = [1.0f32, 3.0, 2.0, 3.0];
        assert_eq!(top_k_indices(&v, 2), vec![1, 3], "tie broken toward smaller index");
        assert_eq!(top_k_indices(&v, 10), vec![1, 3, 2, 0]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
        assert_eq!(top_k_indices(&[], 5), Vec::<usize>::new());
        assert_eq!(top_k_indices(&[0.5; 6], 3), vec![0, 1, 2], "all-equal keeps index order");
    }

    #[test]
    fn top_k_matches_sort_oracle_on_seeded_random_vectors() {
        // Property test against the full-sort oracle: SplitMix64-seeded
        // score vectors with deliberate duplicates (quantized values) so
        // tie-breaking is exercised, across lengths and cutoffs.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for len in [1usize, 2, 7, 99, 100, 257] {
            for trial in 0..20 {
                let quantum = if trial % 2 == 0 { 8.0 } else { 1024.0 };
                let scores: Vec<f32> = (0..len)
                    .map(|_| ((next() % 1000) as f32 / 1000.0 * quantum).round() / quantum)
                    .collect();
                for k in [0usize, 1, 3, len / 2, len, len + 5] {
                    assert_eq!(
                        top_k_indices(&scores, k),
                        sort_oracle(&scores, k),
                        "len={len} trial={trial} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn top_k_rejects_nan() {
        let _ = top_k_indices(&[0.0, f32::NAN, 1.0], 2);
    }
}

//! Per-instance ranking metrics under the leave-one-out protocol.
//!
//! Every function takes the score of the single positive item and the scores
//! of the sampled negatives (99 of them in the paper's protocol) and returns
//! the metric for that one test instance; [`crate::summary`] aggregates over
//! instances. Ties are broken pessimistically (a negative with an equal
//! score ranks ahead of the positive), so a model scoring everything
//! identically receives the worst rank rather than a lucky one — this keeps
//! degenerate models from looking competent.

/// Rank of the positive item among `1 + negatives.len()` candidates,
/// 1-indexed; equal-scoring negatives count against the positive.
pub fn rank_of_positive(positive_score: f32, negative_scores: &[f32]) -> usize {
    1 + negative_scores.iter().filter(|&&s| s >= positive_score).count()
}

/// Hit ratio at `k`: 1 if the positive ranks within the top `k`, else 0.
///
/// # Panics
/// Panics if `k == 0`.
pub fn hr_at_k(positive_score: f32, negative_scores: &[f32], k: usize) -> f32 {
    assert!(k > 0, "hr_at_k: k must be positive");
    if rank_of_positive(positive_score, negative_scores) <= k {
        1.0
    } else {
        0.0
    }
}

/// Reciprocal rank at `k`: `1/rank` if the positive ranks within the top
/// `k`, else 0.
///
/// # Panics
/// Panics if `k == 0`.
pub fn mrr_at_k(positive_score: f32, negative_scores: &[f32], k: usize) -> f32 {
    assert!(k > 0, "mrr_at_k: k must be positive");
    let rank = rank_of_positive(positive_score, negative_scores);
    if rank <= k {
        1.0 / rank as f32
    } else {
        0.0
    }
}

/// NDCG at `k` for a single positive: `1 / log2(rank + 1)` if the positive
/// ranks within the top `k`, else 0. (With one relevant item the ideal DCG
/// is 1, so DCG equals NDCG.)
///
/// # Panics
/// Panics if `k == 0`.
pub fn ndcg_at_k(positive_score: f32, negative_scores: &[f32], k: usize) -> f32 {
    assert!(k > 0, "ndcg_at_k: k must be positive");
    let rank = rank_of_positive(positive_score, negative_scores);
    if rank <= k {
        1.0 / ((rank as f32) + 1.0).log2()
    } else {
        0.0
    }
}

/// AUC for a single positive: the fraction of negatives scored strictly
/// below the positive, with ties counted half.
///
/// Returns 0.5 for an empty negative set (no information).
pub fn auc(positive_score: f32, negative_scores: &[f32]) -> f32 {
    if negative_scores.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f32;
    for &s in negative_scores {
        if positive_score > s {
            wins += 1.0;
        } else if positive_score == s {
            wins += 0.5;
        }
    }
    wins / negative_scores.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_ties_pessimistically() {
        assert_eq!(rank_of_positive(0.5, &[0.4, 0.5, 0.6]), 3);
        assert_eq!(rank_of_positive(1.0, &[0.1, 0.2]), 1);
        assert_eq!(rank_of_positive(0.0, &[]), 1);
    }

    #[test]
    fn hr_boundary_at_k() {
        // Positive ranked exactly k-th counts as a hit.
        let negatives = [0.9, 0.8, 0.7]; // positive 0.75 -> rank 3
        assert_eq!(rank_of_positive(0.75, &negatives), 3);
        assert_eq!(hr_at_k(0.75, &negatives, 3), 1.0);
        assert_eq!(hr_at_k(0.75, &negatives, 2), 0.0);
    }

    #[test]
    fn mrr_is_reciprocal_rank_within_k() {
        let negatives = [0.9]; // positive 0.5 -> rank 2
        assert_eq!(mrr_at_k(0.5, &negatives, 10), 0.5);
        assert_eq!(mrr_at_k(0.5, &negatives, 1), 0.0);
        assert_eq!(mrr_at_k(1.0, &negatives, 10), 1.0);
    }

    #[test]
    fn ndcg_known_values() {
        // rank 1 -> 1/log2(2) = 1; rank 2 -> 1/log2(3) ~ 0.6309.
        assert!((ndcg_at_k(1.0, &[0.5], 10) - 1.0).abs() < 1e-6);
        assert!((ndcg_at_k(0.4, &[0.5], 10) - 1.0 / 3.0f32.log2()).abs() < 1e-6);
        assert_eq!(ndcg_at_k(0.4, &[0.5], 1), 0.0);
    }

    #[test]
    fn ndcg_decreases_with_rank() {
        let mut last = f32::INFINITY;
        for n_better in 0..9 {
            let negatives: Vec<f32> =
                (0..9).map(|i| if i < n_better { 1.0 } else { 0.0 }).collect();
            let v = ndcg_at_k(0.5, &negatives, 10);
            assert!(v < last);
            last = v;
        }
    }

    #[test]
    fn auc_perfect_and_worst() {
        assert_eq!(auc(1.0, &[0.0, 0.1, 0.2]), 1.0);
        assert_eq!(auc(0.0, &[0.5, 0.6]), 0.0);
        assert_eq!(auc(0.5, &[0.5, 0.5]), 0.5);
        assert_eq!(auc(0.5, &[]), 0.5);
    }

    #[test]
    fn random_scores_have_auc_near_half() {
        // Deterministic pseudo-random: positive in the middle of a spread.
        let negatives: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let v = auc(0.505, &negatives);
        assert!((v - 0.51).abs() < 0.02, "auc {v}");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn hr_rejects_zero_k() {
        let _ = hr_at_k(0.5, &[0.1], 0);
    }
}

//! Aggregation of per-instance metrics into the HR/MRR/NDCG/AUC summary
//! rows reported in Table III and Figs. 3-5 of the paper.

use crate::ranking::{auc, hr_at_k, mrr_at_k, ndcg_at_k};

/// Averaged metrics over a set of leave-one-out test instances.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricSummary {
    /// Hit ratio at the configured cutoff.
    pub hr: f32,
    /// Mean reciprocal rank at the cutoff.
    pub mrr: f32,
    /// Normalized discounted cumulative gain at the cutoff.
    pub ndcg: f32,
    /// Area under the ROC curve (cutoff-free).
    pub auc: f32,
    /// Number of instances aggregated.
    pub count: usize,
}

impl MetricSummary {
    /// Accumulates one test instance's metrics.
    pub fn add_instance(&mut self, positive_score: f32, negative_scores: &[f32], k: usize) {
        let n = self.count as f32;
        let denom = n + 1.0;
        self.hr = (self.hr * n + hr_at_k(positive_score, negative_scores, k)) / denom;
        self.mrr = (self.mrr * n + mrr_at_k(positive_score, negative_scores, k)) / denom;
        self.ndcg = (self.ndcg * n + ndcg_at_k(positive_score, negative_scores, k)) / denom;
        self.auc = (self.auc * n + auc(positive_score, negative_scores)) / denom;
        self.count += 1;
    }

    /// Merges another summary (weighted by instance counts).
    pub fn merge(&mut self, other: &MetricSummary) {
        if other.count == 0 {
            return;
        }
        let a = self.count as f32;
        let b = other.count as f32;
        let denom = a + b;
        self.hr = (self.hr * a + other.hr * b) / denom;
        self.mrr = (self.mrr * a + other.mrr * b) / denom;
        self.ndcg = (self.ndcg * a + other.ndcg * b) / denom;
        self.auc = (self.auc * a + other.auc * b) / denom;
        self.count += other.count;
    }
}

/// Evaluates a single instance and returns its four metrics as a summary
/// with `count == 1`.
pub fn evaluate_instance(positive_score: f32, negative_scores: &[f32], k: usize) -> MetricSummary {
    let mut s = MetricSummary::default();
    s.add_instance(positive_score, negative_scores, k);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_instance_summary_matches_direct_metrics() {
        let s = evaluate_instance(0.9, &[0.1, 0.95, 0.2], 10);
        assert_eq!(s.count, 1);
        assert_eq!(s.hr, 1.0);
        assert_eq!(s.mrr, 0.5);
        assert!((s.ndcg - 1.0 / 3.0f32.log2()).abs() < 1e-6);
        assert!((s.auc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accumulation_averages() {
        let mut s = MetricSummary::default();
        s.add_instance(1.0, &[0.0], 10); // all metrics best
        s.add_instance(0.0, &[1.0], 1); // all metrics worst (rank 2 > k=1)
        assert_eq!(s.count, 2);
        assert_eq!(s.hr, 0.5);
        assert_eq!(s.mrr, 0.5);
        assert!((s.auc - 0.5).abs() < 1e-6);
    }

    #[test]
    fn merge_is_count_weighted() {
        let mut a = MetricSummary { hr: 1.0, mrr: 1.0, ndcg: 1.0, auc: 1.0, count: 1 };
        let b = MetricSummary { hr: 0.0, mrr: 0.0, ndcg: 0.0, auc: 0.0, count: 3 };
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert!((a.hr - 0.25).abs() < 1e-6);
    }

    #[test]
    fn merging_empty_is_noop() {
        let mut a = MetricSummary { hr: 0.7, mrr: 0.4, ndcg: 0.5, auc: 0.6, count: 10 };
        let before = a;
        a.merge(&MetricSummary::default());
        assert_eq!(a, before);
    }
}

//! One-sided Wilcoxon signed-rank test (paper §V-D).
//!
//! The paper tests, over 30 independent train/test splits, the null
//! hypothesis that the median of the paired differences `x_i - y_i`
//! (our method minus the second-best method) is non-positive, against the
//! alternative that it is positive. We implement the standard signed-rank
//! statistic with zero-difference removal (Wilcoxon's convention), average
//! ranks for ties, and a normal approximation with tie correction and
//! continuity correction for the p-value — accurate for n ≥ ~10, and the
//! paper's n = 30.

/// Result of a Wilcoxon signed-rank test.
#[derive(Clone, Copy, Debug)]
pub struct WilcoxonOutcome {
    /// Sum of ranks of positive differences (`W+`).
    pub w_plus: f64,
    /// Sum of ranks of negative differences (`W-`).
    pub w_minus: f64,
    /// Effective sample size after dropping zero differences.
    pub n_effective: usize,
    /// One-sided p-value for the alternative "median difference > 0".
    pub p_value: f64,
}

impl WilcoxonOutcome {
    /// True when the improvement is significant at the given level.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Standard normal survival function `P(Z > z)` via the complementary error
/// function (Abramowitz–Stegun 7.1.26 approximation, |error| < 1.5e-7).
fn normal_sf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * erfc(x)
}

fn erfc(x: f64) -> f64 {
    // A&S 7.1.26 on |x|, reflected for negative arguments.
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-x * x).exp();
    if x >= 0.0 {
        e
    } else {
        2.0 - e
    }
}

/// Runs the one-sided Wilcoxon signed-rank test on paired samples.
///
/// Tests H0: median(x - y) <= 0 against H1: median(x - y) > 0.
/// Pairs with zero difference are dropped (Wilcoxon's convention); tied
/// absolute differences receive average ranks, with the tie correction
/// applied to the variance.
///
/// Returns `p_value = 1.0` when fewer than 5 non-zero differences remain
/// (too few to ever reach significance, and the normal approximation is
/// meaningless).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn wilcoxon_signed_rank(x: &[f64], y: &[f64]) -> WilcoxonOutcome {
    assert_eq!(
        x.len(),
        y.len(),
        "wilcoxon_signed_rank: paired samples must have equal length ({} vs {})",
        x.len(),
        y.len()
    );
    // Non-zero differences with their absolute values.
    let diffs: Vec<f64> =
        x.iter().zip(y.iter()).map(|(&a, &b)| a - b).filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n < 5 {
        return WilcoxonOutcome { w_plus: 0.0, w_minus: 0.0, n_effective: n, p_value: 1.0 };
    }

    // Rank by |d| with average ranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        diffs[a].abs().partial_cmp(&diffs[b].abs()).expect("differences must not be NaN")
    });
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[order[j + 1]].abs() == diffs[order[i]].abs() {
            j += 1;
        }
        // Positions i..=j (0-based) share ranks i+1..=j+1: average them.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_correction += t * t * t - t;
        }
        i = j + 1;
    }

    let mut w_plus = 0.0f64;
    let mut w_minus = 0.0f64;
    for (d, r) in diffs.iter().zip(ranks.iter()) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }

    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    // One-sided (greater): large W+ is evidence for H1. Continuity
    // correction of 0.5.
    let z = (w_plus - mean - 0.5) / var.sqrt();
    let p_value = normal_sf(z).clamp(0.0, 1.0);
    WilcoxonOutcome { w_plus, w_minus, n_effective: n, p_value }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_better_method_is_significant() {
        // x beats y by a consistent margin on 30 "splits".
        let x: Vec<f64> = (0..30).map(|i| 0.5 + 0.01 * (i % 5) as f64 + 0.05).collect();
        let y: Vec<f64> = (0..30).map(|i| 0.5 + 0.01 * (i % 5) as f64).collect();
        let out = wilcoxon_signed_rank(&x, &y);
        assert_eq!(out.n_effective, 30);
        assert_eq!(out.w_minus, 0.0);
        assert!(out.p_value < 1e-5, "p={}", out.p_value);
        assert!(out.significant(0.05));
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let x = vec![0.5; 30];
        let out = wilcoxon_signed_rank(&x, &x);
        assert_eq!(out.n_effective, 0);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn clearly_worse_method_is_not_significant() {
        let x: Vec<f64> = (0..30).map(|i| 0.4 + 0.001 * i as f64).collect();
        let y: Vec<f64> = (0..30).map(|i| 0.6 + 0.001 * i as f64).collect();
        let out = wilcoxon_signed_rank(&x, &y);
        assert!(out.p_value > 0.99, "p={}", out.p_value);
    }

    #[test]
    fn symmetric_differences_give_p_near_half() {
        // Differences alternate +d, -d with equal magnitudes -> W+ ~ W-.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let d = 0.01 + (i / 2) as f64 * 0.001;
            if i % 2 == 0 {
                x.push(0.5 + d);
                y.push(0.5);
            } else {
                x.push(0.5);
                y.push(0.5 + d);
            }
        }
        let out = wilcoxon_signed_rank(&x, &y);
        assert!((out.p_value - 0.5).abs() < 0.15, "p={}", out.p_value);
    }

    #[test]
    #[allow(clippy::approx_constant)] // 3.14 is textbook fixture data, not π
    fn known_small_example() {
        // Classic textbook example (Woolson): differences with known W+.
        let x = vec![1.83, 0.50, 1.62, 2.48, 1.68, 1.88, 1.55, 3.06, 1.30];
        let y = vec![0.878, 0.647, 0.598, 2.05, 1.06, 1.29, 1.06, 3.14, 1.29];
        let out = wilcoxon_signed_rank(&x, &y);
        // 8 positive differences of 9; W+ + W- = n(n+1)/2 = 45.
        assert_eq!(out.n_effective, 9);
        assert!((out.w_plus + out.w_minus - 45.0).abs() < 1e-9);
        assert!(out.p_value < 0.05, "p={}", out.p_value);
    }

    #[test]
    fn zero_differences_are_dropped() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 1.0, 1.0];
        let y = vec![0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 1.0, 1.0];
        let out = wilcoxon_signed_rank(&x, &y);
        assert_eq!(out.n_effective, 6);
    }

    #[test]
    fn too_few_pairs_returns_p_one() {
        let out = wilcoxon_signed_rank(&[1.0, 2.0], &[0.5, 1.0]);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_length_mismatch() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn erfc_sanity() {
        assert!((super::erfc(0.0) - 1.0).abs() < 1e-6);
        assert!(super::erfc(3.0) < 3e-5);
        assert!((super::erfc(-3.0) - 2.0).abs() < 3e-5);
        // Symmetry: erfc(-x) = 2 - erfc(x).
        for x in [0.3f64, 0.9, 1.7] {
            assert!((super::erfc(-x) - (2.0 - super::erfc(x))).abs() < 1e-6);
        }
    }

    #[test]
    fn normal_sf_median_is_half() {
        assert!((super::normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!(super::normal_sf(1.6449) - 0.05 < 1e-3);
    }
}

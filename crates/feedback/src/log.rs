//! The append-only feedback event log.
//!
//! [`FeedbackLog`] wraps a [`RotatingFileRecorder`] *instance* (not the
//! global observability sink): feedback is a data path that must keep
//! working whether or not tracing is enabled, and it must never share a
//! file with the request trace. Size rotation keeps at most two
//! generations on disk (`<path>` and `<path>.1`), the same bound the trace
//! logs honor, so an always-on ingestion endpoint cannot grow disk without
//! limit.
//!
//! Every record is stamped with the serving artifact's run-ledger key and
//! a log-local sequence number. The sequence counter and the write are
//! advanced under one lock, so file order equals sequence order — the
//! property that makes a log replay deterministic and lets
//! `obs-report check-feedback` demand a contiguous sequence.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use metadpa_obs::recorder::{Recorder, RotatingFileRecorder};

use crate::event::FeedbackEvent;

/// Append-only, size-rotated JSONL sink for [`FeedbackEvent`]s.
pub struct FeedbackLog {
    rec: RotatingFileRecorder,
    path: PathBuf,
    run_id: String,
    next_seq: Mutex<u64>,
}

impl FeedbackLog {
    /// Creates (truncating) the log at `path`, stamping every record with
    /// `run_id`. `max_bytes` is the rotation threshold
    /// ([`RotatingFileRecorder::DEFAULT_MAX_BYTES`] for servers).
    pub fn create(
        path: impl AsRef<Path>,
        run_id: &str,
        max_bytes: u64,
    ) -> std::io::Result<FeedbackLog> {
        let path = path.as_ref().to_path_buf();
        let rec = RotatingFileRecorder::create(&path, max_bytes)?;
        Ok(FeedbackLog { rec, path, run_id: run_id.to_string(), next_seq: Mutex::new(0) })
    }

    /// Where the active generation lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Where the rotated-out generation lives (`<path>.1`).
    pub fn rotated_path(&self) -> PathBuf {
        self.rec.rotated_path()
    }

    /// The run-ledger key stamped on every record.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Appends one validated event and returns its sequence number
    /// (contiguous from 1). Validation is the caller's job — the log
    /// stores whatever it is handed.
    pub fn append(&self, user: usize, item: usize, label: f32) -> u64 {
        let mut next = match self.next_seq.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *next += 1;
        let event = FeedbackEvent { seq: *next, user, item, label, run_id: self.run_id.clone() };
        // Recording under the sequence lock pins file order == seq order.
        self.rec.record(&event.to_record());
        *next
    }

    /// How many events have been appended (== the last assigned seq).
    pub fn appended(&self) -> u64 {
        match self.next_seq.lock() {
            Ok(g) => *g,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Flushes buffered records to disk.
    pub fn flush(&self) {
        self.rec.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::read_log;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("metadpa_fb_log_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn appends_are_sequenced_and_read_back_in_order() {
        let path = temp("seq");
        let log = FeedbackLog::create(&path, "run-x", 1 << 20).expect("create log");
        assert_eq!(log.append(0, 1, 1.0), 1);
        assert_eq!(log.append(1, 2, 0.0), 2);
        assert_eq!(log.append(0, 3, 1.0), 3);
        assert_eq!(log.appended(), 3);
        log.flush();
        let read = read_log(&path).expect("read back");
        assert_eq!(read.events.len(), 3);
        for (i, ev) in read.events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64 + 1);
            assert_eq!(ev.run_id, "run-x");
        }
        assert_eq!(read.events[1].user, 1);
        assert_eq!(read.events[2].item, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_keeps_the_tail_contiguous_across_generations() {
        let path = temp("rot");
        // A threshold small enough to force several rotations.
        let log = FeedbackLog::create(&path, "run-rot", 600).expect("create log");
        for i in 0..40 {
            log.append(i % 5, i, 1.0);
        }
        log.flush();
        let read = read_log(&path).expect("read back");
        assert!(read.interior_errors.is_empty(), "{:?}", read.interior_errors);
        // Two generations survive; the surviving window is contiguous and
        // ends at the last append.
        let seqs: Vec<u64> = read.events.iter().map(|e| e.seq).collect();
        assert_eq!(*seqs.last().expect("events survive"), 40);
        for w in seqs.windows(2) {
            assert_eq!(w[1], w[0] + 1, "gap in surviving sequence: {seqs:?}");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(log.rotated_path());
    }
}

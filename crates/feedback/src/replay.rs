//! Reading a feedback log back and replaying it through a sink.
//!
//! Replay is the determinism contract made executable: the same log,
//! driven through [`replay`] against the same artifact, performs the same
//! adaptation calls in the same order — and because the serve-time MAML
//! inner loop is bit-identical at any `METADPA_THREADS`, the resulting
//! adapted-parameter cache is bit-exact too. The live
//! [`crate::FeedbackAdapter`] runs the identical code path (one consumer,
//! log order), so "what the server built online" and "what a replay
//! rebuilds offline" are the same thing.

use std::path::Path;

use metadpa_obs::stream;

use crate::event::FeedbackEvent;
use crate::graduate::{GraduationConfig, GraduationState};

/// What the graduation machinery asks of the serving layer.
///
/// `crates/serve`'s `Engine` implements this (adaptation installs into the
/// adapted-parameter cache); keeping the trait here lets the feedback
/// crate stay free of serve dependencies while the adapter and replay
/// drive a real engine.
pub trait FeedbackSink: Send + Sync {
    /// Re-runs the trained MAML inner loop for `user` on `support` and
    /// installs the adapted parameters. `first` is true on the cold→warm
    /// crossing, false on refreshes.
    fn graduate(&self, user: usize, support: &[(usize, f32)], first: bool) -> Result<(), String>;

    /// Whether the serving layer's drift alert is currently raised.
    fn drift_alert(&self) -> bool {
        false
    }

    /// Drops every installed adaptation (drift reaction); returns how many
    /// entries were invalidated.
    fn invalidate_adapted(&self) -> usize {
        0
    }
}

/// A sink that accepts every graduation without doing anything — the
/// oracle behind [`expected_outcome`].
struct NullSink;

impl FeedbackSink for NullSink {
    fn graduate(&self, _: usize, _: &[(usize, f32)], _: bool) -> Result<(), String> {
        Ok(())
    }
}

/// A feedback log read back from disk (rotated generation first).
#[derive(Debug, Default)]
pub struct LogRead {
    /// Feedback events in log order.
    pub events: Vec<FeedbackEvent>,
    /// `(line, message)` for interior malformed lines, prefixed with the
    /// generation they came from — real corruption, never tail truncation.
    pub interior_errors: Vec<String>,
    /// Warnings for malformed final lines (crash/kill signatures).
    pub truncated_tails: Vec<String>,
    /// Parsed JSONL records that were not feedback events (foreign kinds).
    pub skipped: usize,
}

fn rotated_of(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".1");
    std::path::PathBuf::from(os)
}

/// Reads a feedback log leniently: the rotated generation (`<path>.1`,
/// when present) followed by the active file. Errors only when the active
/// file itself is unreadable.
pub fn read_log(path: impl AsRef<Path>) -> Result<LogRead, String> {
    let path = path.as_ref();
    let mut out = LogRead::default();
    let rotated = rotated_of(path);
    let mut generations = Vec::new();
    if rotated.exists() {
        generations.push(rotated);
    }
    generations.push(path.to_path_buf());
    for gen in generations {
        let read = stream::read_file_lenient(&gen)?;
        let label = gen.display().to_string();
        for (line, msg) in &read.errors {
            out.interior_errors.push(format!("{label}: line {line}: {msg}"));
        }
        if let Some(warn) = read.truncated_tail {
            out.truncated_tails.push(format!("{label}: {warn}"));
        }
        for ev in &read.events {
            match FeedbackEvent::from_stream(ev) {
                Some(fb) => out.events.push(fb),
                None => out.skipped += 1,
            }
        }
    }
    Ok(out)
}

/// Tallies of one replay (or of a live adapter run over the same log).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Feedback events consumed.
    pub events: u64,
    /// First-time cold→warm graduations performed.
    pub graduations: u64,
    /// Post-graduation re-adaptations on a fresher support window.
    pub refreshes: u64,
    /// Adaptation calls the sink rejected.
    pub errors: u64,
}

/// Drives `events` (in order) through a fresh graduation state machine,
/// calling `sink` for every adaptation decision.
pub fn replay(
    events: &[FeedbackEvent],
    cfg: GraduationConfig,
    sink: &dyn FeedbackSink,
) -> ReplayOutcome {
    let mut state = GraduationState::new(cfg);
    let mut out = ReplayOutcome::default();
    for ev in events {
        out.events += 1;
        if let Some(g) = state.ingest(ev) {
            match sink.graduate(g.user, &g.support, g.first) {
                Ok(()) if g.first => out.graduations += 1,
                Ok(()) => out.refreshes += 1,
                Err(_) => out.errors += 1,
            }
        }
    }
    out
}

/// The outcome a clean replay of `events` must produce — computed from the
/// log alone, with no model in the loop. `obs-report check-feedback` uses
/// this as its oracle against the live adapter's trace.
pub fn expected_outcome(events: &[FeedbackEvent], cfg: GraduationConfig) -> ReplayOutcome {
    replay(events, cfg, &NullSink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn ev(seq: u64, user: usize, item: usize) -> FeedbackEvent {
        FeedbackEvent { seq, user, item, label: 1.0, run_id: "run-t".into() }
    }

    /// One recorded graduation call: (user, support, first).
    type GraduateCall = (usize, Vec<(usize, f32)>, bool);

    /// Records every graduation call it receives.
    #[derive(Default)]
    struct RecordingSink {
        calls: Mutex<Vec<GraduateCall>>,
    }

    impl FeedbackSink for RecordingSink {
        fn graduate(
            &self,
            user: usize,
            support: &[(usize, f32)],
            first: bool,
        ) -> Result<(), String> {
            self.calls.lock().unwrap().push((user, support.to_vec(), first));
            Ok(())
        }
    }

    #[test]
    fn replay_counts_and_call_order_are_deterministic() {
        let events = vec![ev(1, 0, 1), ev(2, 1, 2), ev(3, 0, 3), ev(4, 0, 4), ev(5, 1, 5)];
        let cfg = GraduationConfig::with_threshold(2);
        let sink = RecordingSink::default();
        let outcome = replay(&events, cfg, &sink);
        assert_eq!(outcome, ReplayOutcome { events: 5, graduations: 2, refreshes: 1, errors: 0 });
        assert_eq!(outcome, expected_outcome(&events, cfg));
        let calls = sink.calls.lock().unwrap();
        assert_eq!(calls.len(), 3);
        assert_eq!((calls[0].0, calls[0].2), (0, true), "user 0 graduates at seq 3");
        assert_eq!((calls[1].0, calls[1].2), (0, false), "seq 4 refreshes user 0");
        assert_eq!((calls[2].0, calls[2].2), (1, true), "user 1 graduates at seq 5");
        assert_eq!(calls[1].1, vec![(3, 1.0), (4, 1.0)], "refresh uses the slid window");
    }

    #[test]
    fn sink_failures_are_tallied_not_fatal() {
        struct FailSink;
        impl FeedbackSink for FailSink {
            fn graduate(&self, _: usize, _: &[(usize, f32)], _: bool) -> Result<(), String> {
                Err("nope".into())
            }
        }
        let events = vec![ev(1, 0, 1), ev(2, 0, 2)];
        let outcome = replay(&events, GraduationConfig::with_threshold(2), &FailSink);
        assert_eq!(outcome.errors, 1);
        assert_eq!(outcome.graduations, 0);
    }
}

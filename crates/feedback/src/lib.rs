//! # metadpa-feedback
//!
//! Streaming implicit-feedback ingestion and online cold→warm graduation
//! for the MetaDPA serving stack.
//!
//! The offline pipeline trains a meta-learned cold-start model; this crate
//! closes the loop at serve time. Four pieces, each usable on its own:
//!
//! 1. [`event`] + [`log`] — the append-only feedback event log:
//!    [`FeedbackEvent`]s as JSONL records (the same framing as every obs
//!    stream, so the lenient reader and rotation semantics apply), written
//!    through a dedicated size-rotated sink, every record stamped with the
//!    serving artifact's run-ledger key and a contiguous sequence number.
//! 2. [`graduate`] — the pure graduation state machine: per-user event
//!    counts and sliding support windows decide, from the event sequence
//!    alone, when to re-run the trained MAML inner loop for a user.
//! 3. [`adapter`] — the live consumer: a background thread tails the log
//!    (rotation-aware), drives the state machine, calls a [`FeedbackSink`]
//!    (implemented by the serve engine) to install adapted parameters, and
//!    invalidates the cache on the rising edge of the drift alert.
//! 4. [`replay`] — the determinism contract made executable: replaying a
//!    recorded log through the same state machine against the same
//!    artifact reproduces the adapted cache bit-exactly at any
//!    `METADPA_THREADS`.
//!
//! The crate depends only on `metadpa-obs` (framing, metrics, events); the
//! model side arrives through the [`FeedbackSink`] trait, which keeps the
//! dependency arrow pointing from `metadpa-serve` to here, not back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod event;
pub mod graduate;
pub mod log;
pub mod replay;

pub use adapter::{AdapterConfig, AdapterStats, FeedbackAdapter};
pub use event::{FeedbackEvent, FEEDBACK_KIND, FEEDBACK_NAME};
pub use graduate::{Graduation, GraduationConfig, GraduationState, DEFAULT_THRESHOLD};
pub use log::FeedbackLog;
pub use replay::{expected_outcome, read_log, replay, FeedbackSink, LogRead, ReplayOutcome};

//! The event-log record of one implicit-feedback signal.
//!
//! Feedback records ride the same JSONL framing as every other
//! observability stream in the repo ([`metadpa_obs::recorder::Event`] out,
//! [`metadpa_obs::stream::StreamEvent`] back in), so the lenient stream
//! reader, rotation handling and `obs-report` tooling all apply unchanged.
//! What makes a line a feedback record is its `kind` ([`FEEDBACK_KIND`])
//! plus the four payload fields below; anything else in the file is
//! skipped by [`FeedbackEvent::from_stream`].

use metadpa_obs::json::JsonValue;
use metadpa_obs::recorder::Event;
use metadpa_obs::stream::StreamEvent;

/// Record `kind` of every feedback-log line.
pub const FEEDBACK_KIND: &str = "feedback";

/// Record `name` of every feedback-log line.
pub const FEEDBACK_NAME: &str = "feedback.event";

/// One implicit-feedback event as it appears in the log: a user interacted
/// with a catalogue item, with a label in the same `[0, 1]` convention the
/// training support sets use (1.0 = positive, 0.0 = negative/skip).
#[derive(Clone, Debug, PartialEq)]
pub struct FeedbackEvent {
    /// Log-assigned sequence number, contiguous from 1 within one log.
    pub seq: u64,
    /// Artifact user id the event is about.
    pub user: usize,
    /// Catalogue item id the user interacted with.
    pub item: usize,
    /// Implicit rating label (finite; validated before append).
    pub label: f32,
    /// Run-ledger key of the serving artifact the event was collected
    /// under — the lineage join point for feedback logs.
    pub run_id: String,
}

impl FeedbackEvent {
    /// Serializes the event as the JSONL record the log writes.
    pub fn to_record(&self) -> Event {
        let mut ev = Event::new(FEEDBACK_KIND, FEEDBACK_NAME);
        ev.push("seq", self.seq);
        ev.push("user", self.user);
        ev.push("item", self.item);
        ev.push("label", self.label);
        ev.push("run", self.run_id.as_str());
        ev
    }

    /// Decodes a parsed stream record back into an event; `None` for
    /// records of any other kind or with missing/mistyped payload fields.
    pub fn from_stream(ev: &StreamEvent) -> Option<FeedbackEvent> {
        if ev.kind != FEEDBACK_KIND {
            return None;
        }
        Some(FeedbackEvent {
            seq: ev.field_u64("seq")?,
            user: ev.field_u64("user")? as usize,
            item: ev.field_u64("item")? as usize,
            label: ev.field("label").and_then(JsonValue::as_f64)? as f32,
            run_id: ev.field("run").and_then(JsonValue::as_str).unwrap_or_default().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_obs::stream::parse_line;

    #[test]
    fn events_round_trip_through_the_jsonl_framing() {
        let ev = FeedbackEvent {
            seq: 7,
            user: 3,
            item: 11,
            label: 1.0,
            run_id: "run-0000000000000007-00000000cafef00d-1".into(),
        };
        let line = ev.to_record().to_json_line();
        let parsed = parse_line(&line).expect("record parses");
        assert_eq!(FeedbackEvent::from_stream(&parsed), Some(ev));
    }

    #[test]
    fn foreign_records_are_not_feedback_events() {
        let parsed = parse_line(r#"{"kind":"event","name":"x","t_ns":1,"seq":1}"#).unwrap();
        assert_eq!(FeedbackEvent::from_stream(&parsed), None);
        let missing =
            parse_line(r#"{"kind":"feedback","name":"feedback.event","t_ns":1,"seq":1}"#).unwrap();
        assert_eq!(FeedbackEvent::from_stream(&missing), None, "payload fields are required");
    }
}

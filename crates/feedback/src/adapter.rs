//! The background feedback adapter: tail the log, graduate users live,
//! react to drift.
//!
//! One consumer thread polls the event log ([`LogTailer`], rotation-aware)
//! and feeds complete lines through the same
//! [`GraduationState`]/[`FeedbackSink`] path that offline
//! [`crate::replay`] uses — single-threaded, in log order, so the adapted
//! cache the live adapter builds is bit-identical to what a replay of the
//! same log rebuilds.
//!
//! Drift reaction rides the same tick: on the rising edge of the sink's
//! drift alert the adapter invalidates every installed adaptation, bumps
//! `serve.feedback.invalidations` by the entry count, and emits a typed
//! `feedback.invalidation` event. Invalidation is deliberately *outside*
//! the replay determinism contract — it depends on live traffic, not the
//! log.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use metadpa_obs::stream;

use crate::event::FeedbackEvent;
use crate::graduate::{GraduationConfig, GraduationState};
use crate::replay::FeedbackSink;

/// Adapter tuning.
#[derive(Clone, Copy, Debug)]
pub struct AdapterConfig {
    /// When to graduate and how much support to adapt on.
    pub graduation: GraduationConfig,
    /// How long the consumer sleeps when the log has no new bytes.
    pub poll_interval: Duration,
}

impl Default for AdapterConfig {
    fn default() -> AdapterConfig {
        AdapterConfig {
            graduation: GraduationConfig::default(),
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Live counters the adapter thread maintains (all relaxed: they are
/// progress telemetry, not synchronization).
#[derive(Debug, Default)]
pub struct AdapterStats {
    processed: AtomicU64,
    last_seq: AtomicU64,
    graduations: AtomicU64,
    refreshes: AtomicU64,
    invalidations: AtomicU64,
    adapt_errors: AtomicU64,
    parse_errors: AtomicU64,
}

impl AdapterStats {
    /// Feedback events consumed so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Highest event sequence number consumed so far.
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// First-time cold→warm graduations performed.
    pub fn graduations(&self) -> u64 {
        self.graduations.load(Ordering::Relaxed)
    }

    /// Post-graduation re-adaptations.
    pub fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// Adapted-cache entries dropped by drift reactions.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Adaptation calls the sink rejected.
    pub fn adapt_errors(&self) -> u64 {
        self.adapt_errors.load(Ordering::Relaxed)
    }

    /// Complete lines that failed to parse (interior corruption).
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors.load(Ordering::Relaxed)
    }
}

/// Handle to the running adapter thread.
pub struct FeedbackAdapter {
    stats: Arc<AdapterStats>,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl FeedbackAdapter {
    /// Starts the consumer thread tailing `path`.
    pub fn spawn(
        path: impl AsRef<Path>,
        cfg: AdapterConfig,
        sink: Arc<dyn FeedbackSink>,
    ) -> FeedbackAdapter {
        let stats = Arc::new(AdapterStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let path = path.as_ref().to_path_buf();
        let handle = {
            let (stats, stop) = (Arc::clone(&stats), Arc::clone(&stop));
            std::thread::Builder::new()
                .name("feedback-adapter".into())
                .spawn(move || adapter_loop(path, cfg, sink, stats, stop))
                .expect("spawn feedback adapter thread")
        };
        FeedbackAdapter { stats, stop, handle }
    }

    /// The adapter's live counters.
    pub fn stats(&self) -> Arc<AdapterStats> {
        Arc::clone(&self.stats)
    }

    /// Blocks until the adapter has consumed event `seq` (or `timeout`
    /// elapses); returns whether it drained. The drain hook loadgen and
    /// tests use before reading final counters.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.stats.last_seq() >= seq {
                return true;
            }
            if Instant::now() >= deadline {
                return self.stats.last_seq() >= seq;
            }
            self.handle.thread().unpark();
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops the thread after one final drain of the log; returns the
    /// final counters.
    pub fn stop(self) -> Arc<AdapterStats> {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.thread().unpark();
        let _ = self.handle.join();
        self.stats
    }
}

fn adapter_loop(
    path: PathBuf,
    cfg: AdapterConfig,
    sink: Arc<dyn FeedbackSink>,
    stats: Arc<AdapterStats>,
    stop: Arc<AtomicBool>,
) {
    let mut tailer = LogTailer::new(path);
    let mut state = GraduationState::new(cfg.graduation);
    let mut prev_alert = false;
    loop {
        // Read the flag before draining so a stop request still gets one
        // final, complete pass over everything appended before it.
        let stopping = stop.load(Ordering::SeqCst);
        for line in tailer.poll() {
            process_line(&line, &mut state, sink.as_ref(), &stats);
        }
        let alert = sink.drift_alert();
        if alert && !prev_alert {
            let dropped = sink.invalidate_adapted();
            stats.invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
            metadpa_obs::counter_add!("serve.feedback.invalidations", dropped as u64);
            if metadpa_obs::enabled() {
                let mut ev = metadpa_obs::Event::new("event", "feedback.invalidation");
                ev.push("entries", dropped);
                metadpa_obs::emit(ev);
            }
        }
        prev_alert = alert;
        if stopping {
            return;
        }
        std::thread::park_timeout(cfg.poll_interval);
    }
}

fn process_line(
    line: &str,
    state: &mut GraduationState,
    sink: &dyn FeedbackSink,
    stats: &AdapterStats,
) {
    let Ok(raw) = stream::parse_line(line) else {
        stats.parse_errors.fetch_add(1, Ordering::Relaxed);
        metadpa_obs::counter_add!("serve.feedback.parse_errors", 1);
        return;
    };
    // Foreign record kinds in the file are not the adapter's business.
    let Some(ev) = FeedbackEvent::from_stream(&raw) else { return };
    stats.processed.fetch_add(1, Ordering::Relaxed);
    stats.last_seq.fetch_max(ev.seq, Ordering::Relaxed);
    let Some(g) = state.ingest(&ev) else { return };
    match sink.graduate(g.user, &g.support, g.first) {
        Ok(()) => {
            if g.first {
                stats.graduations.fetch_add(1, Ordering::Relaxed);
                metadpa_obs::counter_add!("serve.feedback.graduations", 1);
            } else {
                stats.refreshes.fetch_add(1, Ordering::Relaxed);
                metadpa_obs::counter_add!("serve.feedback.refreshes", 1);
            }
            if metadpa_obs::enabled() {
                let mut out = metadpa_obs::Event::new("event", "feedback.graduation");
                out.push("user", g.user);
                out.push("seq", g.seq);
                out.push("first", g.first);
                out.push("support", g.support.len());
                out.push("run_id", ev.run_id.as_str());
                metadpa_obs::emit(out);
            }
        }
        Err(why) => {
            stats.adapt_errors.fetch_add(1, Ordering::Relaxed);
            metadpa_obs::counter_add!("serve.feedback.errors", 1);
            if metadpa_obs::enabled() {
                let mut out = metadpa_obs::Event::new("event", "feedback.error");
                out.push("user", g.user);
                out.push("seq", g.seq);
                out.push("error", why);
                metadpa_obs::emit(out);
            }
        }
    }
}

/// Incremental reader over a size-rotated JSONL log.
///
/// Tracks a byte offset into the active file and carries partial lines
/// across polls, so it only ever yields complete lines. When the active
/// file shrinks under the offset — the writer rotated it to `<path>.1` —
/// the tailer first drains the remainder of the displaced generation from
/// the saved offset, then restarts the active file from the head: no line
/// is lost or seen twice across a rotation.
struct LogTailer {
    path: PathBuf,
    rotated: PathBuf,
    offset: u64,
    carry: String,
}

impl LogTailer {
    fn new(path: PathBuf) -> LogTailer {
        let mut os = path.as_os_str().to_os_string();
        os.push(".1");
        LogTailer { path, rotated: PathBuf::from(os), offset: 0, carry: String::new() }
    }

    /// Complete lines appended since the last poll.
    fn poll(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        let active_len = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if active_len < self.offset {
            // The active file was rotated out from under us: finish the
            // displaced generation, then start over at the new head.
            let rotated = self.rotated.clone();
            self.drain_from(&rotated, self.offset, &mut lines);
            self.offset = 0;
        }
        let path = self.path.clone();
        let consumed = self.drain_from(&path, self.offset, &mut lines);
        self.offset += consumed;
        lines
    }

    /// Reads `path` from `offset` to EOF, splitting complete lines into
    /// `lines` (partials stay in the carry). Returns bytes consumed; 0 on
    /// any I/O problem (the unchanged offset retries next poll).
    fn drain_from(&mut self, path: &Path, offset: u64, lines: &mut Vec<String>) -> u64 {
        let Ok(mut file) = std::fs::File::open(path) else { return 0 };
        if file.seek(SeekFrom::Start(offset)).is_err() {
            return 0;
        }
        let mut buf = String::new();
        let Ok(n) = file.read_to_string(&mut buf) else { return 0 };
        self.carry.push_str(&buf);
        while let Some(pos) = self.carry.find('\n') {
            let line: String = self.carry.drain(..=pos).collect();
            let line = line.trim_end();
            if !line.is_empty() {
                lines.push(line.to_string());
            }
        }
        n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::FeedbackLog;
    use std::sync::Mutex;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("metadpa_fb_adapt_{tag}_{}.jsonl", std::process::id()))
    }

    #[derive(Default)]
    struct RecordingSink {
        users: Mutex<Vec<(usize, bool)>>,
        alert: AtomicBool,
        dropped: AtomicU64,
    }

    impl FeedbackSink for RecordingSink {
        fn graduate(&self, user: usize, _: &[(usize, f32)], first: bool) -> Result<(), String> {
            self.users.lock().unwrap().push((user, first));
            Ok(())
        }
        fn drift_alert(&self) -> bool {
            self.alert.load(Ordering::SeqCst)
        }
        fn invalidate_adapted(&self) -> usize {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            3
        }
    }

    #[test]
    fn the_adapter_tails_graduates_and_reacts_to_drift() {
        let path = temp("live");
        let log = FeedbackLog::create(&path, "run-live", 1 << 20).expect("create log");
        let sink = Arc::new(RecordingSink::default());
        let cfg = AdapterConfig {
            graduation: GraduationConfig::with_threshold(2),
            poll_interval: Duration::from_millis(5),
        };
        let adapter =
            FeedbackAdapter::spawn(&path, cfg, Arc::clone(&sink) as Arc<dyn FeedbackSink>);

        // Two events graduate user 4; a third refreshes it.
        log.append(4, 0, 1.0);
        log.append(4, 1, 1.0);
        log.append(4, 2, 0.0);
        log.flush();
        assert!(adapter.wait_for_seq(3, Duration::from_secs(5)), "adapter drains the log");

        // Flip the drift alert: the rising edge invalidates exactly once.
        sink.alert.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(5);
        while adapter.stats().invalidations() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = adapter.stop();
        assert_eq!(stats.processed(), 3);
        assert_eq!(stats.graduations(), 1);
        assert_eq!(stats.refreshes(), 1);
        assert_eq!(stats.invalidations(), 3, "counter carries dropped entries");
        assert_eq!(sink.dropped.load(Ordering::SeqCst), 1, "edge-triggered, not level");
        assert_eq!(*sink.users.lock().unwrap(), vec![(4, true), (4, false)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn the_tailer_survives_rotation_without_losing_lines() {
        let path = temp("rot");
        // Tiny cap: rotations every few records.
        let log = FeedbackLog::create(&path, "run-rot", 500).expect("create log");
        let mut tailer = LogTailer::new(path.clone());
        let mut seen = Vec::new();
        for i in 0..30u64 {
            log.append((i % 3) as usize, i as usize, 1.0);
            log.flush();
            for line in tailer.poll() {
                let ev = stream::parse_line(&line).expect("complete line parses");
                seen.push(FeedbackEvent::from_stream(&ev).expect("feedback record").seq);
            }
        }
        for line in tailer.poll() {
            let ev = stream::parse_line(&line).expect("complete line parses");
            seen.push(FeedbackEvent::from_stream(&ev).expect("feedback record").seq);
        }
        let want: Vec<u64> = (1..=30).collect();
        assert_eq!(seen, want, "every record exactly once, in order, across rotations");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(log.rotated_path());
    }
}

//! The cold→warm graduation state machine.
//!
//! Pure bookkeeping, deliberately free of model code: it consumes
//! [`FeedbackEvent`]s in log order and decides *when* a user has enough
//! fresh implicit feedback to be worth a serve-time MAML adaptation, and
//! *which* events form the support set. Because the decision depends only
//! on the event sequence, feeding the same log through the machine always
//! produces the same adaptation calls — the heart of the replay
//! determinism contract.

use std::collections::{HashMap, VecDeque};

use crate::event::FeedbackEvent;

/// Default event-count threshold at which a user graduates.
pub const DEFAULT_THRESHOLD: usize = 5;

/// When to graduate and how much support to adapt on.
#[derive(Clone, Copy, Debug)]
pub struct GraduationConfig {
    /// A user graduates when their cumulative event count reaches this.
    pub threshold: usize,
    /// How many of the user's most recent events form the support set
    /// (each event past the threshold re-adapts on the fresh window).
    pub max_support: usize,
}

impl GraduationConfig {
    /// A config graduating at `threshold` events, adapting on the last
    /// `threshold` of them.
    pub fn with_threshold(threshold: usize) -> GraduationConfig {
        let threshold = threshold.max(1);
        GraduationConfig { threshold, max_support: threshold }
    }
}

impl Default for GraduationConfig {
    fn default() -> GraduationConfig {
        GraduationConfig::with_threshold(DEFAULT_THRESHOLD)
    }
}

/// One adaptation decision: adapt `user` on `support` now.
#[derive(Clone, Debug, PartialEq)]
pub struct Graduation {
    /// The user crossing (or re-crossing) the threshold.
    pub user: usize,
    /// Sequence number of the triggering event.
    pub seq: u64,
    /// `true` exactly once per user: the cold→warm crossing itself.
    /// Subsequent decisions are refreshes on a newer support window.
    pub first: bool,
    /// The support set to adapt on: the user's most recent events, in
    /// arrival order, capped at [`GraduationConfig::max_support`].
    pub support: Vec<(usize, f32)>,
}

#[derive(Debug, Default)]
struct UserState {
    recent: VecDeque<(usize, f32)>,
    count: u64,
    graduated: bool,
}

/// Per-user event bookkeeping; see the module docs.
pub struct GraduationState {
    cfg: GraduationConfig,
    users: HashMap<usize, UserState>,
}

impl GraduationState {
    /// An empty state machine.
    pub fn new(cfg: GraduationConfig) -> GraduationState {
        GraduationState { cfg, users: HashMap::new() }
    }

    /// The configuration this machine graduates under.
    pub fn config(&self) -> GraduationConfig {
        self.cfg
    }

    /// Consumes one event; returns the adaptation to perform, if any.
    /// Exactly at the threshold the decision has `first == true`; every
    /// event after that re-adapts (`first == false`) on the freshest
    /// support window.
    pub fn ingest(&mut self, ev: &FeedbackEvent) -> Option<Graduation> {
        let cfg = self.cfg;
        let st = self.users.entry(ev.user).or_default();
        if st.recent.len() == cfg.max_support {
            st.recent.pop_front();
        }
        st.recent.push_back((ev.item, ev.label));
        st.count += 1;
        if (st.count as usize) < cfg.threshold {
            return None;
        }
        let first = !st.graduated;
        st.graduated = true;
        Some(Graduation {
            user: ev.user,
            seq: ev.seq,
            first,
            support: st.recent.iter().copied().collect(),
        })
    }

    /// Cumulative event count seen for `user`.
    pub fn count(&self, user: usize) -> u64 {
        self.users.get(&user).map_or(0, |st| st.count)
    }

    /// How many users have graduated so far.
    pub fn graduated(&self) -> usize {
        self.users.values().filter(|st| st.graduated).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, user: usize, item: usize) -> FeedbackEvent {
        FeedbackEvent { seq, user, item, label: 1.0, run_id: "run-t".into() }
    }

    #[test]
    fn graduation_happens_exactly_at_the_threshold() {
        let mut state = GraduationState::new(GraduationConfig::with_threshold(3));
        assert_eq!(state.ingest(&ev(1, 0, 10)), None);
        assert_eq!(state.ingest(&ev(2, 0, 11)), None);
        let g = state.ingest(&ev(3, 0, 12)).expect("threshold crossing graduates");
        assert!(g.first);
        assert_eq!(g.support, vec![(10, 1.0), (11, 1.0), (12, 1.0)]);
        assert_eq!(state.graduated(), 1);

        // The next event refreshes on a slid window, not a new graduation.
        let g = state.ingest(&ev(4, 0, 13)).expect("post-threshold events refresh");
        assert!(!g.first);
        assert_eq!(g.support, vec![(11, 1.0), (12, 1.0), (13, 1.0)]);
        assert_eq!(state.graduated(), 1, "still one graduated user");
    }

    #[test]
    fn users_are_tracked_independently() {
        let mut state = GraduationState::new(GraduationConfig::with_threshold(2));
        assert_eq!(state.ingest(&ev(1, 0, 1)), None);
        assert_eq!(state.ingest(&ev(2, 1, 2)), None);
        assert!(state.ingest(&ev(3, 0, 3)).is_some_and(|g| g.first));
        assert_eq!(state.count(0), 2);
        assert_eq!(state.count(1), 1);
        assert_eq!(state.count(9), 0);
        assert_eq!(state.graduated(), 1);
    }
}

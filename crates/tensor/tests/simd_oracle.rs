//! Differential suite for the AVX2/FMA microkernels.
//!
//! The contract under test (DESIGN.md §14):
//!
//! * **Exact SIMD is bit-identical to the scalar kernels.** The default
//!   dispatch (`Policy::Auto` on an AVX2+FMA host) resolves to the
//!   exact-parity kernels, which keep per-element ascending-`k`
//!   accumulation and the zero-skip branch. Every result must match the
//!   forced-scalar path bit for bit — at every thread count — and both
//!   must match `metadpa_tensor::reference`, the textbook oracle.
//! * **Fused SIMD is deterministic and accurate.** `Policy::Fused`
//!   contracts each mul+add into one FMA rounding, so it is *not*
//!   bit-identical to scalar; it must still be bit-identical to itself
//!   across thread counts and within the documented epsilon of the
//!   reference product.
//!
//! On hosts without AVX2 every policy resolves to scalar and these tests
//! degenerate to scalar-vs-scalar identities — still valid, just vacuous.

use metadpa_tensor::pool::with_threads;
use metadpa_tensor::simd::{self, Policy};
use metadpa_tensor::{reference, Matrix, SeededRng};

/// Thread counts the suite compares against the serial scalar baseline.
const THREAD_GRID: [usize; 3] = [1, 2, 7];

/// Relative epsilon for fused-vs-reference comparisons. One FMA per
/// mul-add removes a rounding relative to the two-rounding scalar chain;
/// the worst-case divergence grows with `k`, and `k <= 512` here keeps it
/// comfortably inside this bound (see DESIGN.md §14 for the argument).
const FUSED_REL_EPS: f32 = 1e-4;

/// A matrix with planted zeros so the exact path's zero-skip branch (and
/// its signed-zero parity obligations) are exercised, mirroring the
/// post-ReLU activations the kernels see in training.
fn sparse_matrix(rng: &mut SeededRng, rows: usize, cols: usize) -> Matrix {
    let mut m = rng.normal_matrix(rows, cols);
    for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = 0.0;
        }
    }
    m
}

fn assert_bit_identical(name: &str, want: &Matrix, got: &Matrix, context: &str) {
    assert_eq!(want.shape(), got.shape(), "{name}: shape drift ({context})");
    for (i, (a, b)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: element {i} differs ({context}): {a} vs {b}");
    }
}

fn assert_close(name: &str, want: &Matrix, got: &Matrix, rel_eps: f32) {
    assert_eq!(want.shape(), got.shape(), "{name}: shape drift");
    for (i, (a, b)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        let tol = rel_eps * (1.0 + a.abs().max(b.abs()));
        assert!((a - b).abs() <= tol, "{name}: element {i} off by more than {tol}: {a} vs {b}");
    }
}

/// Shapes chosen to hit every corner of the SIMD drivers: full 16-wide
/// tiles, ragged right edges (n % 16 != 0), partial 6-row strips
/// (m % 6 != 0), k of 1, n of 1 (the scorer head), single rows, and
/// shapes big enough to engage the parallel row split.
fn shape_grid() -> Vec<(usize, usize, usize, u64)> {
    vec![
        (96, 64, 128, 11),  // all-full tiles and strips, parallel path
        (97, 33, 130, 23),  // ragged everywhere: m%6=1, n%16=2
        (6, 17, 16, 31),    // one exact strip, one exact tile
        (5, 8, 19, 41),     // single partial strip, ragged edge
        (64, 1, 48, 43),    // k=1: one accumulation step
        (128, 96, 1, 47),   // n=1: the scorer's final layer
        (1, 257, 9, 5),     // single row
        (13, 5, 3, 3),      // tiny: below every blocking threshold
        (160, 512, 64, 59), // deep k: accumulation-order stress
    ]
}

#[test]
fn exact_simd_matmul_is_bit_identical_to_scalar_at_every_thread_count() {
    for (m, k, n, seed) in shape_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, m, k);
        let b = rng.normal_matrix(k, n);
        let oracle = reference::matmul(&a, &b);
        let scalar = simd::with_policy(Policy::ForcedScalar, || with_threads(1, || a.matmul(&b)));
        assert_bit_identical("matmul", &oracle, &scalar, "scalar vs reference");
        for threads in THREAD_GRID {
            let auto = simd::with_policy(Policy::Auto, || with_threads(threads, || a.matmul(&b)));
            assert_bit_identical(
                "matmul",
                &scalar,
                &auto,
                &format!("{m}x{k}x{n} auto vs scalar, threads={threads}"),
            );
        }
    }
}

#[test]
fn exact_simd_matmul_tn_is_bit_identical_to_scalar_at_every_thread_count() {
    for (m, k, n, seed) in shape_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, k, m); // used as A^T: k x m
        let b = rng.normal_matrix(k, n);
        let oracle = reference::matmul_tn(&a, &b);
        let scalar =
            simd::with_policy(Policy::ForcedScalar, || with_threads(1, || a.matmul_tn(&b)));
        assert_bit_identical("matmul_tn", &oracle, &scalar, "scalar vs reference");
        for threads in THREAD_GRID {
            let auto =
                simd::with_policy(Policy::Auto, || with_threads(threads, || a.matmul_tn(&b)));
            assert_bit_identical(
                "matmul_tn",
                &scalar,
                &auto,
                &format!("{m}x{k}x{n} auto vs scalar, threads={threads}"),
            );
        }
    }
}

#[test]
fn exact_simd_matmul_nt_is_bit_identical_to_scalar_at_every_thread_count() {
    for (m, k, n, seed) in shape_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, m, k);
        let b = rng.normal_matrix(n, k);
        let oracle = reference::matmul_nt(&a, &b);
        let scalar =
            simd::with_policy(Policy::ForcedScalar, || with_threads(1, || a.matmul_nt(&b)));
        assert_bit_identical("matmul_nt", &oracle, &scalar, "scalar vs reference");
        for threads in THREAD_GRID {
            let auto =
                simd::with_policy(Policy::Auto, || with_threads(threads, || a.matmul_nt(&b)));
            assert_bit_identical(
                "matmul_nt",
                &scalar,
                &auto,
                &format!("{m}x{k}x{n} auto vs scalar, threads={threads}"),
            );
        }
    }
}

#[test]
fn signed_zero_products_keep_bit_parity_through_the_skip_branch() {
    // A zero entry in A can be skipped (scalar, exact SIMD) or multiplied
    // through (a ±0.0 product added to the accumulator); the exact SIMD
    // kernels must make the same choice as the scalar ones so results
    // match down to the sign bit. Plant the stress pattern: -0.0 entries
    // in A (the skip predicate treats them as zero), ±0.0 rows in B, and
    // rows whose products are all signed zeros.
    let mut a = Matrix::zeros(8, 4);
    let mut b = Matrix::zeros(4, 32);
    a.as_mut_slice()[0] = -1.0; // row 0: [-1, 0, 0, 0]
    a.as_mut_slice()[4 + 1] = 1.0; // row 1: [0, 1, 0, 0]
    a.as_mut_slice()[8] = -0.0; // row 2: [-0, 0, 0, 0] — skippable -0.0
    for j in 0..32 {
        b.as_mut_slice()[j] = 0.0; // b row 0 all +0.0 -> products are -0.0
        b.as_mut_slice()[32 + j] = -0.0; // b row 1 all -0.0
    }
    let scalar = simd::with_policy(Policy::ForcedScalar, || a.matmul(&b));
    let auto = simd::with_policy(Policy::Auto, || a.matmul(&b));
    assert_bit_identical("matmul", &scalar, &auto, "signed zeros");
    // Round-to-nearest keeps the accumulator at +0.0 through every
    // signed-zero product (+0.0 + -0.0 = +0.0), so the all-zero rows must
    // come out as exactly +0.0 on both paths — not -0.0.
    assert_eq!(scalar.as_slice()[0].to_bits(), 0.0f32.to_bits());
    assert_eq!(scalar.as_slice()[32 + 1].to_bits(), 0.0f32.to_bits());
}

#[test]
fn fused_simd_is_deterministic_and_within_epsilon_of_reference() {
    for (m, k, n, seed) in shape_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, m, k);
        let b = rng.normal_matrix(k, n);
        let oracle = reference::matmul(&a, &b);
        let fused = simd::with_policy(Policy::Fused, || with_threads(1, || a.matmul(&b)));
        assert_close("matmul[fused]", &oracle, &fused, FUSED_REL_EPS);
        for threads in THREAD_GRID {
            let par = simd::with_policy(Policy::Fused, || with_threads(threads, || a.matmul(&b)));
            assert_bit_identical(
                "matmul[fused]",
                &fused,
                &par,
                &format!("{m}x{k}x{n} fused self-consistency, threads={threads}"),
            );
        }
    }
}

#[test]
fn fused_transpose_kernels_stay_within_epsilon_of_reference() {
    let mut rng = SeededRng::new(91);
    let at = sparse_matrix(&mut rng, 96, 80); // A^T for tn
    let b = rng.normal_matrix(96, 112);
    let tn = simd::with_policy(Policy::Fused, || at.matmul_tn(&b));
    assert_close("matmul_tn[fused]", &reference::matmul_tn(&at, &b), &tn, FUSED_REL_EPS);

    let a = sparse_matrix(&mut rng, 80, 96);
    let bt = rng.normal_matrix(112, 96);
    let nt = simd::with_policy(Policy::Fused, || a.matmul_nt(&bt));
    assert_close("matmul_nt[fused]", &reference::matmul_nt(&a, &bt), &nt, FUSED_REL_EPS);
}

#[test]
fn forced_scalar_env_override_reaches_the_dispatcher() {
    // `METADPA_SIMD=off` is process-global (read once); the thread-local
    // policy override models the same forced-scalar resolution, so pin
    // that the two agree on what "scalar" produces: with the override in
    // place, Auto and ForcedScalar must emit identical bytes.
    let mut rng = SeededRng::new(101);
    let a = sparse_matrix(&mut rng, 64, 48);
    let b = rng.normal_matrix(48, 96);
    let forced = simd::with_policy(Policy::ForcedScalar, || a.matmul(&b));
    let nested = simd::with_policy(Policy::ForcedScalar, || {
        // A nested Auto cannot re-enable SIMD past a forced-scalar scope
        // in the dispatch ladder's own terms: resolution happens at the
        // matmul entry, under whatever policy is current there.
        a.matmul(&b)
    });
    assert_bit_identical("matmul", &forced, &nested, "forced-scalar scope");
}

/// Randomized shapes/seeds; opt-in because the offline build cannot carry
/// the `proptest` crate as a default dev-dependency (see
/// `tests/proptests.rs` for the convention).
#[cfg(feature = "proptest")]
mod randomized {
    use super::*;

    #[test]
    fn widened_grid_keeps_exact_simd_bit_identical() {
        let mut cases = Vec::new();
        for seed in 0u64..16 {
            let mut rng = SeededRng::new(seed * 37 + 5);
            let m = 1 + rng.gen_index(160);
            let k = 1 + rng.gen_index(192);
            let n = 1 + rng.gen_index(160);
            cases.push((m, k, n, seed));
        }
        for (m, k, n, seed) in cases {
            let mut rng = SeededRng::new(seed);
            let a = sparse_matrix(&mut rng, m, k);
            let b = rng.normal_matrix(k, n);
            let scalar = simd::with_policy(Policy::ForcedScalar, || a.matmul(&b));
            for threads in THREAD_GRID {
                let auto =
                    simd::with_policy(Policy::Auto, || with_threads(threads, || a.matmul(&b)));
                assert_bit_identical(
                    "matmul[randomized]",
                    &scalar,
                    &auto,
                    &format!("{m}x{k}x{n} threads={threads}"),
                );
            }
        }
    }
}

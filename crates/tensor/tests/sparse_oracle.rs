//! CSR-vs-dense-oracle bit-identity suite.
//!
//! Every sparse operation must agree **bit-for-bit** with the retained naive
//! kernels in `metadpa_tensor::reference` applied to the densified matrix,
//! and be bit-identical across `METADPA_THREADS ∈ {1, 2, 7}` (pinned here
//! via `pool::with_threads`, the same harness the dense determinism suite
//! uses). The fixed grid below always compiles; the randomized `proptest`
//! suite is opt-in (`--features proptest`), mirroring `tests/proptests.rs` —
//! the offline build environment cannot carry `proptest` as a default
//! dev-dependency.

use metadpa_tensor::{pool, reference, CsrBuilder, CsrMatrix, Matrix, SeededRng};

/// Deterministic sparse pattern: each of `m` rows keeps a column with
/// probability `density`.
fn random_pattern(rng: &mut SeededRng, m: usize, k: usize, density: f32) -> Vec<Vec<usize>> {
    (0..m).map(|_| (0..k).filter(|_| rng.uniform() < density).collect()).collect()
}

/// Fixed shape/density/seed grid standing in for proptest's generators.
/// Shapes straddle the empty-row, single-row, and parallel-dispatch regimes.
fn case_grid() -> Vec<(usize, usize, usize, f32, u64)> {
    let mut cases = Vec::new();
    for &(m, k, n) in &[(1, 1, 1), (3, 7, 2), (8, 16, 5), (17, 33, 9), (40, 64, 24)] {
        for &density in &[0.0f32, 0.15, 0.5, 1.0] {
            for seed in [0u64, 7, 42] {
                cases.push((m, k, n, density, seed));
            }
        }
    }
    cases
}

#[test]
fn construction_round_trips_bit_exactly() {
    for (m, k, _n, density, seed) in case_grid() {
        let mut rng = SeededRng::new(seed);
        let pattern = random_pattern(&mut rng, m, k, density);
        let csr = CsrMatrix::from_rows(k, &pattern);
        let dense = csr.to_dense();
        // Dense -> CSR -> dense is the identity, and the CSR forms agree.
        assert_eq!(CsrMatrix::scatter_from_dense(&dense), csr);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.nnz(), pattern.iter().map(Vec::len).sum::<usize>());
    }
}

#[test]
fn spmm_is_bit_identical_to_dense_oracle() {
    for (m, k, n, density, seed) in case_grid() {
        let mut rng = SeededRng::new(seed);
        let pattern = random_pattern(&mut rng, m, k, density);
        let csr = CsrMatrix::from_rows(k, &pattern);
        let b = rng.normal_matrix(k, n);
        let oracle = reference::matmul(&csr.to_dense(), &b);
        for threads in [1usize, 2, 7] {
            let got = pool::with_threads(threads, || csr.spmm_dense(&b));
            assert_eq!(
                got.as_slice(),
                oracle.as_slice(),
                "spmm mismatch m={m} k={k} n={n} density={density} seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn weighted_spmm_matches_oracle_across_threads() {
    for seed in [1u64, 9, 77] {
        let mut rng = SeededRng::new(seed);
        let mut b = CsrBuilder::new(24);
        for _ in 0..12 {
            let mut entries: Vec<(usize, f32)> = Vec::new();
            for c in 0..24 {
                if rng.uniform() < 0.3 {
                    let v = rng.normal();
                    if v != 0.0 {
                        entries.push((c, v));
                    }
                }
            }
            b.push_weighted_row(&entries);
        }
        let csr = b.finish();
        let dense_b = rng.normal_matrix(24, 7);
        let oracle = reference::matmul(&csr.to_dense(), &dense_b);
        for threads in [1usize, 2, 7] {
            let got = pool::with_threads(threads, || csr.spmm_dense(&dense_b));
            assert_eq!(got.as_slice(), oracle.as_slice(), "seed={seed} threads={threads}");
        }
    }
}

#[test]
fn spmm_parallel_path_is_bit_identical_to_serial() {
    // Large enough that nnz * n clears the 2^20-muladd parallel threshold,
    // so threads 2 and 7 take the pool path rather than the serial one.
    let mut rng = SeededRng::new(123);
    let pattern = random_pattern(&mut rng, 96, 512, 0.4);
    let csr = CsrMatrix::from_rows(512, &pattern);
    let b = rng.normal_matrix(512, 64);
    assert!(csr.nnz() * b.cols() >= 1 << 20, "case must reach the parallel dispatch");
    let serial = pool::with_threads(1, || csr.spmm_dense(&b));
    for threads in [2usize, 7] {
        let par = pool::with_threads(threads, || csr.spmm_dense(&b));
        assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
    }
}

#[test]
fn row_extraction_matches_dense_rows_bit_exactly() {
    for (m, k, _n, density, seed) in case_grid() {
        let mut rng = SeededRng::new(seed);
        let pattern = random_pattern(&mut rng, m, k, density);
        let csr = CsrMatrix::from_rows(k, &pattern);
        let dense = csr.to_dense();
        let mut buf = vec![f32::NAN; k];
        for r in 0..m {
            csr.row_to_dense_into(r, &mut buf);
            assert_eq!(&buf[..], dense.row(r), "row {r} m={m} k={k} seed={seed}");
        }
        // Batch gather agrees with the row-at-a-time path (reversed order
        // to catch index mixups) and reuses its workspace.
        let rows: Vec<usize> = (0..m).rev().collect();
        let mut ws = Matrix::default();
        csr.gather_rows_dense_into(&rows, &mut ws);
        for (local, &r) in rows.iter().enumerate() {
            assert_eq!(ws.row(local), dense.row(r));
        }
    }
}

#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: per-row sorted unique column lists for an `m x k` pattern.
    fn pattern(m: usize, k: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
        proptest::collection::vec(proptest::collection::btree_set(0..k, 0..=k), m)
            .prop_map(|rows| rows.into_iter().map(|s| s.into_iter().collect()).collect())
    }

    proptest! {
        #[test]
        fn csr_round_trip_and_spmm_match_oracle(
            m in 1usize..10,
            k in 1usize..16,
            n in 1usize..8,
            rows in (1usize..10, 1usize..16).prop_flat_map(|(m, k)| pattern(m, k)),
            seed in 0u64..1000,
        ) {
            // Clamp the independently drawn pattern onto (m, k).
            let rows: Vec<Vec<usize>> = rows
                .into_iter()
                .take(m)
                .map(|r| r.into_iter().filter(|&c| c < k).collect())
                .collect();
            let mut rows = rows;
            rows.resize(m, Vec::new());
            let csr = CsrMatrix::from_rows(k, &rows);
            let dense = csr.to_dense();
            prop_assert_eq!(CsrMatrix::scatter_from_dense(&dense), csr.clone());
            let mut rng = SeededRng::new(seed);
            let b = rng.normal_matrix(k, n);
            let oracle = reference::matmul(&dense, &b);
            for threads in [1usize, 2, 7] {
                let got = pool::with_threads(threads, || csr.spmm_dense(&b));
                prop_assert_eq!(got.as_slice(), oracle.as_slice());
            }
        }
    }
}

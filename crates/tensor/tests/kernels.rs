//! Bit-identity of the blocked/packed kernels vs the retained naive oracle.
//!
//! The cache-blocked kernels in `matrix.rs` must be *bit-identical* to the
//! naive reference kernels in `metadpa_tensor::reference` (the pre-blocking
//! implementations, kept verbatim) at every shape and thread count — that is
//! the whole argument for why PR 4's determinism contract survives the
//! blocking rewrite without re-pinning anything. The fixed grid below spans
//! every tile boundary (`MR = 4` rows, `NR = 16` register columns,
//! `JT = 128` panel columns) from 1x1 up to more than two tiles in each
//! dimension, plus shapes crossing the 2^20 mul-add serial/parallel
//! threshold. The `_into` variants must match their allocating counterparts
//! bit for bit under the same grid.

use metadpa_tensor::pool::with_threads;
use metadpa_tensor::{reference, Matrix, SeededRng};

const THREAD_GRID: [usize; 3] = [1, 2, 7];

/// A matrix with planted zeros (zero-skip path) from a seeded rng.
fn sparse_matrix(rng: &mut SeededRng, rows: usize, cols: usize) -> Matrix {
    let mut m = rng.normal_matrix(rows, cols);
    for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = 0.0;
        }
    }
    m
}

fn assert_bits(name: &str, want: &Matrix, got: &Matrix, ctx: &str) {
    assert_eq!(want.shape(), got.shape(), "{name}: shape drift ({ctx})");
    for (i, (a, b)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: element {i} differs ({ctx}): {a} vs {b}");
    }
}

/// Shapes spanning the tile boundaries: 1x1, below/at/above `MR` (4) rows,
/// below/at/above `NR` (16) and `JT` (128) columns, more than two tiles in
/// each dimension, and products crossing both the naive-dispatch floor
/// (2^12) and the serial/parallel threshold (2^20 mul-adds).
fn tile_boundary_grid() -> Vec<(usize, usize, usize, u64)> {
    let mut grid = Vec::new();
    let mut seed = 1u64;
    for &m in &[1usize, 3, 4, 5, 9] {
        for &k in &[1usize, 7, 64] {
            for &n in &[1usize, 15, 16, 17, 129, 260] {
                grid.push((m, k, n, seed));
                seed += 1;
            }
        }
    }
    // Beyond 2^20 mul-adds: the row-parallel path engages, and n spans >2
    // panels of JT = 128 in the last case.
    grid.push((128, 96, 128, 101));
    grid.push((160, 64, 160, 102));
    grid.push((300, 33, 280, 103));
    grid
}

#[test]
fn blocked_matmul_is_bit_identical_to_naive_reference() {
    for (m, k, n, seed) in tile_boundary_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, m, k);
        let b = rng.normal_matrix(k, n);
        let want = reference::matmul(&a, &b);
        for threads in THREAD_GRID {
            let got = with_threads(threads, || a.matmul(&b));
            assert_bits("matmul", &want, &got, &format!("{m}x{k}@{k}x{n} threads={threads}"));
        }
    }
}

#[test]
fn blocked_matmul_tn_is_bit_identical_to_naive_reference() {
    for (m, k, n, seed) in tile_boundary_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, k, m); // used as A^T: k x m
        let b = rng.normal_matrix(k, n);
        let want = reference::matmul_tn(&a, &b);
        for threads in THREAD_GRID {
            let got = with_threads(threads, || a.matmul_tn(&b));
            assert_bits("matmul_tn", &want, &got, &format!("{k}x{m}^T@{k}x{n} threads={threads}"));
        }
    }
}

#[test]
fn blocked_matmul_nt_is_bit_identical_to_naive_reference() {
    for (m, k, n, seed) in tile_boundary_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, m, k);
        let b = rng.normal_matrix(n, k);
        let want = reference::matmul_nt(&a, &b);
        for threads in THREAD_GRID {
            let got = with_threads(threads, || a.matmul_nt(&b));
            assert_bits("matmul_nt", &want, &got, &format!("{m}x{k}@{n}x{k}^T threads={threads}"));
        }
    }
}

#[test]
fn blocked_kernels_propagate_non_finite_values_like_the_reference() {
    // Non-finite values disable the zero-skip; blocked and naive paths must
    // produce the same NaN layout (NaN != NaN, so compare raw bits being
    // NaN at the same positions and exact bits elsewhere).
    let mut rng = SeededRng::new(42);
    let mut a = sparse_matrix(&mut rng, 9, 33);
    let mut b = rng.normal_matrix(33, 140);
    a.set(2, 5, f32::NAN);
    b.set(7, 130, f32::INFINITY);
    let want = reference::matmul(&a, &b);
    let got = a.matmul(&b);
    assert_eq!(want.shape(), got.shape());
    for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
        assert_eq!(w.is_nan(), g.is_nan(), "NaN layout must match");
        if !w.is_nan() {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }
}

#[test]
fn into_variants_are_bit_identical_to_allocating_counterparts() {
    for (m, k, n, seed) in tile_boundary_grid() {
        let mut rng = SeededRng::new(seed.wrapping_mul(7).wrapping_add(5));
        let a = sparse_matrix(&mut rng, m, k);
        let b = rng.normal_matrix(k, n);
        let bt = rng.normal_matrix(n, k);
        let at = rng.normal_matrix(k, m);
        // One reused output across the whole grid: stale shapes/values from
        // the previous case must never leak into the next result.
        let mut out = Matrix::zeros(3, 3);
        for threads in THREAD_GRID {
            let ctx = format!("{m}x{k}x{n} threads={threads}");
            with_threads(threads, || {
                a.matmul_into(&b, &mut out);
                assert_bits("matmul_into", &a.matmul(&b), &out, &ctx);
                at.matmul_tn_into(&b, &mut out);
                assert_bits("matmul_tn_into", &at.matmul_tn(&b), &out, &ctx);
                a.matmul_nt_into(&bt, &mut out);
                assert_bits("matmul_nt_into", &a.matmul_nt(&bt), &out, &ctx);
            });
        }
    }
}

#[test]
fn elementwise_into_variants_match_allocating_counterparts() {
    let mut rng = SeededRng::new(9);
    let a = sparse_matrix(&mut rng, 5, 37);
    let b = rng.normal_matrix(5, 37);
    let bias = rng.normal_matrix(1, 37);
    let mut out = Matrix::zeros(1, 1);

    a.map_into(|v| v.tanh(), &mut out);
    assert_bits("map_into", &a.map(|v| v.tanh()), &out, "5x37");
    a.zip_map_into(&b, |x, y| x * y + 1.0, &mut out);
    assert_bits("zip_map_into", &a.zip_map(&b, |x, y| x * y + 1.0), &out, "5x37");
    a.add_row_broadcast_into(&bias, &mut out);
    assert_bits("add_row_broadcast_into", &a.add_row_broadcast(&bias), &out, "5x37");
    a.sum_rows_into(&mut out);
    assert_bits("sum_rows_into", &a.sum_rows(), &out, "5x37");
    a.hstack_into(&b, &mut out);
    assert_bits("hstack_into", &a.hstack(&b), &out, "5x37");
    a.gather_rows_into(&[4, 0, 2, 2], &mut out);
    assert_bits("gather_rows_into", &a.gather_rows(&[4, 0, 2, 2]), &out, "5x37");

    let (mut l, mut r) = (Matrix::zeros(9, 9), Matrix::zeros(1, 1));
    a.hsplit_into(17, &mut l, &mut r);
    let (wl, wr) = a.hsplit(17);
    assert_bits("hsplit_into.left", &wl, &l, "5x37");
    assert_bits("hsplit_into.right", &wr, &r, "5x37");

    let mut c = a.clone();
    c.zip_map_inplace(&b, |x, y| x - 2.0 * y);
    assert_bits("zip_map_inplace", &a.zip_map(&b, |x, y| x - 2.0 * y), &c, "5x37");
    let mut d = a.clone();
    d.add_row_broadcast_inplace(&bias);
    assert_bits("add_row_broadcast_inplace", &a.add_row_broadcast(&bias), &d, "5x37");
}

/// Randomized shapes/seeds; opt-in because the offline build cannot carry
/// the `proptest` crate as a default dev-dependency (the same convention as
/// `tests/proptests.rs`). Until the dependency is restored the feature
/// widens the deterministic grid with seeded pseudo-random shapes.
#[cfg(feature = "proptest")]
mod randomized {
    use super::*;

    #[test]
    fn random_shapes_blocked_matches_naive_and_into() {
        for seed in 0u64..24 {
            let mut shape_rng = SeededRng::new(seed * 131 + 7);
            let m = 1 + shape_rng.gen_index(280);
            let k = 1 + shape_rng.gen_index(96);
            let n = 1 + shape_rng.gen_index(280);
            let mut rng = SeededRng::new(seed);
            let a = sparse_matrix(&mut rng, m, k);
            let b = rng.normal_matrix(k, n);
            let want = reference::matmul(&a, &b);
            let mut out = Matrix::zeros(1, 1);
            for threads in THREAD_GRID {
                let ctx = format!("{m}x{k}x{n} threads={threads}");
                with_threads(threads, || {
                    assert_bits("matmul[randomized]", &want, &a.matmul(&b), &ctx);
                    a.matmul_into(&b, &mut out);
                    assert_bits("matmul_into[randomized]", &want, &out, &ctx);
                });
            }
        }
    }
}

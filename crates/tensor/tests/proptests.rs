//! Property-based tests for the matrix algebra and sampling invariants.
//!
//! The randomized `proptest` suite is opt-in (`--features proptest`): the
//! build environment is offline, so the `proptest` crate cannot be a
//! default dev-dependency. To run it, restore `proptest = "1"` under
//! `[dev-dependencies]` and enable the feature. The `deterministic` module
//! below always compiles and exercises the same invariants over a fixed
//! grid of shapes and seeds.

use metadpa_tensor::{Matrix, SeededRng};

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
        assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "elements differ: {x} vs {y}");
    }
}

/// Fixed shape/seed grid standing in for proptest's generators.
fn dim_seed_grid() -> Vec<(usize, usize, usize, u64)> {
    let mut cases = Vec::new();
    for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 1, 5), (4, 4, 4), (3, 5, 2)] {
        for seed in [0u64, 1, 7, 42, 999] {
            cases.push((m, k, n, seed));
        }
    }
    cases
}

mod deterministic {
    use super::*;

    #[test]
    fn matmul_distributes_over_addition() {
        for (m, k, n, seed) in dim_seed_grid() {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(m, k);
            let b = rng.normal_matrix(k, n);
            let c = rng.normal_matrix(k, n);
            let lhs = a.matmul(&(&b + &c));
            let rhs = &a.matmul(&b) + &a.matmul(&c);
            assert_close(&lhs, &rhs, 1e-4);
        }
    }

    #[test]
    fn matmul_transpose_identity() {
        // (A B)^T == B^T A^T
        for (m, k, n, seed) in dim_seed_grid() {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(m, k);
            let b = rng.normal_matrix(k, n);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            assert_close(&lhs, &rhs, 1e-4);
        }
    }

    #[test]
    fn fused_transpose_products_agree() {
        for (m, k, n, seed) in dim_seed_grid() {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(k, m); // used as A^T
            let b = rng.normal_matrix(k, n);
            assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4);
            let c = rng.normal_matrix(m, k);
            let d = rng.normal_matrix(n, k);
            assert_close(&c.matmul_nt(&d), &c.matmul(&d.transpose()), 1e-4);
        }
    }

    #[test]
    fn transpose_is_involution() {
        for seed in [0u64, 3, 11] {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(4, 7);
            assert_eq!(a.transpose().transpose(), a);
        }
    }

    #[test]
    fn hstack_hsplit_roundtrip() {
        for seed in [0u64, 5, 17] {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(3, 4);
            let b = rng.normal_matrix(3, 2);
            let stacked = a.hstack(&b);
            let (l, r) = stacked.hsplit(4);
            assert_eq!(l, a);
            assert_eq!(r, b);
        }
    }

    #[test]
    fn sum_rows_preserves_total() {
        for seed in [0u64, 9, 23] {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(5, 3);
            let total: f32 = a.sum();
            let row_total: f32 = a.sum_rows().sum();
            let col_total: f32 = a.sum_cols().sum();
            assert!((total - row_total).abs() < 1e-3);
            assert!((total - col_total).abs() < 1e-3);
        }
    }

    #[test]
    fn scale_is_linear() {
        for (s, t) in [(0.5f32, -1.5f32), (-4.0, 4.0), (0.0, 3.25), (2.5, 2.5)] {
            let mut rng = SeededRng::new(13);
            let a = rng.normal_matrix(3, 3);
            let lhs = a.scale(s + t);
            let rhs = &a.scale(s) + &a.scale(t);
            assert_close(&lhs, &rhs, 1e-4);
        }
    }

    #[test]
    fn sample_indices_always_distinct() {
        for seed in [0u64, 1, 2, 100, 499] {
            for n in [1usize, 2, 7, 64, 199] {
                let mut rng = SeededRng::new(seed);
                let k = (n / 2).max(1);
                let mut s = rng.sample_indices(n, k);
                s.sort_unstable();
                let len_before = s.len();
                s.dedup();
                assert_eq!(s.len(), len_before);
                assert!(s.iter().all(|&i| i < n));
            }
        }
    }

    #[test]
    fn gather_rows_matches_manual() {
        let mut rng = SeededRng::new(29);
        let a = rng.normal_matrix(6, 3);
        for idx in [vec![0usize], vec![5, 0, 3], vec![2, 2, 2, 1], vec![1, 4, 0, 5, 3, 2]] {
            let g = a.gather_rows(&idx);
            for (out_row, &src) in idx.iter().enumerate() {
                assert_eq!(g.row(out_row), a.row(src));
            }
        }
    }
}

#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a matrix of the given shape with elements in [-10, 10].
    fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    /// Strategy: shape triple (m, k, n) for chained products.
    fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
        (1usize..6, 1usize..6, 1usize..6)
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_addition(
            (m, k, n) in dims(),
            seed in 0u64..1000,
        ) {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(m, k);
            let b = rng.normal_matrix(k, n);
            let c = rng.normal_matrix(k, n);
            let lhs = a.matmul(&(&b + &c));
            let rhs = &a.matmul(&b) + &a.matmul(&c);
            assert_close(&lhs, &rhs, 1e-4);
        }

        #[test]
        fn matmul_transpose_identity(
            (m, k, n) in dims(),
            seed in 0u64..1000,
        ) {
            // (A B)^T == B^T A^T
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(m, k);
            let b = rng.normal_matrix(k, n);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            assert_close(&lhs, &rhs, 1e-4);
        }

        #[test]
        fn fused_transpose_products_agree(
            (m, k, n) in dims(),
            seed in 0u64..1000,
        ) {
            let mut rng = SeededRng::new(seed);
            let a = rng.normal_matrix(k, m); // used as A^T
            let b = rng.normal_matrix(k, n);
            assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4);
            let c = rng.normal_matrix(m, k);
            let d = rng.normal_matrix(n, k);
            assert_close(&c.matmul_nt(&d), &c.matmul(&d.transpose()), 1e-4);
        }

        #[test]
        fn transpose_is_involution(a in matrix(4, 7)) {
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn hstack_hsplit_roundtrip(a in matrix(3, 4), b in matrix(3, 2)) {
            let stacked = a.hstack(&b);
            let (l, r) = stacked.hsplit(4);
            prop_assert_eq!(l, a);
            prop_assert_eq!(r, b);
        }

        #[test]
        fn sum_rows_preserves_total(a in matrix(5, 3)) {
            let total: f32 = a.sum();
            let row_total: f32 = a.sum_rows().sum();
            let col_total: f32 = a.sum_cols().sum();
            prop_assert!((total - row_total).abs() < 1e-3);
            prop_assert!((total - col_total).abs() < 1e-3);
        }

        #[test]
        fn scale_is_linear(a in matrix(3, 3), s in -5.0f32..5.0, t in -5.0f32..5.0) {
            let lhs = a.scale(s + t);
            let rhs = &a.scale(s) + &a.scale(t);
            assert_close(&lhs, &rhs, 1e-4);
        }

        #[test]
        fn sample_indices_always_distinct(seed in 0u64..500, n in 1usize..200) {
            let mut rng = SeededRng::new(seed);
            let k = (n / 2).max(1);
            let mut s = rng.sample_indices(n, k);
            s.sort_unstable();
            let len_before = s.len();
            s.dedup();
            prop_assert_eq!(s.len(), len_before);
            prop_assert!(s.iter().all(|&i| i < n));
        }

        #[test]
        fn gather_rows_matches_manual(a in matrix(6, 3), idx in proptest::collection::vec(0usize..6, 1..10)) {
            let g = a.gather_rows(&idx);
            for (out_row, &src) in idx.iter().enumerate() {
                prop_assert_eq!(g.row(out_row), a.row(src));
            }
        }
    }
}

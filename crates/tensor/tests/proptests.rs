//! Property-based tests for the matrix algebra and sampling invariants.

use metadpa_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with elements in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: shape triple (m, k, n) for chained products.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "elements differ: {x} vs {y}"
        );
    }
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        (m, k, n) in dims(),
        seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(m, k);
        let b = rng.normal_matrix(k, n);
        let c = rng.normal_matrix(k, n);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        assert_close(&lhs, &rhs, 1e-4);
    }

    #[test]
    fn matmul_transpose_identity(
        (m, k, n) in dims(),
        seed in 0u64..1000,
    ) {
        // (A B)^T == B^T A^T
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(m, k);
        let b = rng.normal_matrix(k, n);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_close(&lhs, &rhs, 1e-4);
    }

    #[test]
    fn fused_transpose_products_agree(
        (m, k, n) in dims(),
        seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = rng.normal_matrix(k, m); // used as A^T
        let b = rng.normal_matrix(k, n);
        assert_close(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-4);
        let c = rng.normal_matrix(m, k);
        let d = rng.normal_matrix(n, k);
        assert_close(&c.matmul_nt(&d), &c.matmul(&d.transpose()), 1e-4);
    }

    #[test]
    fn transpose_is_involution(a in matrix(4, 7)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hstack_hsplit_roundtrip(a in matrix(3, 4), b in matrix(3, 2)) {
        let stacked = a.hstack(&b);
        let (l, r) = stacked.hsplit(4);
        prop_assert_eq!(l, a);
        prop_assert_eq!(r, b);
    }

    #[test]
    fn sum_rows_preserves_total(a in matrix(5, 3)) {
        let total: f32 = a.sum();
        let row_total: f32 = a.sum_rows().sum();
        let col_total: f32 = a.sum_cols().sum();
        prop_assert!((total - row_total).abs() < 1e-3);
        prop_assert!((total - col_total).abs() < 1e-3);
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), s in -5.0f32..5.0, t in -5.0f32..5.0) {
        let lhs = a.scale(s + t);
        let rhs = &a.scale(s) + &a.scale(t);
        assert_close(&lhs, &rhs, 1e-4);
    }

    #[test]
    fn sample_indices_always_distinct(seed in 0u64..500, n in 1usize..200) {
        let mut rng = SeededRng::new(seed);
        let k = (n / 2).max(1);
        let mut s = rng.sample_indices(n, k);
        s.sort_unstable();
        let len_before = s.len();
        s.dedup();
        prop_assert_eq!(s.len(), len_before);
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn gather_rows_matches_manual(a in matrix(6, 3), idx in proptest::collection::vec(0usize..6, 1..10)) {
        let g = a.gather_rows(&idx);
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), a.row(src));
        }
    }
}

//! Bit-identity of the parallel kernels vs the serial code path.
//!
//! `METADPA_THREADS=1` is defined to be the exact serial code path, and the
//! pool's contract is that any other thread count produces bit-identical
//! results. These tests pin that contract with `Matrix: PartialEq` (exact
//! f32 equality, no tolerance) over shapes large enough to actually engage
//! the row-blocked parallel path, plus small shapes that exercise the
//! serial fallback. The `proptest` module widens the grid to randomized
//! shapes/seeds when the opt-in feature (and the restored `proptest`
//! dev-dependency) is available; the deterministic grid below always runs.

use metadpa_tensor::pool::with_threads;
use metadpa_tensor::{Matrix, SeededRng};

/// Thread counts the suite compares against the serial baseline.
const THREAD_GRID: [usize; 3] = [1, 2, 7];

/// A matrix with planted zeros so the zero-skip fast path is exercised.
fn sparse_matrix(rng: &mut SeededRng, rows: usize, cols: usize) -> Matrix {
    let mut m = rng.normal_matrix(rows, cols);
    for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
        if i % 7 == 0 {
            *v = 0.0;
        }
    }
    m
}

fn assert_bit_identical(name: &str, serial: &Matrix, threads: usize, parallel: &Matrix) {
    assert_eq!(serial.shape(), parallel.shape(), "{name}: shape drift at threads={threads}");
    for (i, (a, b)) in serial.as_slice().iter().zip(parallel.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}: element {i} differs at threads={threads}: {a} vs {b}"
        );
    }
}

/// Shapes spanning both sides of the parallel threshold: the large ones
/// engage row blocking, the small ones must take the serial fallback.
fn shape_grid() -> Vec<(usize, usize, usize, u64)> {
    vec![
        (128, 96, 128, 11), // ~1.6M mul-adds: parallel path
        (160, 64, 160, 23), // ~1.6M mul-adds, uneven row split at 7 threads
        (7, 5, 3, 3),       // serial fallback
        (1, 257, 9, 5),     // single row: always serial
    ]
}

#[test]
fn matmul_is_bit_identical_across_thread_counts() {
    for (m, k, n, seed) in shape_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, m, k);
        let b = rng.normal_matrix(k, n);
        let serial = with_threads(1, || a.matmul(&b));
        for threads in THREAD_GRID {
            let par = with_threads(threads, || a.matmul(&b));
            assert_bit_identical("matmul", &serial, threads, &par);
        }
    }
}

#[test]
fn matmul_tn_is_bit_identical_across_thread_counts() {
    for (m, k, n, seed) in shape_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, k, m); // used as A^T: k x m
        let b = rng.normal_matrix(k, n);
        let serial = with_threads(1, || a.matmul_tn(&b));
        for threads in THREAD_GRID {
            let par = with_threads(threads, || a.matmul_tn(&b));
            assert_bit_identical("matmul_tn", &serial, threads, &par);
        }
    }
}

#[test]
fn matmul_nt_is_bit_identical_across_thread_counts() {
    for (m, k, n, seed) in shape_grid() {
        let mut rng = SeededRng::new(seed);
        let a = sparse_matrix(&mut rng, m, k);
        let b = rng.normal_matrix(n, k);
        let serial = with_threads(1, || a.matmul_nt(&b));
        for threads in THREAD_GRID {
            let par = with_threads(threads, || a.matmul_nt(&b));
            assert_bit_identical("matmul_nt", &serial, threads, &par);
        }
    }
}

#[test]
fn parallel_kernels_agree_with_explicit_transpose_products() {
    // Cross-check the fused kernels against the plain kernel under
    // parallelism, not just against their own serial variants.
    let mut rng = SeededRng::new(77);
    let a = sparse_matrix(&mut rng, 96, 128);
    let b = rng.normal_matrix(96, 112);
    let fused = with_threads(7, || a.matmul_tn(&b));
    let explicit = with_threads(1, || a.transpose().matmul(&b));
    assert_eq!(fused.shape(), explicit.shape());
    for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
        assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
    }
}

/// Randomized shapes/seeds; opt-in because the offline build cannot carry
/// the `proptest` crate as a default dev-dependency (see
/// `tests/proptests.rs` for the convention).
#[cfg(feature = "proptest")]
mod randomized {
    use super::*;

    // proptest! { ... } — with the dependency restored this module swaps
    // the fixed grid for generated (m, k, n, seed) tuples. Until then the
    // feature only widens the deterministic grid.
    #[test]
    fn widened_grid_is_bit_identical() {
        let mut cases = Vec::new();
        for seed in 0u64..12 {
            let mut rng = SeededRng::new(seed * 31 + 1);
            let m = 1 + rng.gen_index(192);
            let k = 1 + rng.gen_index(128);
            let n = 1 + rng.gen_index(192);
            cases.push((m, k, n, seed));
        }
        for (m, k, n, seed) in cases {
            let mut rng = SeededRng::new(seed);
            let a = sparse_matrix(&mut rng, m, k);
            let b = rng.normal_matrix(k, n);
            let serial = with_threads(1, || a.matmul(&b));
            for threads in THREAD_GRID {
                let par = with_threads(threads, || a.matmul(&b));
                assert_bit_identical("matmul[randomized]", &serial, threads, &par);
            }
        }
    }
}

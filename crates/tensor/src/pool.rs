//! Deterministic scoped fan-out for the hot loops — std-only, no unsafe.
//!
//! Every parallel region in the repository goes through [`Pool`]: row-blocked
//! matmul kernels, per-task MAML inner loops, per-user evaluation scoring and
//! serve-side batch scoring. The design goals, in order:
//!
//! 1. **Bit-identical results at any thread count.** The pool only ever
//!    *partitions* independent work ([`Pool::partition`] yields contiguous
//!    index ranges) and hands results back **in task order**
//!    ([`Pool::map_tasks`]); it never reduces across tasks itself. As long as
//!    the per-task computation is independent and the caller folds results in
//!    task order, the floating-point operation order — and therefore every
//!    bit of the output — is identical to the serial code path.
//! 2. **`METADPA_THREADS=1` is the exact serial code path.** With one thread
//!    (or one task) no thread is spawned, no mutex is touched, and the tasks
//!    run in index order on the calling thread.
//! 3. **Zero dependencies, zero unsafe.** Workers are spawned per region with
//!    [`std::thread::scope`], so borrowed inputs cross into workers without
//!    `Arc` or unsafe; regions are sized by callers so spawn cost amortizes.
//!
//! Sizing: the global default comes from `METADPA_THREADS` (read once;
//! invalid or unset falls back to [`std::thread::available_parallelism`]).
//! [`with_threads`] overrides it for the current thread only, which is what
//! the determinism tests use to compare thread counts inside one process.
//! Pool workers run with an implicit `with_threads(1)` so nested parallel
//! regions (a matmul inside a parallel MAML task) never oversubscribe.
//!
//! Observability: each multi-threaded region bumps `pool.tasks` by the number
//! of tasks dispatched and `pool.steal` by the number of tasks that ran on a
//! spawned worker rather than the dispatching thread (tasks self-schedule off
//! a shared cursor, so a slow task shifts its neighbours to other threads).
//! Workers inherit the dispatching thread's span path via
//! [`metadpa_obs::span::inherit_root`], so spans opened inside tasks stay
//! nested under the dispatching span instead of forming detached roots.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Per-thread override installed by [`with_threads`]; 0 = no override.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The process-wide default thread count: `METADPA_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("METADPA_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

/// The thread count parallel regions opened on this thread will use:
/// the innermost [`with_threads`] override, else the `METADPA_THREADS`
/// default.
pub fn current_threads() -> usize {
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        env_threads()
    }
}

/// Runs `f` with the thread count for this thread pinned to `threads`,
/// restoring the previous value afterwards (also on panic). `1` forces the
/// exact serial code path; the determinism suite uses this to compare
/// thread counts without touching the process environment.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads >= 1, "pool::with_threads: thread count must be >= 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(threads);
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// A sized handle over the scoped fan-out primitives. Cheap to construct —
/// it is just a thread count; workers live only for the duration of each
/// [`Pool::map_tasks`] call.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool sized by [`current_threads`].
    pub fn current() -> Self {
        Self { threads: current_threads() }
    }

    /// A pool with an explicit size (>= 1 enforced by clamping).
    pub fn with_size(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// The number of threads parallel regions will use (including the
    /// dispatching thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..n_items` into at most `threads` contiguous ranges of
    /// near-equal length, in index order. The partition only controls which
    /// thread computes which block — per-item results never depend on it.
    pub fn partition(&self, n_items: usize) -> Vec<Range<usize>> {
        if n_items == 0 {
            return Vec::new();
        }
        let chunks = self.threads.min(n_items);
        let base = n_items / chunks;
        let extra = n_items % chunks;
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0;
        for c in 0..chunks {
            let len = base + usize::from(c < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Runs `f(0), f(1), ..., f(n_tasks - 1)` and returns the results in
    /// task order. With one thread (or one task) this is a plain in-order
    /// serial loop on the calling thread; otherwise tasks self-schedule off
    /// a shared cursor across the calling thread plus `threads - 1` scoped
    /// workers. Results are collected into per-task slots, so the return
    /// order — and any caller-side fold over it — is independent of thread
    /// scheduling.
    pub fn map_tasks<R: Send>(&self, n_tasks: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        if n_tasks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n_tasks);
        if workers <= 1 {
            return (0..n_tasks).map(f).collect();
        }
        metadpa_obs::counter_add!("pool.tasks", n_tasks as u64);
        let cursor = AtomicUsize::new(0);
        let stolen = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
        let parent = metadpa_obs::span::current_path();
        let request = metadpa_obs::span::current_request();
        let simd_policy = crate::simd::current_policy();
        let run = |on_worker: bool| {
            // Workers must not recursively fan out: a matmul inside a
            // parallel MAML task runs serially on its worker.
            with_threads(1, || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                if on_worker {
                    stolen.fetch_add(1, Ordering::Relaxed);
                }
                *slots[i].lock().expect("pool task slot poisoned") = Some(f(i));
            })
        };
        std::thread::scope(|scope| {
            for w in 1..workers {
                let parent = parent.clone();
                let run = &run;
                let builder = std::thread::Builder::new().name(format!("metadpa-pool-{w}"));
                builder
                    .spawn_scoped(scope, move || {
                        let _root = metadpa_obs::span::inherit_root(parent);
                        let _req = metadpa_obs::span::enter_request(request);
                        // Workers inherit the dispatching thread's SIMD
                        // policy, so a `simd::with_policy` scope covers
                        // matmuls inside fanned-out tasks too.
                        crate::simd::with_policy(simd_policy, || run(true));
                    })
                    .expect("pool: failed to spawn scoped worker");
            }
            run(false);
        });
        metadpa_obs::counter_add!("pool.steal", stolen.load(Ordering::Relaxed) as u64);
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("pool task slot poisoned")
                    .expect("pool: every task index is claimed exactly once")
            })
            .collect()
    }

    /// Runs `f` once per payload, statically assigning payload `i` to
    /// worker `i` (payload 0 runs on the dispatching thread). This is the
    /// primitive for work whose payloads *own* mutable state — the matmul
    /// kernels split the output buffer into disjoint `&mut` row slices and
    /// hand one to each task, so tiles are written in place with no private
    /// buffers or copies. Callers pass at most one payload per thread
    /// (payloads beyond `threads` still run, on the spawned workers'
    /// threads, but sequentially per worker index — [`Pool::partition`]
    /// produces the right count). Like every pool primitive, workers run
    /// with nested parallelism disabled and inherit the dispatching span.
    pub fn run_parts<T: Send>(&self, parts: Vec<T>, f: impl Fn(T) + Sync) {
        let n = parts.len();
        if n == 0 {
            return;
        }
        if self.threads <= 1 || n == 1 {
            for part in parts {
                with_threads(1, || f(part));
            }
            return;
        }
        metadpa_obs::counter_add!("pool.tasks", n as u64);
        metadpa_obs::counter_add!("pool.steal", (n - 1) as u64);
        let parent = metadpa_obs::span::current_path();
        let request = metadpa_obs::span::current_request();
        let simd_policy = crate::simd::current_policy();
        let mut iter = parts.into_iter();
        let first = iter.next().expect("run_parts: parts is non-empty");
        std::thread::scope(|scope| {
            for (w, part) in iter.enumerate() {
                let parent = parent.clone();
                let f = &f;
                let builder = std::thread::Builder::new().name(format!("metadpa-pool-{}", w + 1));
                builder
                    .spawn_scoped(scope, move || {
                        let _root = metadpa_obs::span::inherit_root(parent);
                        let _req = metadpa_obs::span::enter_request(request);
                        crate::simd::with_policy(simd_policy, || with_threads(1, || f(part)));
                    })
                    .expect("pool: failed to spawn scoped worker");
            }
            with_threads(1, || f(first));
        });
    }

    /// Partitions `0..n_items` into contiguous chunks (see
    /// [`Pool::partition`]) and maps `f` over the chunks, returning per-chunk
    /// results in chunk order. This is the row-blocking primitive the matmul
    /// kernels use: each chunk computes an independent output tile.
    pub fn map_chunks<R: Send>(
        &self,
        n_items: usize,
        f: impl Fn(Range<usize>) -> R + Sync,
    ) -> Vec<(Range<usize>, R)> {
        let ranges = self.partition(n_items);
        let results = self.map_tasks(ranges.len(), |c| f(ranges[c].clone()));
        ranges.into_iter().zip(results).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_indices_in_order() {
        let pool = Pool::with_size(3);
        let ranges = pool.partition(10);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        assert_eq!(Pool::with_size(4).partition(2).len(), 2, "never more chunks than items");
        assert!(Pool::with_size(4).partition(0).is_empty());
        assert_eq!(Pool::with_size(1).partition(5), vec![0..5]);
    }

    #[test]
    fn map_tasks_returns_results_in_task_order() {
        for threads in [1, 2, 7] {
            let pool = Pool::with_size(threads);
            let out = pool.map_tasks(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_tiles_cover_everything_once() {
        for threads in [1, 2, 7] {
            let pool = Pool::with_size(threads);
            let tiles = pool.map_chunks(17, |r| r.clone().collect::<Vec<usize>>());
            let flat: Vec<usize> = tiles.into_iter().flat_map(|(_, v)| v).collect();
            assert_eq!(flat, (0..17).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let ambient = current_threads();
        let seen = with_threads(5, current_threads);
        assert_eq!(seen, 5);
        assert_eq!(current_threads(), ambient);
        // Nested overrides restore in LIFO order.
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 3);
        });
    }

    #[test]
    fn workers_do_not_nest_parallelism() {
        let pool = Pool::with_size(4);
        let inner_counts = pool.map_tasks(8, |_| current_threads());
        assert!(
            inner_counts.iter().all(|&c| c == 1),
            "tasks must observe a serial pool: {inner_counts:?}"
        );
    }

    #[test]
    fn map_tasks_handles_empty_and_single() {
        let pool = Pool::with_size(4);
        assert!(pool.map_tasks(0, |i| i).is_empty());
        assert_eq!(pool.map_tasks(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn run_parts_writes_disjoint_slices_in_place() {
        for threads in [1, 2, 7] {
            let pool = Pool::with_size(threads);
            let mut out = vec![0usize; 17];
            let ranges = pool.partition(17);
            let mut parts: Vec<(Range<usize>, &mut [usize])> = Vec::new();
            let mut rest = out.as_mut_slice();
            for r in ranges {
                let (head, tail) = rest.split_at_mut(r.len());
                parts.push((r, head));
                rest = tail;
            }
            pool.run_parts(parts, |(range, slice)| {
                for (s, i) in slice.iter_mut().zip(range) {
                    *s = i * i;
                }
            });
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn run_parts_tasks_observe_serial_pool() {
        let pool = Pool::with_size(4);
        let counts = Mutex::new(Vec::new());
        pool.run_parts(vec![(), (), (), ()], |()| {
            counts.lock().unwrap().push(current_threads());
        });
        let counts = counts.into_inner().unwrap();
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|&c| c == 1), "nested parallelism must be off: {counts:?}");
    }
}

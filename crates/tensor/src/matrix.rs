//! Row-major dense `f32` matrix with shape-checked linear algebra.
//!
//! [`Matrix`] is the only tensor type in the reproduction: vectors are
//! represented as `1 x n` or `n x 1` matrices, and batches of user/item
//! vectors as `batch x dim` matrices (one example per row, the layout used
//! throughout `metadpa-nn`).

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major matrix of `f32` values.
///
/// Cloning is a deep copy; the type is deliberately *not* reference-counted
/// so aliasing bugs in backward passes are impossible.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ell = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ell)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    // ------------------------------------------------------------------
    // Shape and element access
    // ------------------------------------------------------------------

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix::get: index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix::set: index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = value;
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "Matrix::row: row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "Matrix::row_mut: row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "Matrix::col: column {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Iterates over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Gathers the given rows into a new matrix (rows may repeat).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows,
                "Matrix::gather_rows: row {src} out of bounds for {} rows",
                self.rows
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "Matrix::vstack: column mismatch {} vs {}",
            self.cols, other.cols
        );
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Concatenates `self` and `other` column-wise.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::hstack: row mismatch {} vs {}",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Splits the matrix column-wise at `at`, returning `(left, right)`.
    ///
    /// # Panics
    /// Panics if `at > cols`.
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "Matrix::hsplit: split point {at} beyond {} cols", self.cols);
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    // ------------------------------------------------------------------
    // Elementwise combinators
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two equal-shaped matrices elementwise with `f`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds `other * s` into `self` in place (axpy).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, s: f32) {
        self.assert_same_shape(other, "add_scaled_inplace");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * s;
        }
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_inplace(&mut self, other: &Matrix) {
        self.add_scaled_inplace(other, 1.0);
    }

    /// Fills the matrix with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    // ------------------------------------------------------------------
    // Broadcasting
    // ------------------------------------------------------------------

    /// Adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    /// Panics if `bias` is not `1 x cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert!(
            bias.rows == 1 && bias.cols == self.cols,
            "Matrix::add_row_broadcast: bias must be 1x{}, got {}x{}",
            self.cols,
            bias.rows,
            bias.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias.data.iter()) {
                *v += b;
            }
        }
        out
    }

    /// Sums all rows into a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (acc, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *acc += v;
            }
        }
        out
    }

    /// Sums each row into an `rows x 1` column vector.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "Matrix::max: empty matrix");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn min(&self) -> f32 {
        assert!(!self.data.is_empty(), "Matrix::min: empty matrix");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    // ------------------------------------------------------------------
    // Matrix multiplication
    // ------------------------------------------------------------------

    /// Matrix product `self @ other` (`m x k` times `k x n`).
    ///
    /// Implemented as an ikj loop over row slices so the inner loop is a
    /// contiguous fused multiply-add, which the compiler auto-vectorizes.
    /// Output rows are computed by [`matmul_rows`] — serially for small
    /// products, row-blocked across the [`crate::pool`] for large ones —
    /// and every row's operation order is fixed, so the result is
    /// bit-identical at any thread count.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "Matrix::matmul: inner dimension mismatch {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        metadpa_obs::counter_add!("tensor.matmul.calls", 1u64);
        metadpa_obs::counter_add!("tensor.matmul.flops", 2 * (m * k * n) as u64);
        let skip_zeros = zero_skip_allowed(self, other);
        let mut out = Matrix::zeros(m, n);
        let skipped = run_row_blocked(m, m * k * n, &mut out.data, n, |rows, tile| {
            matmul_rows(self, other, rows, skip_zeros, tile)
        });
        record_skipped(skipped, n);
        out
    }

    /// `self^T @ other` without materializing the transpose
    /// (`k x m`^T times `k x n` -> `m x n`).
    ///
    /// # Panics
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::matmul_tn: row mismatch {}x{} ^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        metadpa_obs::counter_add!("tensor.matmul.calls", 1u64);
        metadpa_obs::counter_add!("tensor.matmul.flops", 2 * (m * k * n) as u64);
        let skip_zeros = zero_skip_allowed(self, other);
        let mut out = Matrix::zeros(m, n);
        let skipped = run_row_blocked(m, m * k * n, &mut out.data, n, |rows, tile| {
            matmul_tn_rows(self, other, rows, skip_zeros, tile)
        });
        record_skipped(skipped, n);
        out
    }

    /// `self @ other^T` without materializing the transpose
    /// (`m x k` times `n x k`^T -> `m x n`).
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "Matrix::matmul_nt: column mismatch {}x{} @ {}x{}^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        metadpa_obs::counter_add!("tensor.matmul.calls", 1u64);
        metadpa_obs::counter_add!("tensor.matmul.flops", 2 * (m * k * n) as u64);
        let mut out = Matrix::zeros(m, n);
        run_row_blocked(m, m * k * n, &mut out.data, n, |rows, tile| {
            matmul_nt_rows(self, other, rows, tile);
            0
        });
        out
    }

    /// Dot product of two equal-length row-major matrices viewed as vectors.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn dot_flat(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.data.len(),
            other.data.len(),
            "Matrix::dot_flat: element count mismatch {} vs {}",
            self.data.len(),
            other.data.len()
        );
        self.data.iter().zip(other.data.iter()).map(|(&a, &b)| a * b).sum()
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "Matrix::{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

/// Work (in multiply-adds) below which a matmul stays serial: a scoped
/// worker costs on the order of tens of microseconds to spawn, so a row
/// block has to amortize that many times over before threads pay off. The
/// MAML inner loops and per-request serve scoring sit far below this and
/// never touch the pool; batch scoring and CVAE training sit above it.
const PAR_MIN_MULADDS: usize = 1 << 20;

/// Whether the `a == 0.0` fast path may elide additions for this product.
///
/// Skipping `0 · b` is only sound when `b`'s row is finite: `0 · NaN` and
/// `0 · ∞` are `NaN`, and eliding them silently converts a diverging
/// model's activations into clean-looking zeros. `other.all_finite()` is
/// hoisted out of the kernel — one scan instead of one per element — and is
/// only paid at all when `self` actually contains zeros. For finite `b` the
/// skip is bitwise safe: the accumulator starts at `+0.0` and IEEE-754
/// addition can never turn it into `-0.0`, so skipping a `± 0.0` addend
/// changes nothing.
fn zero_skip_allowed(a: &Matrix, b: &Matrix) -> bool {
    a.data.contains(&0.0) && b.all_finite()
}

/// Bumps the effective-FLOP counters for `skipped` elided row additions of
/// width `n`, so `obs-report` can show effective vs nominal FLOPs (the
/// `tensor.matmul.flops` counter is nominal `2·m·k·n`).
fn record_skipped(skipped: u64, n: usize) {
    if skipped > 0 {
        metadpa_obs::counter_add!("tensor.matmul.skipped_rows", skipped);
        metadpa_obs::counter_add!("tensor.matmul.flops_skipped", 2 * n as u64 * skipped);
    }
}

/// Runs `kernel` over all `m` output rows of a row-major `m x n` output,
/// either in one serial call or row-blocked across the pool. Each block
/// writes a private tile that is copied into `out` in block order, and the
/// kernels fix the per-row operation order, so serial and parallel results
/// are bit-identical. Returns the summed kernel return values (elided
/// zero-row additions).
fn run_row_blocked(
    m: usize,
    muladds: usize,
    out: &mut [f32],
    n: usize,
    kernel: impl Fn(std::ops::Range<usize>, &mut [f32]) -> u64 + Sync,
) -> u64 {
    let threads = crate::pool::current_threads();
    if threads <= 1 || m <= 1 || muladds < PAR_MIN_MULADDS {
        return kernel(0..m, out);
    }
    let pool = crate::pool::Pool::with_size(threads);
    let tiles = pool.map_chunks(m, |rows| {
        let mut tile = vec![0.0f32; rows.len() * n];
        let skipped = kernel(rows, &mut tile);
        (tile, skipped)
    });
    let mut total_skipped = 0u64;
    for (rows, (tile, skipped)) in tiles {
        out[rows.start * n..rows.end * n].copy_from_slice(&tile);
        total_skipped += skipped;
    }
    total_skipped
}

/// Computes output rows `rows` of `a @ b` into `out` (a dense tile of
/// `rows.len() * b.cols` elements). Shared by the serial and parallel paths
/// of [`Matrix::matmul`] so both execute the identical per-row operation
/// order. Returns the number of zero-skip row additions elided.
fn matmul_rows(
    a: &Matrix,
    b: &Matrix,
    rows: std::ops::Range<usize>,
    skip_zeros: bool,
    out: &mut [f32],
) -> u64 {
    let (k, n) = (a.cols, b.cols);
    let mut skipped = 0u64;
    for (local, i) in rows.enumerate() {
        let a_row = a.row(i);
        let out_row = &mut out[local * n..(local + 1) * n];
        for (p, &av) in a_row.iter().enumerate().take(k) {
            if skip_zeros && av == 0.0 {
                skipped += 1;
                continue;
            }
            let b_row = &b.data[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    skipped
}

/// Computes output rows `rows` of `a^T @ b` into `out`. Iterates `p` in
/// ascending order per output row, which accumulates each output element in
/// exactly the same order as the historical `p`-outer serial loop — the
/// loop interchange only reorders *independent* rows, never the additions
/// within one.
fn matmul_tn_rows(
    a: &Matrix,
    b: &Matrix,
    rows: std::ops::Range<usize>,
    skip_zeros: bool,
    out: &mut [f32],
) -> u64 {
    let (k, m, n) = (a.rows, a.cols, b.cols);
    let mut skipped = 0u64;
    for (local, i) in rows.enumerate() {
        let out_row = &mut out[local * n..(local + 1) * n];
        for p in 0..k {
            let av = a.data[p * m + i];
            if skip_zeros && av == 0.0 {
                skipped += 1;
                continue;
            }
            let b_row = &b.data[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    skipped
}

/// Computes output rows `rows` of `a @ b^T` into `out`. Per-element dot
/// products accumulate in ascending index order; there is no zero-skip
/// path (the accumulator form gains nothing from one).
fn matmul_nt_rows(a: &Matrix, b: &Matrix, rows: std::ops::Range<usize>, out: &mut [f32]) {
    let n = b.rows;
    for (local, i) in rows.enumerate() {
        let a_row = a.row(i);
        let out_row = &mut out[local * n..(local + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec())
    }

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_rows_repeats_and_reorders() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, m(3, 2, &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]));
    }

    #[test]
    fn hstack_vstack_hsplit_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (2, 3));
        let (l, r) = h.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
        let v = a.vstack(&a);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(2), a.row(0));
    }

    #[test]
    fn broadcast_and_row_sums() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let bias = Matrix::row_vector(&[10.0, 20.0, 30.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(out.row(1), &[14.0, 25.0, 36.0]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[5.0, 7.0, 9.0]));
        assert_eq!(a.sum_cols(), m(2, 1, &[6.0, 15.0]));
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, -2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b), m(1, 3, &[4.0, 10.0, 18.0]));
        assert_eq!(a.scale(2.0), m(1, 3, &[2.0, 4.0, 6.0]));
    }

    #[test]
    fn add_scaled_inplace_is_axpy() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let b = m(1, 2, &[2.0, 4.0]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a, m(1, 2, &[2.0, 3.0]));
    }

    #[test]
    fn matmul_propagates_nan_and_inf_past_zero_rows() {
        // 0 · NaN and 0 · ∞ are NaN; the zero-skip fast path must not
        // convert them to 0 (regression: a diverging model's activations
        // looked finite after multiplying by sparse inputs).
        let a = m(2, 2, &[0.0, 1.0, 2.0, 0.0]);
        let b_nan = m(2, 2, &[f32::NAN, 5.0, 6.0, 7.0]);
        let c = a.matmul(&b_nan);
        assert!(c.get(0, 0).is_nan(), "0·NaN must propagate, got {}", c.get(0, 0));
        assert!(c.get(1, 0).is_nan(), "NaN row times nonzero must propagate");
        let b_inf = m(2, 2, &[f32::INFINITY, 5.0, 6.0, 7.0]);
        let c = a.matmul(&b_inf);
        assert!(c.get(0, 0).is_nan(), "0·∞ is NaN, got {}", c.get(0, 0));
    }

    #[test]
    fn matmul_tn_propagates_nan_and_inf_past_zero_rows() {
        // a^T has a zero at (0,0) pairing with the NaN in b's first row.
        let a = m(2, 2, &[0.0, 2.0, 1.0, 0.0]);
        let b_nan = m(2, 2, &[f32::NAN, 5.0, 6.0, 7.0]);
        let c = a.matmul_tn(&b_nan);
        assert!(c.get(0, 0).is_nan(), "0·NaN must propagate through matmul_tn");
        let b_inf = m(2, 2, &[f32::INFINITY, 5.0, 6.0, 7.0]);
        let c = a.matmul_tn(&b_inf);
        assert!(c.get(0, 0).is_nan(), "0·∞ is NaN through matmul_tn");
    }

    #[test]
    fn matmul_nt_propagates_nan_and_inf() {
        let a = m(1, 2, &[0.0, 1.0]);
        let b_nan = m(2, 2, &[f32::NAN, 5.0, 6.0, 7.0]);
        let c = a.matmul_nt(&b_nan);
        assert!(c.get(0, 0).is_nan(), "0·NaN must propagate through matmul_nt");
        let b_inf = m(2, 2, &[f32::INFINITY, 1.0, 2.0, 3.0]);
        let c = a.matmul_nt(&b_inf);
        assert!(c.get(0, 0).is_nan(), "0·∞ is NaN through matmul_nt");
    }

    #[test]
    fn zero_skip_still_elides_work_for_finite_inputs() {
        // With finite operands the fast path stays on and the elided work
        // is counted so FLOP reports can show effective vs nominal.
        let _g = metadpa_obs::test_lock();
        let sink = std::sync::Arc::new(metadpa_obs::recorder::MemoryRecorder::default());
        metadpa_obs::enable(sink);
        let counter_value = |name: &str| {
            metadpa_obs::metrics::snapshot()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, snap)| match snap {
                    metadpa_obs::metrics::MetricSnapshot::Counter(v) => v,
                    other => panic!("expected counter, got {other:?}"),
                })
                .unwrap_or(0)
        };
        let skipped_before = counter_value("tensor.matmul.skipped_rows");
        let flops_skipped_before = counter_value("tensor.matmul.flops_skipped");
        let a = m(2, 2, &[0.0, 1.0, 2.0, 0.0]);
        let b = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 3, &[4.0, 5.0, 6.0, 2.0, 4.0, 6.0]));
        assert_eq!(
            counter_value("tensor.matmul.skipped_rows") - skipped_before,
            2,
            "two zero entries in a elide two row additions"
        );
        assert_eq!(
            counter_value("tensor.matmul.flops_skipped") - flops_skipped_before,
            2 * 3 * 2,
            "each skipped row elides 2·n flops"
        );
        metadpa_obs::disable();
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.all_finite());
        a.set(0, 1, f32::NAN);
        assert!(!a.all_finite());
    }

    #[test]
    fn dot_flat() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.dot_flat(&b), 70.0);
    }
}

//! Row-major dense `f32` matrix with shape-checked linear algebra.
//!
//! [`Matrix`] is the only tensor type in the reproduction: vectors are
//! represented as `1 x n` or `n x 1` matrices, and batches of user/item
//! vectors as `batch x dim` matrices (one example per row, the layout used
//! throughout `metadpa-nn`).
//!
//! Two API families matter for performance:
//!
//! * The matmul kernels are **cache-blocked and panel-packed** (see the
//!   "Kernel machinery" section at the bottom of this file and DESIGN §9).
//!   They are bit-identical to the naive kernels retained in
//!   [`crate::reference`] because blocking only re-tiles the independent
//!   `i`/`j` loops — every output element still accumulates its `k`-loop
//!   addends in ascending order.
//! * Every allocating operation that appears on a hot path has an `_into`
//!   twin writing into a caller-owned matrix whose storage (capacity) is
//!   reused across calls, so steady-state training and serving allocate
//!   nothing per op.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Add, Mul, Range, Sub};

/// A dense, row-major matrix of `f32` values.
///
/// Cloning is a deep copy; the type is deliberately *not* reference-counted
/// so aliasing bugs in backward passes are impossible.
#[derive(Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ell = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ell)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows x cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        // One bulk extend with an exact size hint instead of n per-element
        // pushes (each of which re-checks capacity).
        data.extend((0..n).map(|idx| f(idx / cols.max(1), idx % cols.max(1))));
        Self { rows, cols, data }
    }

    /// Creates a `1 x n` row vector from a slice.
    #[must_use]
    pub fn row_vector(values: &[f32]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates an `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    // ------------------------------------------------------------------
    // Shape and element access
    // ------------------------------------------------------------------

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix::get: index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix::set: index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = value;
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "Matrix::row: row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "Matrix::row_mut: row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "Matrix::col: column {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Iterates over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    // ------------------------------------------------------------------
    // Storage reuse
    // ------------------------------------------------------------------

    /// Reshapes to `rows x cols` reusing the existing allocation when the
    /// capacity suffices; element values are unspecified afterwards. This is
    /// the primitive every `_into` op that overwrites all elements uses.
    fn reset_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Public form of the overwrite reset, for callers that assemble a
    /// matrix row by row into a reused buffer (e.g. batch builders). Element
    /// values are **unspecified** after the call — the caller must write
    /// every element before reading any.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.reset_for_overwrite(rows, cols);
    }

    /// Reshapes to `rows x cols` (reusing capacity) and zero-fills; used by
    /// the accumulating matmul kernels.
    fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `src`'s shape and contents into `self`, reusing `self`'s
    /// allocation when possible — a `clone_from` that never shrinks capacity.
    pub fn assign(&mut self, src: &Matrix) {
        self.reset_for_overwrite(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Gathers the given rows into a new matrix (rows may repeat).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::default();
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::gather_rows`] into a reused output matrix.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.reset_for_overwrite(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows,
                "Matrix::gather_rows: row {src} out of bounds for {} rows",
                self.rows
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    #[must_use]
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "Matrix::vstack: column mismatch {} vs {}",
            self.cols, other.cols
        );
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Concatenates `self` and `other` column-wise.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    #[must_use]
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.hstack_into(other, &mut out);
        out
    }

    /// [`Matrix::hstack`] into a reused output matrix.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::hstack: row mismatch {} vs {}",
            self.rows, other.rows
        );
        out.reset_for_overwrite(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
    }

    /// Splits the matrix column-wise at `at`, returning `(left, right)`.
    ///
    /// # Panics
    /// Panics if `at > cols`.
    #[must_use]
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        let (mut left, mut right) = (Matrix::default(), Matrix::default());
        self.hsplit_into(at, &mut left, &mut right);
        (left, right)
    }

    /// [`Matrix::hsplit`] into two reused output matrices.
    ///
    /// # Panics
    /// Panics if `at > cols`.
    pub fn hsplit_into(&self, at: usize, left: &mut Matrix, right: &mut Matrix) {
        assert!(at <= self.cols, "Matrix::hsplit: split point {at} beyond {} cols", self.cols);
        left.reset_for_overwrite(self.rows, at);
        right.reset_for_overwrite(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
    }

    // ------------------------------------------------------------------
    // Elementwise combinators
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// [`Matrix::map`] into a reused output matrix.
    pub fn map_into(&self, f: impl Fn(f32) -> f32, out: &mut Matrix) {
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        out.reset_for_overwrite(self.rows, self.cols);
        for (o, &v) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(v);
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two equal-shaped matrices elementwise with `f`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// [`Matrix::zip_map`] into a reused output matrix.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_map_into(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32, out: &mut Matrix) {
        self.assert_same_shape(other, "zip_map");
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        out.reset_for_overwrite(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = f(a, b);
        }
    }

    /// Combines `self` with `other` elementwise in place
    /// (`self[i] = f(self[i], other[i])`).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_map_inplace(&mut self, other: &Matrix, f: impl Fn(f32, f32) -> f32) {
        self.assert_same_shape(other, "zip_map_inplace");
        metadpa_obs::counter_add!("tensor.elementwise.ops", self.data.len() as u64);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, b);
        }
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    /// Panics if shapes differ.
    #[must_use]
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    #[must_use]
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds `other * s` into `self` in place (axpy).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, s: f32) {
        self.assert_same_shape(other, "add_scaled_inplace");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * s;
        }
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_inplace(&mut self, other: &Matrix) {
        self.add_scaled_inplace(other, 1.0);
    }

    /// Fills the matrix with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    // ------------------------------------------------------------------
    // Broadcasting
    // ------------------------------------------------------------------

    /// Adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    /// Panics if `bias` is not `1 x cols`.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.add_row_broadcast_into(bias, &mut out);
        out
    }

    /// [`Matrix::add_row_broadcast`] into a reused output matrix.
    ///
    /// # Panics
    /// Panics if `bias` is not `1 x cols`.
    pub fn add_row_broadcast_into(&self, bias: &Matrix, out: &mut Matrix) {
        out.assign(self);
        out.add_row_broadcast_inplace(bias);
    }

    /// Adds a `1 x cols` row vector to every row of `self` in place.
    ///
    /// # Panics
    /// Panics if `bias` is not `1 x cols`.
    pub fn add_row_broadcast_inplace(&mut self, bias: &Matrix) {
        assert!(
            bias.rows == 1 && bias.cols == self.cols,
            "Matrix::add_row_broadcast: bias must be 1x{}, got {}x{}",
            self.cols,
            bias.rows,
            bias.cols
        );
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias.data.iter()) {
                *v += b;
            }
        }
    }

    /// Sums all rows into a `1 x cols` row vector.
    #[must_use]
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::default();
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Matrix::sum_rows`] into a reused output matrix.
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.reset_zeroed(1, self.cols);
        for r in 0..self.rows {
            for (acc, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *acc += v;
            }
        }
    }

    /// Sums each row into an `rows x 1` column vector.
    #[must_use]
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "Matrix::max: empty matrix");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn min(&self) -> f32 {
        assert!(!self.data.is_empty(), "Matrix::min: empty matrix");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    // ------------------------------------------------------------------
    // Matrix multiplication
    // ------------------------------------------------------------------

    /// Matrix product `self @ other` (`m x k` times `k x n`).
    ///
    /// Dispatches to the cache-blocked, B-panel-packed kernel for non-tiny
    /// shapes and to the retained [`crate::reference`] kernel below
    /// `NAIVE_MAX_MULADDS`; both accumulate each output element over `p` in
    /// ascending order, so the result is bit-identical regardless of the
    /// path taken — and bit-identical at any thread count, since the
    /// parallel path only partitions output rows.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a reused output matrix.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "Matrix::matmul: inner dimension mismatch {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        metadpa_obs::counter_add!("tensor.matmul.calls", 1u64);
        metadpa_obs::counter_add!("tensor.matmul.flops", 2 * (m * k * n) as u64);
        let skip_zeros = zero_skip_allowed(self, other);
        let skipped = if skip_zeros { count_zeros(&self.data) } else { 0 };
        out.reset_zeroed(m, n);
        if m * k * n < NAIVE_MAX_MULADDS {
            metadpa_obs::counter_add!("tensor.matmul.dispatch.serial", 1u64);
            crate::reference::matmul_rows(self, other, 0..m, skip_zeros, &mut out.data);
        } else {
            metadpa_obs::counter_add!("tensor.matmul.dispatch.blocked", 1u64);
            let path = crate::simd::resolve_and_count();
            if path == crate::simd::Path::Scalar {
                with_b_panels(&other.data, k, n, |panels, panel_w| {
                    run_rows(m, m * k * n, &mut out.data, n, |rows, tile| {
                        let arows = &self.data[rows.start * k..rows.end * k];
                        blocked_rows(arows, rows.len(), k, panels, panel_w, n, skip_zeros, tile);
                    });
                });
            } else {
                crate::simd::with_b_tiles(&other.data, k, n, |tiles| {
                    run_rows(m, m * k * n, &mut out.data, n, |rows, tile| {
                        let arows = &self.data[rows.start * k..rows.end * k];
                        crate::simd::blocked_rows_simd(
                            arows,
                            rows.len(),
                            k,
                            tiles,
                            n,
                            skip_zeros,
                            path.fused(),
                            tile,
                        );
                    });
                });
            }
        }
        record_skipped(skipped, n);
    }

    /// `self^T @ other` without materializing the transpose
    /// (`k x m`^T times `k x n` -> `m x n`).
    ///
    /// # Panics
    /// Panics if `self.rows != other.rows`.
    #[must_use]
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] into a reused output matrix.
    ///
    /// # Panics
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::matmul_tn: row mismatch {}x{} ^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        metadpa_obs::counter_add!("tensor.matmul.calls", 1u64);
        metadpa_obs::counter_add!("tensor.matmul.flops", 2 * (m * k * n) as u64);
        let skip_zeros = zero_skip_allowed(self, other);
        let skipped = if skip_zeros { count_zeros(&self.data) } else { 0 };
        out.reset_zeroed(m, n);
        if m * k * n < NAIVE_MAX_MULADDS {
            metadpa_obs::counter_add!("tensor.matmul.dispatch.serial", 1u64);
            crate::reference::matmul_tn_rows(self, other, 0..m, skip_zeros, &mut out.data);
        } else {
            metadpa_obs::counter_add!("tensor.matmul.dispatch.blocked", 1u64);
            let path = crate::simd::resolve_and_count();
            if path == crate::simd::Path::Scalar {
                with_b_panels(&other.data, k, n, |panels, panel_w| {
                    run_rows(m, m * k * n, &mut out.data, n, |rows, tile| {
                        // The transposed operand is accessed with stride `m`;
                        // pack this task's A^T rows contiguous once, then run
                        // the same blocked kernel as the NN case.
                        PACK_A.with(|buf| {
                            let mut apack = buf.borrow_mut();
                            pack_at_rows(&self.data, k, m, rows.clone(), &mut apack);
                            blocked_rows(
                                &apack,
                                rows.len(),
                                k,
                                panels,
                                panel_w,
                                n,
                                skip_zeros,
                                tile,
                            );
                        });
                    });
                });
            } else {
                crate::simd::with_b_tiles(&other.data, k, n, |tiles| {
                    run_rows(m, m * k * n, &mut out.data, n, |rows, tile| {
                        PACK_A.with(|buf| {
                            let mut apack = buf.borrow_mut();
                            pack_at_rows(&self.data, k, m, rows.clone(), &mut apack);
                            crate::simd::blocked_rows_simd(
                                &apack,
                                rows.len(),
                                k,
                                tiles,
                                n,
                                skip_zeros,
                                path.fused(),
                                tile,
                            );
                        });
                    });
                });
            }
        }
        record_skipped(skipped, n);
    }

    /// `self @ other^T` without materializing the transpose
    /// (`m x k` times `n x k`^T -> `m x n`).
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols`.
    #[must_use]
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] into a reused output matrix.
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "Matrix::matmul_nt: column mismatch {}x{} @ {}x{}^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        metadpa_obs::counter_add!("tensor.matmul.calls", 1u64);
        metadpa_obs::counter_add!("tensor.matmul.flops", 2 * (m * k * n) as u64);
        out.reset_zeroed(m, n);
        // Packing B^T costs k*n writes, amortized over the m output rows —
        // worth it only when there are at least a few rows to amortize over.
        if m * k * n < NAIVE_MAX_MULADDS || m < MR {
            metadpa_obs::counter_add!("tensor.matmul.dispatch.serial", 1u64);
            crate::reference::matmul_nt_rows(self, other, 0..m, &mut out.data);
        } else {
            metadpa_obs::counter_add!("tensor.matmul.dispatch.blocked", 1u64);
            let path = crate::simd::resolve_and_count();
            if path == crate::simd::Path::Scalar {
                with_bt_panels(&other.data, k, n, |panels, panel_w| {
                    run_rows(m, m * k * n, &mut out.data, n, |rows, tile| {
                        let arows = &self.data[rows.start * k..rows.end * k];
                        // No zero-skip: the nt form never had one, and eliding
                        // terms here would change which elements see 0·NaN.
                        blocked_rows(arows, rows.len(), k, panels, panel_w, n, false, tile);
                    });
                });
            } else {
                crate::simd::with_bt_tiles(&other.data, k, n, |tiles| {
                    run_rows(m, m * k * n, &mut out.data, n, |rows, tile| {
                        let arows = &self.data[rows.start * k..rows.end * k];
                        crate::simd::blocked_rows_simd(
                            arows,
                            rows.len(),
                            k,
                            tiles,
                            n,
                            false,
                            path.fused(),
                            tile,
                        );
                    });
                });
            }
        }
    }

    /// Dot product of two equal-length row-major matrices viewed as vectors.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn dot_flat(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.data.len(),
            other.data.len(),
            "Matrix::dot_flat: element count mismatch {} vs {}",
            self.data.len(),
            other.data.len()
        );
        self.data.iter().zip(other.data.iter()).map(|(&a, &b)| a * b).sum()
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "Matrix::{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

// ----------------------------------------------------------------------
// Kernel machinery (see DESIGN §9 for the memory model)
// ----------------------------------------------------------------------

/// Work (in multiply-adds) below which a matmul stays serial: a scoped
/// worker costs on the order of tens of microseconds to spawn, so a row
/// block has to amortize that many times over before threads pay off. The
/// MAML inner loops and per-request serve scoring sit far below this and
/// never touch the pool; batch scoring and CVAE training sit above it.
const PAR_MIN_MULADDS: usize = 1 << 20;

/// Work below which the blocked kernel (packing + register tiling) costs
/// more than it saves and the product routes to the retained naive kernel
/// in [`crate::reference`] instead. Safe at any value: both kernels
/// accumulate each output element in the same order, so the dispatch choice
/// never changes a single bit of the result.
const NAIVE_MAX_MULADDS: usize = 1 << 12;

/// Width (in f32 columns) of one packed B panel. `k x JT` floats per panel:
/// at the repo's typical `k <= 512` a panel stays under 256 KiB and
/// L2-resident while the register tiles stream through it.
const JT: usize = 128;

/// Output rows processed together by the register-tile microkernel. Each
/// loaded B row is reused `MR` times from registers/L1 instead of re-read
/// per output row — the main cache win over the naive ikj kernel. (The
/// AVX2 microkernels in [`crate::simd`] use their own, taller strip
/// height.)
const MR: usize = 4;

/// Columns per register tile: two 8-lane f32 vectors, so an `MR x NR`
/// accumulator block (8 vector registers) plus the B row and the broadcast
/// A value fit in the 16 architectural vector registers.
const NR: usize = 16;

thread_local! {
    /// Reused panel-packing buffer for the shared B operand (one per
    /// dispatching thread; zero steady-state allocations).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reused packing buffer for a row task's A^T rows in `matmul_tn` (one
    /// per executing thread — pool workers pack their own row range).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Whether the `a == 0.0` fast path may elide additions for this product.
///
/// Skipping `0 · b` is only sound when `b`'s row is finite: `0 · NaN` and
/// `0 · ∞` are `NaN`, and eliding them silently converts a diverging
/// model's activations into clean-looking zeros. `other.all_finite()` is
/// hoisted out of the kernel — one scan instead of one per element — and is
/// only paid at all when `self` actually contains zeros. For finite `b` the
/// skip is bitwise safe: the accumulator starts at `+0.0` and IEEE-754
/// addition can never turn it into `-0.0`, so skipping a `± 0.0` addend
/// changes nothing.
fn zero_skip_allowed(a: &Matrix, b: &Matrix) -> bool {
    a.data.contains(&0.0) && b.all_finite()
}

/// Number of exact zeros in `a` — with the skip enabled, exactly the number
/// of `(i, p)` row additions every kernel elides, independent of how the
/// kernel tiles the `j` loop. Counting analytically (one O(m·k) scan)
/// instead of inside the kernels keeps the counters identical across the
/// naive, blocked, and parallel paths.
fn count_zeros(data: &[f32]) -> u64 {
    data.iter().filter(|&&v| v == 0.0).count() as u64
}

/// Bumps the effective-FLOP counters for `skipped` elided row additions of
/// width `n`, so `obs-report` can show effective vs nominal FLOPs (the
/// `tensor.matmul.flops` counter is nominal `2·m·k·n`).
fn record_skipped(skipped: u64, n: usize) {
    if skipped > 0 {
        metadpa_obs::counter_add!("tensor.matmul.skipped_rows", skipped);
        metadpa_obs::counter_add!("tensor.matmul.flops_skipped", 2 * n as u64 * skipped);
    }
}

/// Hands `f` the B operand as packed column panels.
///
/// When `n > JT` the panels are packed once per call into a reused
/// thread-local buffer (panel `t` holds columns `t*JT..` as a contiguous
/// `k x w` block, values copied bit-exactly) and shared read-only across
/// all row tasks. When B is a single panel (`n <= JT`) its row-major
/// storage *is* the panel layout, so it is passed through without copying.
fn with_b_panels(b: &[f32], k: usize, n: usize, f: impl FnOnce(&[f32], usize)) {
    if n > JT {
        PACK_B.with(|buf| {
            let mut packed = buf.borrow_mut();
            packed.clear();
            packed.resize(k * n, 0.0);
            let mut j0 = 0;
            while j0 < n {
                let w = JT.min(n - j0);
                let base = k * j0;
                for p in 0..k {
                    packed[base + p * w..base + (p + 1) * w]
                        .copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
                }
                j0 += w;
            }
            metadpa_obs::counter_add!("tensor.matmul.packed_panels", n.div_ceil(JT) as u64);
            f(&packed, JT);
        });
    } else {
        f(b, n.max(1));
    }
}

/// Hands `f` the `n x k` operand `b` packed as panels of its transpose
/// (`B^T`, `k x n`), for [`Matrix::matmul_nt`]. Always copies — the
/// transposed layout never matches storage — into the same reused buffer.
fn with_bt_panels(b: &[f32], k: usize, n: usize, f: impl FnOnce(&[f32], usize)) {
    PACK_B.with(|buf| {
        let mut packed = buf.borrow_mut();
        packed.clear();
        packed.resize(k * n, 0.0);
        let mut j0 = 0;
        while j0 < n {
            let w = JT.min(n - j0);
            let base = k * j0;
            for p in 0..k {
                let dst = &mut packed[base + p * w..base + (p + 1) * w];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = b[(j0 + j) * k + p];
                }
            }
            j0 += w;
        }
        metadpa_obs::counter_add!("tensor.matmul.packed_panels", n.div_ceil(JT.max(1)) as u64);
        f(&packed, JT);
    });
}

/// Packs rows `rows` of `a^T` (i.e. columns of the `k x m` matrix `a`) into
/// `dst` as a contiguous row-major `rows.len() x k` block.
fn pack_at_rows(a: &[f32], k: usize, m: usize, rows: Range<usize>, dst: &mut Vec<f32>) {
    dst.clear();
    dst.resize(rows.len() * k, 0.0);
    for (local, i) in rows.enumerate() {
        let drow = &mut dst[local * k..(local + 1) * k];
        for (p, d) in drow.iter_mut().enumerate() {
            *d = a[p * m + i];
        }
    }
}

/// Runs `kernel` over all `m` output rows of a row-major `m x n` output,
/// either in one serial call or row-partitioned across the pool with each
/// task writing directly into its disjoint slice of `out` (no private tiles,
/// no copies). The partition is by row index only and the kernels fix the
/// per-element operation order, so serial and parallel results are
/// bit-identical.
fn run_rows(
    m: usize,
    muladds: usize,
    out: &mut [f32],
    n: usize,
    kernel: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    let threads = crate::pool::current_threads();
    if threads <= 1 || m <= 1 || muladds < PAR_MIN_MULADDS {
        kernel(0..m, out);
        return;
    }
    let pool = crate::pool::Pool::with_size(threads);
    let ranges = pool.partition(m);
    let mut parts: Vec<(Range<usize>, &mut [f32])> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    for r in ranges {
        let (head, tail) = rest.split_at_mut(r.len() * n);
        parts.push((r, head));
        rest = tail;
    }
    pool.run_parts(parts, |(rows, slice)| kernel(rows, slice));
}

/// The blocked kernel shared by all three matmul forms: `arows` is a
/// contiguous row-major `n_rows x k` view of the (possibly packed) left
/// operand, `panels` the packed right operand (see [`with_b_panels`]), and
/// `out` the `n_rows x n` output tile.
///
/// Loop order: j-panel -> MR-row block -> NR-column register tile -> `p`.
/// Every output element is produced by exactly one register tile, whose
/// accumulator sums the `k` addends in ascending `p` order starting from
/// `+0.0` — the identical addends in the identical order as the naive
/// kernel, hence bit-identical results (DESIGN §9).
///
/// This is the scalar kernel family: when [`crate::simd`] dispatch selects
/// an AVX2 path, the matmul entry points route to
/// [`crate::simd::blocked_rows_simd`] over lane-tile packed panels instead,
/// and this function (and its packing) stays byte-for-byte the pre-SIMD
/// code — the `METADPA_SIMD=off` fallback. The exact SIMD kernel performs
/// the identical mul-round/add-round sequence per element, so the
/// scalar/SIMD choice never changes a bit either (DESIGN §14).
#[allow(clippy::too_many_arguments)]
fn blocked_rows(
    arows: &[f32],
    n_rows: usize,
    k: usize,
    panels: &[f32],
    panel_w: usize,
    n: usize,
    skip_zeros: bool,
    out: &mut [f32],
) {
    let mut j0 = 0;
    while j0 < n {
        let w = panel_w.min(n - j0);
        let pdata = &panels[k * j0..k * j0 + k * w];
        let mut i0 = 0;
        while i0 < n_rows {
            let ib = MR.min(n_rows - i0);
            let mut jt = 0;
            while jt < w {
                let wj = NR.min(w - jt);
                if ib == MR && wj == NR {
                    micro_tile(arows, i0, k, pdata, w, jt, skip_zeros, out, n, j0);
                } else {
                    edge_tile(arows, i0, ib, k, pdata, w, jt, wj, skip_zeros, out, n, j0);
                }
                jt += wj;
            }
            i0 += ib;
        }
        j0 += w;
    }
}

/// Full `MR x NR` register tile: accumulators live in registers across the
/// whole `p` loop and each loaded B row is reused `MR` times.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_tile(
    arows: &[f32],
    i0: usize,
    k: usize,
    pdata: &[f32],
    w: usize,
    jt: usize,
    skip_zeros: bool,
    out: &mut [f32],
    n: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let brow = &pdata[p * w + jt..p * w + jt + NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arows[(i0 + r) * k + p];
            if skip_zeros && av == 0.0 {
                continue;
            }
            for (a, &bv) in accr.iter_mut().zip(brow.iter()) {
                *a += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let base = (i0 + r) * n + j0 + jt;
        out[base..base + NR].copy_from_slice(accr);
    }
}

/// Remainder rows/columns of a block: plain axpy per `(row, p)` pair over
/// the tile's column range, `p` ascending — same per-element order as the
/// microkernel and the naive reference.
#[allow(clippy::too_many_arguments)]
fn edge_tile(
    arows: &[f32],
    i0: usize,
    ib: usize,
    k: usize,
    pdata: &[f32],
    w: usize,
    jt: usize,
    wj: usize,
    skip_zeros: bool,
    out: &mut [f32],
    n: usize,
    j0: usize,
) {
    for r in 0..ib {
        let i = i0 + r;
        let base = i * n + j0 + jt;
        for p in 0..k {
            let av = arows[i * k + p];
            if skip_zeros && av == 0.0 {
                continue;
            }
            let brow = &pdata[p * w + jt..p * w + jt + wj];
            let orow = &mut out[base..base + wj];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec())
    }

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_fills_row_major() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(a, m(3, 2, &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]));
        assert!(Matrix::from_fn(0, 5, |_, _| 1.0).is_empty());
        assert!(Matrix::from_fn(5, 0, |_, _| 1.0).is_empty());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_reuse_capacity_and_match() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        // Seed the output with a big allocation, then shrink into it: the
        // pointer must not move (capacity reuse) and values must match the
        // allocating API bit for bit.
        let mut out = Matrix::zeros(64, 64);
        let cap_ptr = out.as_slice().as_ptr();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        assert_eq!(out.as_slice().as_ptr(), cap_ptr, "matmul_into must reuse the allocation");

        a.map_into(|v| v * 2.0, &mut out);
        assert_eq!(out, a.scale(2.0));
        a.zip_map_into(&a, |x, y| x + y, &mut out);
        assert_eq!(out, &a + &a);
        a.sum_rows_into(&mut out);
        assert_eq!(out, a.sum_rows());
        let bias = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        a.add_row_broadcast_into(&bias, &mut out);
        assert_eq!(out, a.add_row_broadcast(&bias));
    }

    #[test]
    fn assign_copies_shape_and_contents() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut b = Matrix::zeros(5, 5);
        b.assign(&a);
        assert_eq!(b, a);
        let mut c = Matrix::default();
        c.assign(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_rows_repeats_and_reorders() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, m(3, 2, &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]));
    }

    #[test]
    fn hstack_vstack_hsplit_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (2, 3));
        let (l, r) = h.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
        let v = a.vstack(&a);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(2), a.row(0));
    }

    #[test]
    fn broadcast_and_row_sums() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let bias = Matrix::row_vector(&[10.0, 20.0, 30.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(out.row(1), &[14.0, 25.0, 36.0]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[5.0, 7.0, 9.0]));
        assert_eq!(a.sum_cols(), m(2, 1, &[6.0, 15.0]));
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, -2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b), m(1, 3, &[4.0, 10.0, 18.0]));
        assert_eq!(a.scale(2.0), m(1, 3, &[2.0, 4.0, 6.0]));
    }

    #[test]
    fn add_scaled_inplace_is_axpy() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let b = m(1, 2, &[2.0, 4.0]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a, m(1, 2, &[2.0, 3.0]));
    }

    #[test]
    fn matmul_propagates_nan_and_inf_past_zero_rows() {
        // 0 · NaN and 0 · ∞ are NaN; the zero-skip fast path must not
        // convert them to 0 (regression: a diverging model's activations
        // looked finite after multiplying by sparse inputs).
        let a = m(2, 2, &[0.0, 1.0, 2.0, 0.0]);
        let b_nan = m(2, 2, &[f32::NAN, 5.0, 6.0, 7.0]);
        let c = a.matmul(&b_nan);
        assert!(c.get(0, 0).is_nan(), "0·NaN must propagate, got {}", c.get(0, 0));
        assert!(c.get(1, 0).is_nan(), "NaN row times nonzero must propagate");
        let b_inf = m(2, 2, &[f32::INFINITY, 5.0, 6.0, 7.0]);
        let c = a.matmul(&b_inf);
        assert!(c.get(0, 0).is_nan(), "0·∞ is NaN, got {}", c.get(0, 0));
    }

    #[test]
    fn matmul_tn_propagates_nan_and_inf_past_zero_rows() {
        // a^T has a zero at (0,0) pairing with the NaN in b's first row.
        let a = m(2, 2, &[0.0, 2.0, 1.0, 0.0]);
        let b_nan = m(2, 2, &[f32::NAN, 5.0, 6.0, 7.0]);
        let c = a.matmul_tn(&b_nan);
        assert!(c.get(0, 0).is_nan(), "0·NaN must propagate through matmul_tn");
        let b_inf = m(2, 2, &[f32::INFINITY, 5.0, 6.0, 7.0]);
        let c = a.matmul_tn(&b_inf);
        assert!(c.get(0, 0).is_nan(), "0·∞ is NaN through matmul_tn");
    }

    #[test]
    fn matmul_nt_propagates_nan_and_inf() {
        let a = m(1, 2, &[0.0, 1.0]);
        let b_nan = m(2, 2, &[f32::NAN, 5.0, 6.0, 7.0]);
        let c = a.matmul_nt(&b_nan);
        assert!(c.get(0, 0).is_nan(), "0·NaN must propagate through matmul_nt");
        let b_inf = m(2, 2, &[f32::INFINITY, 1.0, 2.0, 3.0]);
        let c = a.matmul_nt(&b_inf);
        assert!(c.get(0, 0).is_nan(), "0·∞ is NaN through matmul_nt");
    }

    #[test]
    fn zero_skip_still_elides_work_for_finite_inputs() {
        // With finite operands the fast path stays on and the elided work
        // is counted so FLOP reports can show effective vs nominal.
        let _g = metadpa_obs::test_lock();
        let sink = std::sync::Arc::new(metadpa_obs::recorder::MemoryRecorder::default());
        metadpa_obs::enable(sink);
        let counter_value = |name: &str| {
            metadpa_obs::metrics::snapshot()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, snap)| match snap {
                    metadpa_obs::metrics::MetricSnapshot::Counter(v) => v,
                    other => panic!("expected counter, got {other:?}"),
                })
                .unwrap_or(0)
        };
        let skipped_before = counter_value("tensor.matmul.skipped_rows");
        let flops_skipped_before = counter_value("tensor.matmul.flops_skipped");
        let a = m(2, 2, &[0.0, 1.0, 2.0, 0.0]);
        let b = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 3, &[4.0, 5.0, 6.0, 2.0, 4.0, 6.0]));
        assert_eq!(
            counter_value("tensor.matmul.skipped_rows") - skipped_before,
            2,
            "two zero entries in a elide two row additions"
        );
        assert_eq!(
            counter_value("tensor.matmul.flops_skipped") - flops_skipped_before,
            2 * 3 * 2,
            "each skipped row elides 2·n flops"
        );
        metadpa_obs::disable();
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.all_finite());
        a.set(0, 1, f32::NAN);
        assert!(!a.all_finite());
    }

    #[test]
    fn dot_flat() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.dot_flat(&b), 70.0);
    }
}

//! Naive reference matmul kernels — the bit-identity oracle.
//!
//! These are the pre-blocking kernels, retained verbatim so the cache-blocked
//! kernels in [`crate::matrix`] can be checked *bit-for-bit* against them (the
//! determinism suites do exactly that across tile-boundary-spanning shapes)
//! and benchmarked against them (`cargo bench --bench kernels`). They are
//! always serial, never touch the pool, and never bump counters: a pure
//! oracle, not a production path.
//!
//! The production dispatcher also routes *tiny* products here (see
//! `NAIVE_MAX_MULADDS` in `matrix.rs`) — safe precisely because these kernels
//! accumulate every output element over `p` in ascending order, the same
//! per-element order the blocked kernels preserve.

use crate::matrix::Matrix;

/// Reference `a @ b` (`m x k` times `k x n`): the historical ikj row kernel.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "reference::matmul: inner dimension mismatch {}x{} @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_rows(a, b, 0..a.rows(), zero_skip_allowed(a, b), out.as_mut_slice());
    out
}

/// Reference `a^T @ b` (`k x m`^T times `k x n`).
///
/// # Panics
/// Panics if `a.rows() != b.rows()`.
#[must_use]
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "reference::matmul_tn: row mismatch {}x{} ^T @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.cols(), b.cols());
    matmul_tn_rows(a, b, 0..a.cols(), zero_skip_allowed(a, b), out.as_mut_slice());
    out
}

/// Reference `a @ b^T` (`m x k` times `n x k`^T).
///
/// # Panics
/// Panics if `a.cols() != b.cols()`.
#[must_use]
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "reference::matmul_nt: column mismatch {}x{} @ {}x{}^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zeros(a.rows(), b.rows());
    matmul_nt_rows(a, b, 0..a.rows(), out.as_mut_slice());
    out
}

/// Whether the `a == 0.0` fast path may elide additions (see the identically
/// named helper in `matrix.rs` for the finiteness argument).
pub(crate) fn zero_skip_allowed(a: &Matrix, b: &Matrix) -> bool {
    a.as_slice().contains(&0.0) && b.all_finite()
}

/// Computes output rows `rows` of `a @ b` into `out` (a dense tile of
/// `rows.len() * b.cols()` elements), one contiguous axpy per `(i, p)` pair
/// with `p` ascending — the per-element accumulation order every other
/// kernel in the crate must reproduce.
pub(crate) fn matmul_rows(
    a: &Matrix,
    b: &Matrix,
    rows: std::ops::Range<usize>,
    skip_zeros: bool,
    out: &mut [f32],
) {
    let (k, n) = (a.cols(), b.cols());
    for (local, i) in rows.enumerate() {
        let a_row = a.row(i);
        let out_row = &mut out[local * n..(local + 1) * n];
        for (p, &av) in a_row.iter().enumerate().take(k) {
            if skip_zeros && av == 0.0 {
                continue;
            }
            let b_row = &b.as_slice()[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Computes output rows `rows` of `a^T @ b` into `out`; `p` ascends per
/// output row, so each element accumulates in the same order as the
/// historical `p`-outer serial loop.
pub(crate) fn matmul_tn_rows(
    a: &Matrix,
    b: &Matrix,
    rows: std::ops::Range<usize>,
    skip_zeros: bool,
    out: &mut [f32],
) {
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    for (local, i) in rows.enumerate() {
        let out_row = &mut out[local * n..(local + 1) * n];
        for p in 0..k {
            let av = a.as_slice()[p * m + i];
            if skip_zeros && av == 0.0 {
                continue;
            }
            let b_row = &b.as_slice()[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Computes output rows `rows` of `a @ b^T` into `out`: per-element dot
/// products accumulating in ascending index order, no zero-skip path.
pub(crate) fn matmul_nt_rows(
    a: &Matrix,
    b: &Matrix,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    let n = b.rows();
    for (local, i) in rows.enumerate() {
        let a_row = a.row(i);
        let out_row = &mut out[local * n..(local + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_hand_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        assert_eq!(matmul(&a, &b), Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
        assert_eq!(matmul_tn(&a.transpose(), &b), matmul(&a, &b));
        assert_eq!(matmul_nt(&a, &b.transpose()), matmul(&a, &b));
    }
}

//! # metadpa-tensor
//!
//! Dense matrix math and deterministic sampling substrate for the MetaDPA
//! reproduction.
//!
//! The paper's models (Dual-CVAEs, MLP preference scorers, attention towers)
//! only require dense 2-D linear algebra over `f32`, so this crate provides a
//! single row-major [`Matrix`] type with shape-checked operations, plus a
//! seeded random-number facade ([`rng::SeededRng`]) so that every experiment
//! in the repository is exactly reproducible from a `u64` seed.
//!
//! Design notes:
//!
//! * All shape mismatches are programming errors, not recoverable conditions,
//!   so operations panic with a descriptive message (the same contract as
//!   `ndarray`). Each operation documents its shape requirements.
//! * Hot loops (matmul, elementwise combinators) run cache-blocked,
//!   panel-packed kernels (bit-identical to the naive oracles retained in
//!   [`reference`]) and every hot operation has an `_into` variant that
//!   writes into a reused caller-owned matrix, so steady-state training
//!   allocates nothing per op. On AVX2 hosts the blocked kernels dispatch
//!   to explicit SIMD microkernels (see [`simd`]): the default path is
//!   still bit-identical to the scalar oracles (mul-round/add-round per
//!   lane, ascending-`k`), and an opt-in FMA-fused path trades bit-parity
//!   with the exact kernels for speed within a documented epsilon.
//! * No unsafe code outside [`simd`] (`#![deny(unsafe_code)]` at the crate
//!   root; that one module carries a scoped allow for the `std::arch`
//!   intrinsic calls, each behind a cached runtime feature check).
//!   Parallelism goes through [`pool`] — scoped threads with deterministic
//!   work partitioning — so every kernel is bit-identical at any
//!   `METADPA_THREADS` setting, including the serial `1`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod pool;
pub mod reference;
pub mod rng;
pub mod simd;
pub mod sparse;
pub mod stats;

pub use matrix::Matrix;
pub use pool::Pool;
pub use rng::SeededRng;
pub use sparse::{CsrBuilder, CsrMatrix};

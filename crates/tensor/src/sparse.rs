//! Compressed sparse row (CSR) storage for implicit-feedback interaction
//! matrices.
//!
//! The paper's regime is ~99.9 %-sparse binary ratings over millions of
//! users, which a dense [`Matrix`] cannot hold (1M users x 100k items is
//! 400 GB of `f32`). [`CsrMatrix`] stores only the nonzero pattern in the
//! classic row-pointer / column-index / value layout, with a dedicated
//! **binary fast path**: implicit-feedback matrices whose stored entries are
//! all `1.0` carry no value array at all — `row_ptr` + `col_idx` only, 12
//! bytes per row plus 4 bytes per interaction.
//!
//! Determinism contract (DESIGN §8/§9): [`CsrMatrix::spmm_dense`] accumulates
//! every output element over the stored entries of its row in **ascending
//! column order, starting from `+0.0`** — exactly the addends (and the order)
//! the dense kernels use on `to_dense()` when their zero-skip fast path is
//! active. The parallel path only partitions output rows across
//! [`crate::pool::Pool`] workers, so results are bit-identical at any
//! `METADPA_THREADS`, and bit-identical to [`crate::reference::matmul`] on
//! the densified matrix whenever the dense operand is finite (with a
//! non-finite dense operand the dense kernels disable zero-skip and fold
//! `0 * inf` terms that a sparse matrix structurally does not have).
//!
//! Constructors never store an explicit `0.0`: [`CsrMatrix::scatter_from_dense`]
//! and [`CsrBuilder`] drop exact zeros, so "stored entry" and "nonzero" are
//! the same thing and the zero-skip equivalence above has no edge cases.

use crate::matrix::Matrix;
use std::ops::Range;

/// Parallel threshold for [`CsrMatrix::spmm_dense`], matching the dense
/// kernels: below ~2^20 multiply-adds the fan-out cost exceeds the win.
const PAR_MIN_MULADDS: usize = 1 << 20;

/// A compressed-sparse-row matrix over `f32` with a binary fast path.
///
/// Invariants (enforced by every constructor):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, monotonically
///   non-decreasing, `row_ptr[rows] == col_idx.len()`.
/// * Column indices are strictly ascending within each row and `< cols`.
/// * `values` is `None` for binary matrices (every stored entry is `1.0`)
///   or `Some` with exactly one finite-or-not value per stored entry; an
///   exact `0.0` is never stored.
/// * `cols <= u32::MAX` (column indices are stored as `u32` to halve the
///   index footprint at the 100k-item scale).
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Option<Vec<f32>>,
}

impl CsrMatrix {
    /// An empty `rows x cols` binary matrix (no stored entries).
    ///
    /// # Panics
    /// Panics if `cols > u32::MAX`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(cols <= u32::MAX as usize, "CsrMatrix: cols {cols} exceeds u32 index range");
        Self { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: None }
    }

    /// Builds a binary matrix from per-row sorted item lists — the layout
    /// `metadpa-data` keeps per-user interactions in.
    ///
    /// # Panics
    /// Panics if `cols > u32::MAX` or any row is unsorted, has duplicates,
    /// or references a column `>= cols`.
    pub fn from_rows(cols: usize, rows: &[Vec<usize>]) -> Self {
        let mut b = CsrBuilder::new(cols);
        for row in rows {
            b.push_row(row);
        }
        b.finish()
    }

    /// Collects the nonzero entries of a dense matrix into CSR form —
    /// the inverse of [`CsrMatrix::to_dense`]. Exact zeros are dropped;
    /// if every surviving entry is `1.0` the result takes the binary fast
    /// path (no value array).
    ///
    /// # Panics
    /// Panics if `dense.cols() > u32::MAX`.
    pub fn scatter_from_dense(dense: &Matrix) -> Self {
        let mut b = CsrBuilder::new(dense.cols());
        let mut entries: Vec<(usize, f32)> = Vec::new();
        for r in 0..dense.rows() {
            entries.clear();
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    entries.push((c, v));
                }
            }
            b.push_weighted_row(&entries);
        }
        b.finish()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// True when the matrix takes the binary fast path (all entries `1.0`,
    /// no value array stored).
    pub fn is_binary(&self) -> bool {
        self.values.is_none()
    }

    /// Number of stored entries in row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_range(r).len()
    }

    /// The sorted column indices stored in row `r`.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row_indices(&self, r: usize) -> &[u32] {
        let range = self.row_range(r);
        &self.col_idx[range]
    }

    /// Iterates `(col, value)` pairs of row `r` in ascending column order.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let range = self.row_range(r);
        let vals = self.values.as_deref();
        let start = range.start;
        self.col_idx[range]
            .iter()
            .enumerate()
            .map(move |(i, &c)| (c as usize, vals.map_or(1.0, |v| v[start + i])))
    }

    /// Heap footprint of the index + value arrays in bytes (the number the
    /// scaling bench reports alongside peak RSS).
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.as_ref().map_or(0, |v| v.len() * std::mem::size_of::<f32>())
    }

    /// Fraction of absent cells, `1 - nnz / (rows * cols)`, clamped to
    /// `[0, 1]` (see [`crate::stats::sparsity`]).
    pub fn sparsity(&self) -> f64 {
        crate::stats::sparsity(self.nnz(), self.rows, self.cols)
    }

    /// Densifies into a row-major [`Matrix`] — test/oracle helper, never a
    /// production path at scale.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            self.row_to_dense_into(r, out.row_mut(r));
        }
        out
    }

    /// Scatters row `r` into a dense slice: zero-fills `out`, then writes
    /// each stored entry at its column. Zero-alloc; the building block for
    /// per-batch workspaces (`rating_vector_into` in `metadpa-data`).
    ///
    /// # Panics
    /// Panics if `r >= rows` or `out.len() != cols`.
    pub fn row_to_dense_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.cols,
            "CsrMatrix::row_to_dense_into: slice length {} != cols {}",
            out.len(),
            self.cols
        );
        out.fill(0.0);
        let range = self.row_range(r);
        match &self.values {
            None => {
                for &c in &self.col_idx[range] {
                    out[c as usize] = 1.0;
                }
            }
            Some(vals) => {
                for (&c, &v) in self.col_idx[range.clone()].iter().zip(&vals[range]) {
                    out[c as usize] = v;
                }
            }
        }
    }

    /// Densifies the selected rows into a reused `rows.len() x cols`
    /// workspace matrix — the per-batch gather the Dual-CVAE input path
    /// uses. Steady-state this allocates nothing (the workspace is resized
    /// in place once it has reached capacity).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather_rows_dense_into(&self, rows: &[usize], out: &mut Matrix) {
        out.resize_for_overwrite(rows.len(), self.cols);
        for (local, &r) in rows.iter().enumerate() {
            self.row_to_dense_into(r, out.row_mut(local));
        }
    }

    /// Sparse-times-dense product `self @ b` (`m x k` sparse times `k x n`
    /// dense -> `m x n` dense).
    ///
    /// # Panics
    /// Panics if `self.cols != b.rows()`.
    #[must_use]
    pub fn spmm_dense(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.spmm_dense_into(b, &mut out);
        out
    }

    /// [`CsrMatrix::spmm_dense`] into a reused output matrix.
    ///
    /// Each output row accumulates its row's stored entries in ascending
    /// column order from `+0.0` — the identical addends in the identical
    /// order as the dense zero-skip kernels on [`CsrMatrix::to_dense`], so
    /// for a finite `b` the result is bit-identical to the dense oracle and
    /// bit-identical at any thread count (the parallel path only partitions
    /// output rows).
    ///
    /// # Panics
    /// Panics if `self.cols != b.rows()`.
    pub fn spmm_dense_into(&self, b: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            b.rows(),
            "CsrMatrix::spmm_dense: inner dimension mismatch {}x{} @ {}x{}",
            self.rows,
            self.cols,
            b.rows(),
            b.cols()
        );
        let (m, n) = (self.rows, b.cols());
        metadpa_obs::counter_add!("tensor.spmm.calls", 1u64);
        metadpa_obs::counter_add!("tensor.spmm.flops", 2 * (self.nnz() * n) as u64);
        out.resize_for_overwrite(m, n);
        out.fill(0.0);
        let muladds = self.nnz() * n;
        let threads = crate::pool::current_threads();
        if threads <= 1 || m <= 1 || muladds < PAR_MIN_MULADDS {
            self.spmm_rows(b, 0..m, out.as_mut_slice());
            return;
        }
        let pool = crate::pool::Pool::with_size(threads);
        let ranges = pool.partition(m);
        let mut parts: Vec<(Range<usize>, &mut [f32])> = Vec::with_capacity(ranges.len());
        let mut rest = out.as_mut_slice();
        for r in ranges {
            let (head, tail) = rest.split_at_mut(r.len() * n);
            parts.push((r, head));
            rest = tail;
        }
        pool.run_parts(parts, |(rows, slice)| self.spmm_rows(b, rows, slice));
    }

    /// Computes output rows `rows` of `self @ b` into a dense tile —
    /// contiguous axpy per stored entry with columns ascending, mirroring
    /// `reference::matmul_rows` with its zero-skip path taken.
    fn spmm_rows(&self, b: &Matrix, rows: Range<usize>, out: &mut [f32]) {
        let n = b.cols();
        for (local, i) in rows.enumerate() {
            let out_row = &mut out[local * n..(local + 1) * n];
            let range = self.row_range(i);
            match &self.values {
                None => {
                    for &c in &self.col_idx[range] {
                        let b_row = &b.as_slice()[c as usize * n..(c as usize + 1) * n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += bv;
                        }
                    }
                }
                Some(vals) => {
                    for (&c, &v) in self.col_idx[range.clone()].iter().zip(&vals[range]) {
                        let b_row = &b.as_slice()[c as usize * n..(c as usize + 1) * n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += v * bv;
                        }
                    }
                }
            }
        }
    }

    fn row_range(&self, r: usize) -> Range<usize> {
        assert!(r < self.rows, "CsrMatrix: row {r} out of range for {} rows", self.rows);
        self.row_ptr[r]..self.row_ptr[r + 1]
    }
}

/// Incremental row-by-row CSR constructor — the streaming generator appends
/// one user chunk at a time without ever holding a dense matrix.
///
/// Starts on the binary fast path and transparently materializes a value
/// array (backfilled with `1.0`) the first time a non-unit weight arrives.
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Option<Vec<f32>>,
}

impl CsrBuilder {
    /// A builder for matrices with `cols` columns and no rows yet.
    ///
    /// # Panics
    /// Panics if `cols > u32::MAX`.
    pub fn new(cols: usize) -> Self {
        assert!(cols <= u32::MAX as usize, "CsrBuilder: cols {cols} exceeds u32 index range");
        Self { cols, row_ptr: vec![0], col_idx: Vec::new(), values: None }
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Appends a binary row (every stored entry `1.0`).
    ///
    /// # Panics
    /// Panics if `cols_sorted` is not strictly ascending or references a
    /// column `>= cols`.
    pub fn push_row(&mut self, cols_sorted: &[usize]) {
        self.check_sorted(cols_sorted.iter().copied());
        self.col_idx.extend(cols_sorted.iter().map(|&c| c as u32));
        if let Some(vals) = &mut self.values {
            vals.resize(self.col_idx.len(), 1.0);
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Appends a weighted row. Exact-zero entries are dropped; a row whose
    /// surviving weights are all `1.0` keeps the builder on the binary path.
    ///
    /// # Panics
    /// Panics if the entries are not strictly ascending by column or
    /// reference a column `>= cols`.
    pub fn push_weighted_row(&mut self, entries: &[(usize, f32)]) {
        self.check_sorted(entries.iter().map(|&(c, _)| c));
        for &(c, v) in entries {
            if v == 0.0 {
                continue;
            }
            if v != 1.0 && self.values.is_none() {
                // First non-unit weight: leave the binary fast path and
                // backfill everything stored so far as 1.0.
                self.values = Some(vec![1.0; self.col_idx.len()]);
            }
            self.col_idx.push(c as u32);
            if let Some(vals) = &mut self.values {
                vals.push(v);
            }
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Finalizes into an immutable [`CsrMatrix`].
    pub fn finish(self) -> CsrMatrix {
        CsrMatrix {
            rows: self.row_ptr.len() - 1,
            cols: self.cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }

    fn check_sorted(&self, cols: impl Iterator<Item = usize>) {
        let mut prev: Option<usize> = None;
        for c in cols {
            assert!(c < self.cols, "CsrBuilder: column {c} out of range for {} cols", self.cols);
            assert!(
                prev.is_none_or(|p| p < c),
                "CsrBuilder: row columns must be strictly ascending (saw {c} after {prev:?})"
            );
            prev = Some(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn sample_csr() -> CsrMatrix {
        CsrMatrix::from_rows(5, &[vec![0, 3], vec![], vec![1, 2, 4], vec![4]])
    }

    #[test]
    fn construction_round_trips_through_dense() {
        let csr = sample_csr();
        assert_eq!(csr.shape(), (4, 5));
        assert_eq!(csr.nnz(), 6);
        assert!(csr.is_binary());
        let dense = csr.to_dense();
        assert_eq!(dense.get(0, 3), 1.0);
        assert_eq!(dense.get(1, 0), 0.0);
        let back = CsrMatrix::scatter_from_dense(&dense);
        assert_eq!(back, csr);
        assert!(back.is_binary(), "all-ones scatter keeps the binary fast path");
    }

    #[test]
    fn weighted_scatter_round_trips_and_drops_zeros() {
        let dense = Matrix::from_vec(2, 3, vec![0.5, 0.0, 1.0, 0.0, -2.0, 0.0]);
        let csr = CsrMatrix::scatter_from_dense(&dense);
        assert!(!csr.is_binary());
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.row_entries(1).collect::<Vec<_>>(), vec![(1, -2.0)]);
    }

    #[test]
    fn row_to_dense_into_scatters_and_zero_fills() {
        let csr = sample_csr();
        let mut buf = vec![9.0f32; 5];
        csr.row_to_dense_into(2, &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 1.0, 0.0, 1.0]);
        csr.row_to_dense_into(1, &mut buf);
        assert_eq!(buf, vec![0.0; 5], "empty row must clear stale data");
    }

    #[test]
    fn gather_rows_dense_into_reuses_workspace() {
        let csr = sample_csr();
        let mut ws = Matrix::default();
        csr.gather_rows_dense_into(&[2, 0], &mut ws);
        assert_eq!(ws.shape(), (2, 5));
        assert_eq!(ws.row(0), &[0.0, 1.0, 1.0, 0.0, 1.0]);
        assert_eq!(ws.row(1), &[1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn spmm_matches_dense_oracle_bitwise() {
        let mut rng = SeededRng::new(42);
        for &(m, k, n, density) in
            &[(1, 1, 1, 1.0), (4, 7, 3, 0.4), (16, 33, 8, 0.1), (9, 5, 9, 0.0)]
        {
            let mut b = CsrBuilder::new(k);
            for _ in 0..m {
                let mut cols: Vec<usize> =
                    (0..k).filter(|_| rng.uniform() < density as f32).collect();
                cols.dedup();
                b.push_row(&cols);
            }
            let csr = b.finish();
            let dense_b = rng.normal_matrix(k, n);
            let sparse = csr.spmm_dense(&dense_b);
            let oracle = crate::reference::matmul(&csr.to_dense(), &dense_b);
            assert_eq!(sparse.as_slice(), oracle.as_slice(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn spmm_is_bit_identical_across_thread_counts() {
        let mut rng = SeededRng::new(7);
        // Big enough to clear PAR_MIN_MULADDS on the dense side of the
        // partition logic exercised here.
        let rows: Vec<Vec<usize>> =
            (0..64).map(|_| (0..256).filter(|_| rng.uniform() < 0.3).collect()).collect();
        let csr = CsrMatrix::from_rows(256, &rows);
        let b = rng.normal_matrix(256, 96);
        let serial = crate::pool::with_threads(1, || csr.spmm_dense(&b));
        for threads in [2, 7] {
            let par = crate::pool::with_threads(threads, || csr.spmm_dense(&b));
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn builder_mixes_binary_and_weighted_rows() {
        let mut b = CsrBuilder::new(4);
        b.push_row(&[0, 2]);
        b.push_weighted_row(&[(1, 0.5), (3, 1.0)]);
        b.push_row(&[3]);
        let csr = b.finish();
        assert!(!csr.is_binary());
        assert_eq!(csr.row_entries(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 1.0)]);
        assert_eq!(csr.row_entries(1).collect::<Vec<_>>(), vec![(1, 0.5), (3, 1.0)]);
        assert_eq!(csr.row_entries(2).collect::<Vec<_>>(), vec![(3, 1.0)]);
    }

    #[test]
    fn sparsity_and_heap_bytes_report_the_layout() {
        let csr = sample_csr();
        assert!((csr.sparsity() - (1.0 - 6.0 / 20.0)).abs() < 1e-12);
        assert_eq!(
            csr.heap_bytes(),
            5 * std::mem::size_of::<usize>() + 6 * std::mem::size_of::<u32>()
        );
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn builder_rejects_unsorted_rows() {
        let mut b = CsrBuilder::new(4);
        b.push_row(&[2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range_columns() {
        let mut b = CsrBuilder::new(4);
        b.push_row(&[4]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn spmm_rejects_shape_mismatch() {
        let csr = sample_csr();
        let b = Matrix::zeros(4, 2);
        let _ = csr.spmm_dense(&b);
    }
}

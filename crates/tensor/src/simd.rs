//! Runtime-dispatched AVX2/FMA microkernels for the blocked matmul path.
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! root carries `#![deny(unsafe_code)]`; the intrinsic calls below are the
//! single exception). Everything observable stays safe:
//!
//! * **Detection is cached once.** [`available`] probes
//!   `is_x86_feature_detected!("avx2")` + `"fma"` through a `OnceLock`, so
//!   the hot dispatch never re-runs CPUID. Non-x86_64 builds compile the
//!   probe out and always report `false`.
//! * **`METADPA_SIMD=off` forces the scalar kernels.** The environment
//!   variable is read once per process (same contract as
//!   `METADPA_THREADS`); [`with_policy`] overrides it for the current
//!   thread only, which is what the differential tests use to compare
//!   paths inside one process.
//! * **The exact path is bit-identical to the scalar kernels.** The AVX2
//!   microkernel below performs, per output element, the *same* operation
//!   sequence as [`crate::matrix`]'s scalar register tile: round the
//!   product, then round the sum (`_mm256_mul_ps` + `_mm256_add_ps`, never
//!   `fmadd`), over `p` in ascending order from `+0.0`, with the identical
//!   zero-skip rule. Lanes are independent, so vectorising the `j` loop
//!   cannot change a single bit — SIMD on/off and every `METADPA_THREADS`
//!   setting all agree.
//! * **The fused path is opt-in and self-consistent.** [`Policy::Fused`]
//!   swaps in `_mm256_fmadd_ps` (one rounding per multiply-add) and
//!   computes every term — no zero-skip branch, which on post-ReLU
//!   activations (~half the left operand exactly `0.0`) would cost a
//!   mispredicted branch per element and erase the SIMD win. Each output
//!   element is still one ascending-`p` chain of fused multiply-adds, so
//!   fused results are bit-identical at any thread count and any tiling;
//!   they only differ from the exact path by the documented epsilon
//!   (DESIGN §14). Hosts without AVX2 run fused requests through the
//!   exact scalar kernels (a correct member of the same error bound).
//!
//! Dispatch is resolved once per matmul call on the dispatching thread
//! ([`resolve_and_count`]) and handed to the row tasks as a value, so a
//! pool worker can never disagree with its dispatcher about which kernel
//! runs. [`crate::pool`] additionally propagates the thread-local policy
//! into spawned workers so nested matmuls inside pool tasks (per-user
//! evaluation scoring) observe the caller's [`with_policy`] scope.
//!
//! ## Panel layout
//!
//! The SIMD driver does not reuse the scalar path's row-major column
//! panels: the right operand is repacked into 64-byte-aligned *lane
//! tiles* ([`Tile`], 16 columns wide, zero-padded at the right edge), laid
//! out tile-major so the two 8-lane loads per `p` step are one aligned
//! cache line. The scalar path and its packing are byte-for-byte the
//! pre-SIMD code — `METADPA_SIMD=off` reproduces the old bytes trivially.

#![allow(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

/// How matmul dispatch should treat the SIMD kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Use the exact AVX2 kernels when the host supports them (default).
    Auto,
    /// Never use SIMD — run the scalar blocked kernels even on AVX2 hosts
    /// (what `METADPA_SIMD=off` installs process-wide).
    ForcedScalar,
    /// Use the FMA-fused kernels: fastest, within the DESIGN §14 epsilon
    /// of the exact path instead of bit-identical to it. Opt-in per scope
    /// (the f32-precision serving path).
    Fused,
}

thread_local! {
    /// Per-thread override installed by [`with_policy`]; `None` = process
    /// default from `METADPA_SIMD`.
    static POLICY_OVERRIDE: Cell<Option<Policy>> = const { Cell::new(None) };

    /// Reused tile-packing buffer, one per thread (the pool's row tasks
    /// never pack — packing happens on the dispatching thread).
    static PACK_TILES: RefCell<Vec<Tile>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide default policy: [`Policy::ForcedScalar`] when
/// `METADPA_SIMD` is set to `off`/`0`/`false`/`scalar` (case-insensitive),
/// otherwise [`Policy::Auto`]. Read once, like `METADPA_THREADS`.
fn env_policy() -> Policy {
    static ENV: OnceLock<Policy> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("METADPA_SIMD") {
        Ok(v)
            if matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "scalar"
            ) =>
        {
            Policy::ForcedScalar
        }
        _ => Policy::Auto,
    })
}

/// The policy matmul dispatch on this thread observes: the innermost
/// [`with_policy`] override, else the `METADPA_SIMD` default.
pub fn current_policy() -> Policy {
    POLICY_OVERRIDE.with(Cell::get).unwrap_or_else(env_policy)
}

/// Runs `f` with the SIMD policy for this thread pinned to `policy`,
/// restoring the previous value afterwards (also on panic). Mirrors
/// [`crate::pool::with_threads`]: the differential tests compare kernels
/// inside one process with it, and the serving layer wraps f32-precision
/// catalogue ranking in a [`Policy::Fused`] scope.
pub fn with_policy<R>(policy: Policy, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Policy>);
    impl Drop for Restore {
        fn drop(&mut self) {
            POLICY_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = POLICY_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(Some(policy));
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// Whether the host can run the AVX2/FMA microkernels. Probed once.
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// Human-readable description of the detected kernel feature set, surfaced
/// in the serve `/health` document: `"avx2+fma"` or `"scalar"`.
pub fn feature_string() -> &'static str {
    if available() {
        "avx2+fma"
    } else {
        "scalar"
    }
}

/// The kernel family one matmul call will run, resolved on the
/// dispatching thread and passed by value into the row tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Path {
    /// Scalar blocked kernels (no AVX2, or SIMD disabled).
    Scalar,
    /// Exact AVX2 kernels: mul-round-add-round per lane, bit-identical to
    /// [`Path::Scalar`].
    SimdExact,
    /// FMA-fused kernels: one rounding per multiply-add.
    SimdFused,
}

impl Path {
    /// Whether the fused kernel family was selected.
    #[inline]
    pub(crate) fn fused(self) -> bool {
        self == Path::SimdFused
    }
}

/// Resolves the kernel path for one blocked matmul call and bumps the
/// dispatch counters: `tensor.matmul.dispatch.simd` when a SIMD kernel
/// will run, `tensor.matmul.dispatch.scalar_forced` when the host *could*
/// run SIMD but policy said no. (Plain scalar on a non-AVX2 host bumps
/// neither — there was no choice to record.)
pub(crate) fn resolve_and_count() -> Path {
    let avx2 = available();
    match current_policy() {
        Policy::ForcedScalar => {
            if avx2 {
                metadpa_obs::counter_add!("tensor.matmul.dispatch.scalar_forced", 1u64);
            }
            Path::Scalar
        }
        Policy::Auto => {
            if avx2 {
                metadpa_obs::counter_add!("tensor.matmul.dispatch.simd", 1u64);
                Path::SimdExact
            } else {
                Path::Scalar
            }
        }
        Policy::Fused => {
            if avx2 {
                metadpa_obs::counter_add!("tensor.matmul.dispatch.simd", 1u64);
                Path::SimdFused
            } else {
                Path::Scalar
            }
        }
    }
}

/// One 16-column row of a packed lane tile, aligned so an aligned pair of
/// 8-lane loads covers it. Zero-padded when the operand's right edge is
/// narrower than 16 columns.
#[derive(Clone, Copy)]
#[repr(C, align(64))]
pub(crate) struct Tile(pub(crate) [f32; 16]);

const TILE_ZERO: Tile = Tile([0.0; 16]);

/// Lane width of the packed tiles (two `ymm` registers).
pub(crate) const TILE_W: usize = 16;

/// Rows per register strip: 6 rows x 2 lanes = 12 accumulators, leaving
/// registers for the two B lanes and the broadcast.
const MR_SIMD: usize = 6;

/// Hands `f` the row-major `k x n` operand packed as zero-padded lane
/// tiles: tile `t` holds columns `t*16 .. t*16+16`, rows contiguous
/// (`tiles[t*k + q]` is row `q` of tile `t`). Packed once per matmul call
/// on the dispatching thread into a reused thread-local buffer and shared
/// read-only across all row tasks.
pub(crate) fn with_b_tiles(b: &[f32], k: usize, n: usize, f: impl FnOnce(&[Tile])) {
    let ntiles = n.div_ceil(TILE_W);
    PACK_TILES.with(|buf| {
        let mut packed = buf.borrow_mut();
        packed.clear();
        packed.resize(ntiles * k, TILE_ZERO);
        for t in 0..ntiles {
            let j0 = t * TILE_W;
            let wj = TILE_W.min(n - j0);
            for q in 0..k {
                packed[t * k + q].0[..wj].copy_from_slice(&b[q * n + j0..q * n + j0 + wj]);
            }
        }
        metadpa_obs::counter_add!("tensor.matmul.packed_tiles", ntiles as u64);
        f(&packed);
    });
}

/// [`with_b_tiles`] for a transposed right operand: `b` is stored `n x k`
/// row-major and packed as lane tiles of `b^T` (`k x n`), for
/// [`crate::Matrix::matmul_nt`].
pub(crate) fn with_bt_tiles(b: &[f32], k: usize, n: usize, f: impl FnOnce(&[Tile])) {
    let ntiles = n.div_ceil(TILE_W);
    PACK_TILES.with(|buf| {
        let mut packed = buf.borrow_mut();
        packed.clear();
        packed.resize(ntiles * k, TILE_ZERO);
        for t in 0..ntiles {
            let j0 = t * TILE_W;
            let wj = TILE_W.min(n - j0);
            for q in 0..k {
                let dst = &mut packed[t * k + q].0;
                for (j, d) in dst[..wj].iter_mut().enumerate() {
                    *d = b[(j0 + j) * k + q];
                }
            }
        }
        metadpa_obs::counter_add!("tensor.matmul.packed_tiles", ntiles as u64);
        f(&packed);
    });
}

/// The SIMD counterpart of the scalar `blocked_rows`: runs `n_rows x n`
/// outputs from a contiguous row-major `n_rows x k` left operand and a
/// lane-tile packed right operand (see [`with_b_tiles`]).
///
/// Traversal is strip-major — `MR_SIMD` output rows at a time, all tiles
/// per strip — and every output element is one register accumulator
/// summed over the full `k` range in ascending order, so results do not
/// depend on the strip/tile traversal or on how threads partition rows.
///
/// # Panics
/// Panics if called on a host without AVX2+FMA (dispatch guarantees it).
#[allow(clippy::too_many_arguments)]
pub(crate) fn blocked_rows_simd(
    arows: &[f32],
    n_rows: usize,
    k: usize,
    tiles: &[Tile],
    n: usize,
    skip_zeros: bool,
    fused: bool,
    out: &mut [f32],
) {
    assert!(available(), "SIMD kernels dispatched on a non-AVX2 host");
    #[cfg(target_arch = "x86_64")]
    x86::driver(arows, n_rows, k, tiles, n, skip_zeros, fused, out);
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (arows, n_rows, k, tiles, n, skip_zeros, fused, out);
        unreachable!("available() is false off x86_64");
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_load_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps,
    };

    use super::{Tile, MR_SIMD, TILE_W};

    /// Strip-major driver: for each strip of up to `MR_SIMD` rows, sweep
    /// every lane tile. Monomorphic kernels per residual strip height keep
    /// the register tiling exact for remainders.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn driver(
        arows: &[f32],
        n_rows: usize,
        k: usize,
        tiles: &[Tile],
        n: usize,
        skip_zeros: bool,
        fused: bool,
        out: &mut [f32],
    ) {
        let ntiles = n.div_ceil(TILE_W);
        debug_assert!(tiles.len() >= ntiles * k, "tile panel too small");
        debug_assert!(arows.len() >= n_rows * k, "left operand too small");
        debug_assert!(out.len() >= n_rows * n, "output too small");
        let mut i0 = 0;
        while i0 < n_rows {
            let ib = MR_SIMD.min(n_rows - i0);
            for t in 0..ntiles {
                let ocol = t * TILE_W;
                let wj = TILE_W.min(n - ocol);
                let tile = &tiles[t * k..(t + 1) * k];
                // SAFETY: AVX2+FMA presence was checked by the caller
                // (`blocked_rows_simd`); in-bounds access is the
                // debug-asserted invariant above plus `ib`/`wj` clamping.
                unsafe { strip(arows, i0, ib, k, tile, out, n, ocol, wj, skip_zeros, fused) }
            }
            i0 += ib;
        }
    }

    /// Dispatches one `(strip, tile)` pair to the monomorphic kernel for
    /// its height and op family.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn strip(
        arows: &[f32],
        i0: usize,
        ib: usize,
        k: usize,
        tile: &[Tile],
        out: &mut [f32],
        n: usize,
        ocol: usize,
        wj: usize,
        skip_zeros: bool,
        fused: bool,
    ) {
        macro_rules! call {
            ($ib:literal) => {
                if fused {
                    tile_k::<$ib, true>(arows, i0, k, tile, out, n, ocol, wj, skip_zeros)
                } else {
                    tile_k::<$ib, false>(arows, i0, k, tile, out, n, ocol, wj, skip_zeros)
                }
            };
        }
        match ib {
            6 => call!(6),
            5 => call!(5),
            4 => call!(4),
            3 => call!(3),
            2 => call!(2),
            1 => call!(1),
            _ => unreachable!("strip height {ib} out of range"),
        }
    }

    /// One register tile: `IB` output rows x 16 lanes, accumulated over
    /// the full `k` range in ascending order. `FUSED` selects one
    /// rounding per multiply-add (`fmadd`, no zero-skip) vs the exact
    /// mul-round/add-round sequence with the scalar kernel's zero-skip;
    /// const so each instantiation compiles branch-free.
    #[target_feature(enable = "avx2,fma")]
    // The r-indexed loop reads A and writes acc in lockstep; the index
    // form keeps the measured codegen (12 live ymm accumulators) intact.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    unsafe fn tile_k<const IB: usize, const FUSED: bool>(
        arows: &[f32],
        i0: usize,
        k: usize,
        tile: &[Tile],
        out: &mut [f32],
        n: usize,
        ocol: usize,
        wj: usize,
        skip_zeros: bool,
    ) {
        debug_assert!(tile.len() >= k, "tile rows out of bounds");
        debug_assert!(k == 0 || (i0 + IB) * k <= arows.len(), "A rows out of bounds");
        debug_assert!(
            wj <= TILE_W && (i0 + IB - 1) * n + ocol + wj <= out.len(),
            "output out of bounds"
        );
        let ap = arows.as_ptr();
        let bp = tile.as_ptr() as *const f32;
        // acc[r] holds the low/high 8 lanes of output row i0+r.
        let mut acc = [[_mm256_setzero_ps(); 2]; IB];
        for q in 0..k {
            let b0 = _mm256_load_ps(bp.add(q * TILE_W));
            let b1 = _mm256_load_ps(bp.add(q * TILE_W + 8));
            for r in 0..IB {
                let av = *ap.add((i0 + r) * k + q);
                if !FUSED && skip_zeros && av == 0.0 {
                    continue;
                }
                let a = _mm256_set1_ps(av);
                if FUSED {
                    acc[r][0] = _mm256_fmadd_ps(a, b0, acc[r][0]);
                    acc[r][1] = _mm256_fmadd_ps(a, b1, acc[r][1]);
                } else {
                    // Two roundings, exactly like the scalar `+= av * bv`.
                    acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(a, b0));
                    acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(a, b1));
                }
            }
        }
        let op = out.as_mut_ptr();
        if wj == TILE_W {
            for (r, a) in acc.iter().enumerate() {
                let o = op.add((i0 + r) * n + ocol);
                _mm256_storeu_ps(o, a[0]);
                _mm256_storeu_ps(o.add(8), a[1]);
            }
        } else {
            // Right edge: the padded lanes hold garbage products of the
            // zero padding; spill and store only the real columns.
            for (r, a) in acc.iter().enumerate() {
                let mut spill = [0.0f32; TILE_W];
                _mm256_storeu_ps(spill.as_mut_ptr(), a[0]);
                _mm256_storeu_ps(spill.as_mut_ptr().add(8), a[1]);
                let base = (i0 + r) * n + ocol;
                out[base..base + wj].copy_from_slice(&spill[..wj]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_policy_overrides_and_restores() {
        let ambient = current_policy();
        let seen = with_policy(Policy::Fused, current_policy);
        assert_eq!(seen, Policy::Fused);
        assert_eq!(current_policy(), ambient);
        with_policy(Policy::ForcedScalar, || {
            assert_eq!(current_policy(), Policy::ForcedScalar);
            with_policy(Policy::Auto, || assert_eq!(current_policy(), Policy::Auto));
            assert_eq!(current_policy(), Policy::ForcedScalar);
        });
    }

    #[test]
    fn forced_scalar_never_resolves_to_simd() {
        with_policy(Policy::ForcedScalar, || {
            assert_eq!(resolve_and_count(), Path::Scalar);
        });
    }

    #[test]
    fn resolution_is_consistent_with_detection() {
        with_policy(Policy::Auto, || {
            let path = resolve_and_count();
            if available() {
                assert_eq!(path, Path::SimdExact);
            } else {
                assert_eq!(path, Path::Scalar);
            }
        });
        with_policy(Policy::Fused, || {
            let path = resolve_and_count();
            if available() {
                assert_eq!(path, Path::SimdFused);
                assert!(path.fused());
            } else {
                assert_eq!(path, Path::Scalar);
            }
        });
    }

    #[test]
    fn feature_string_matches_detection() {
        assert_eq!(feature_string(), if available() { "avx2+fma" } else { "scalar" });
    }

    #[test]
    fn tile_packing_pads_the_right_edge_with_zeros() {
        // 2x19 operand: two tiles, the second 3 columns wide + 13 zeros.
        let b: Vec<f32> = (0..38).map(|v| v as f32 + 1.0).collect();
        with_b_tiles(&b, 2, 19, |tiles| {
            assert_eq!(tiles.len(), 2 * 2);
            assert_eq!(tiles[0].0[0], 1.0, "tile 0 row 0 col 0");
            assert_eq!(tiles[1].0[0], 20.0, "tile 0 row 1 col 0");
            assert_eq!(tiles[2].0[..3], [17.0, 18.0, 19.0], "tile 1 row 0");
            assert_eq!(tiles[2].0[3..], [0.0; 13], "tile 1 row 0 padding");
            assert_eq!(tiles[3].0[..3], [36.0, 37.0, 38.0], "tile 1 row 1");
        });
    }
}

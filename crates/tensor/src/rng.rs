//! Deterministic random sampling for reproducible experiments.
//!
//! Every stochastic component in the reproduction (dataset generation,
//! parameter initialization, negative sampling, VAE reparameterization noise,
//! task shuffling) draws from a [`SeededRng`], so a single `u64` seed pins
//! down an entire experiment run. The paper's significance test (§V-D) relies
//! on 30 independent train/test splits, which we realize as 30 seeds.
//!
//! The generator is an in-tree **xoshiro256++** (Blackman & Vigna, 2019)
//! seeded through **SplitMix64**, so the byte-for-byte stream is fixed by
//! this crate alone: no external dependency, no platform variation, and the
//! build works fully offline (see DESIGN.md §1, substitution table).

use crate::matrix::Matrix;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ core: 256 bits of state, period 2^256 - 1.
#[derive(Clone, Debug)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the 256-bit state via SplitMix64, per the
    /// reference implementation's seeding recommendation.
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A seeded random-number generator with the sampling helpers the
/// reproduction needs.
///
/// Wraps an in-tree xoshiro256++ so the algorithm is fixed regardless of
/// platform or toolchain.
pub struct SeededRng {
    inner: Xoshiro256pp,
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f32>,
}

impl SeededRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { inner: Xoshiro256pp::from_seed(seed), gauss_spare: None }
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// subsystems (e.g. "the generator for domain 2").
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        let base = self.inner.next_u64();
        SeededRng::new(base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(stream))
    }

    /// The next raw 64-bit output of the underlying generator.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Unbiased integer in `[0, n)` via Lemire's multiply-shift method with
    /// rejection (n must be non-zero).
    #[inline]
    fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits of the next output.
    pub fn uniform(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "SeededRng::gen_index: empty range");
        self.next_below(n as u64) as usize
    }

    /// Standard normal sample via the Box-Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box-Muller: u1 in (0,1] to avoid ln(0).
        let u1: f32 = (1.0 - self.uniform()).max(f32::MIN_POSITIVE);
        let u2: f32 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Matrix of i.i.d. standard normal samples.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.normal());
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Matrix of i.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.uniform_range(lo, hi));
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Fisher-Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (a uniform k-subset,
    /// order randomized).
    ///
    /// Uses Floyd's algorithm so cost is `O(k)` even for large `n`.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "SeededRng::sample_indices: k={k} exceeds n={n}");
        let mut chosen = Vec::with_capacity(k);
        // Floyd's algorithm: for j in n-k..n, pick t in [0, j]; insert t
        // unless already chosen, else insert j.
        for j in (n - k)..n {
            let t = self.next_below(j as u64 + 1) as usize;
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        self.shuffle(&mut chosen);
        chosen
    }

    /// Samples `k` distinct indices from `[0, n)` excluding those in
    /// `excluded` (which must be sorted). Used for the paper's
    /// "99 negative unobserved items per positive" protocol.
    ///
    /// # Panics
    /// Panics if fewer than `k` candidates remain.
    pub fn sample_indices_excluding(
        &mut self,
        n: usize,
        k: usize,
        excluded: &[usize],
    ) -> Vec<usize> {
        debug_assert!(excluded.windows(2).all(|w| w[0] < w[1]), "excluded must be sorted");
        let available = n - excluded.len();
        assert!(
            k <= available,
            "SeededRng::sample_indices_excluding: k={k} exceeds available={available}"
        );
        if excluded.is_empty() {
            return self.sample_indices(n, k);
        }
        // Rejection sampling is efficient while the exclusion set is small
        // relative to n (true for sparse interaction data); fall back to an
        // explicit candidate list otherwise.
        if excluded.len() * 4 < n {
            let mut out = Vec::with_capacity(k);
            let mut taken = std::collections::HashSet::with_capacity(k);
            while out.len() < k {
                let cand = self.next_below(n as u64) as usize;
                if excluded.binary_search(&cand).is_err() && taken.insert(cand) {
                    out.push(cand);
                }
            }
            out
        } else {
            let mut candidates: Vec<usize> =
                (0..n).filter(|i| excluded.binary_search(i).is_err()).collect();
            self.shuffle(&mut candidates);
            candidates.truncate(k);
            candidates
        }
    }

    /// Samples an index from an unnormalized weight distribution.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn categorical(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "SeededRng::categorical: empty weights");
        let total: f32 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "SeededRng::categorical: weights must sum to a positive finite value, got {total}"
        );
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4, "independent streams should rarely coincide");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SeededRng::new(7);
        let mut parent2 = SeededRng::new(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..16 {
            assert_eq!(c1.uniform().to_bits(), c2.uniform().to_bits());
        }
    }

    #[test]
    fn algorithm_reference_values_are_pinned() {
        // xoshiro256++ seeded via SplitMix64(0): the first outputs are a
        // fixed contract — any change to the in-tree generator is a
        // reproducibility break and must show up here.
        let mut rng = SeededRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| rng.inner.next_u64()).collect();
        let mut again = SeededRng::new(0);
        let repeat: Vec<u64> = (0..4).map(|_| again.inner.next_u64()).collect();
        assert_eq!(first, repeat);
        // SplitMix64(0) expands to a known state; spot-check the expansion.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SeededRng::new(99);
        for _ in 0..10_000 {
            let v = rng.uniform();
            assert!((0.0..1.0).contains(&v), "uniform out of range: {v}");
        }
    }

    #[test]
    fn gen_index_is_unbiased_enough() {
        let mut rng = SeededRng::new(8);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_index(5)] += 1;
        }
        for &c in &counts {
            let p = c as f32 / 50_000.0;
            assert!((p - 0.2).abs() < 0.02, "index frequency {p} too far from 0.2");
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(11);
        let n = 40_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SeededRng::new(5);
        for _ in 0..50 {
            let s = rng.sample_indices(100, 30);
            assert_eq!(s.len(), 30);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 30, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = SeededRng::new(9);
        let mut s = rng.sample_indices(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn exclusion_sampling_avoids_excluded() {
        let mut rng = SeededRng::new(13);
        let excluded = vec![0, 5, 9, 17, 42];
        for _ in 0..50 {
            let s = rng.sample_indices_excluding(100, 20, &excluded);
            assert_eq!(s.len(), 20);
            for &i in &s {
                assert!(excluded.binary_search(&i).is_err(), "sampled excluded index {i}");
            }
            let mut sorted = s;
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 20);
        }
    }

    #[test]
    fn exclusion_sampling_dense_exclusion_path() {
        let mut rng = SeededRng::new(14);
        // Exclude 8 of 10 -> forces the explicit candidate-list branch.
        let excluded = vec![0, 1, 2, 3, 4, 5, 6, 7];
        let s = rng.sample_indices_excluding(10, 2, &excluded);
        let mut sorted = s;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![8, 9]);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SeededRng::new(3);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[rng.categorical(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f32 / counts[0] as f32;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio} should approximate 3");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(21);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SeededRng::new(1);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }
}

//! Small statistical helpers shared across crates.
//!
//! These functions back the dataset-statistics tables (Tables I-II), the
//! diversity measurements of the augmentation block (§IV-B), and various
//! test assertions.

use crate::matrix::Matrix;

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Population variance of a slice (0 for slices with fewer than 2 elements).
pub fn variance(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation.
pub fn std_dev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

/// Pearson correlation of two equal-length slices.
///
/// Returns 0 when either side has zero variance.
///
/// # Panics
/// Panics if the lengths differ.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch {} vs {}", a.len(), b.len());
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let dx = (x - ma) as f64;
        let dy = (y - mb) as f64;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        (cov / (va.sqrt() * vb.sqrt())) as f32
    }
}

/// Cosine similarity of two equal-length slices (0 when either is all-zero).
///
/// # Panics
/// Panics if the lengths differ.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch {} vs {}", a.len(), b.len());
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += (x as f64) * (y as f64);
        na += (x as f64) * (x as f64);
        nb += (y as f64) * (y as f64);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na.sqrt() * nb.sqrt())) as f32
    }
}

/// Mean pairwise L2 distance between the rows of `m`.
///
/// Used to quantify the *diversity* of the k augmented rating vectors
/// produced by the k Dual-CVAE decoders (paper §IV-B / ablation §V-E):
/// a higher value means the generated preferences differ more across
/// source domains.
pub fn mean_pairwise_row_distance(m: &Matrix) -> f32 {
    let n = m.rows();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f32 = m
                .row(i)
                .iter()
                .zip(m.row(j).iter())
                .map(|(&a, &b)| (a - b).powi(2))
                .sum::<f32>()
                .sqrt();
            total += d as f64;
            pairs += 1;
        }
    }
    (total / pairs as f64) as f32
}

/// Sparsity of an interaction count: `1 - nnz / (rows * cols)`, as reported
/// in Tables I-II of the paper.
///
/// Returns 1 for an empty matrix shape. The result is clamped to `[0, 1]`:
/// an `nnz` exceeding the cell count (double-counted interactions, or a
/// caller passing per-row lists with duplicates) is a contract violation —
/// flagged by a `debug_assert` — but must not surface as a negative
/// "sparsity" in release reports.
pub fn sparsity(nnz: usize, rows: usize, cols: usize) -> f64 {
    let cells = rows as f64 * cols as f64;
    if cells == 0.0 {
        return 1.0;
    }
    debug_assert!(
        nnz as f64 <= cells,
        "stats::sparsity: nnz {nnz} exceeds {rows}x{cols} = {cells} cells"
    );
    (1.0 - nnz as f64 / cells).clamp(0.0, 1.0)
}

/// Indices that would sort `values` descending (ties broken by index for
/// determinism).
///
/// # Panics
/// Panics if any value is NaN.
pub fn argsort_desc(values: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b].partial_cmp(&values[a]).expect("argsort_desc: NaN value").then(a.cmp(&b))
    });
    idx
}

/// Indices of the `k` largest values, best first. Returns fewer when the
/// slice is shorter than `k`.
pub fn topk_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx = argsort_desc(values);
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-5);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn pairwise_distance_identical_rows_is_zero() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(mean_pairwise_row_distance(&m), 0.0);
    }

    #[test]
    fn pairwise_distance_known_value() {
        // Rows (0,0) and (3,4): distance 5. Single pair.
        let m = Matrix::from_vec(2, 2, vec![0.0, 0.0, 3.0, 4.0]);
        assert!((mean_pairwise_row_distance(&m) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn pairwise_distance_single_row_is_zero() {
        let m = Matrix::from_vec(1, 4, vec![1.0; 4]);
        assert_eq!(mean_pairwise_row_distance(&m), 0.0);
    }

    #[test]
    fn sparsity_matches_paper_form() {
        // 100 ratings in a 100x100 matrix -> 99% sparse.
        assert!((sparsity(100, 100, 100) - 0.99).abs() < 1e-12);
        assert_eq!(sparsity(0, 0, 10), 1.0);
    }

    #[test]
    fn sparsity_handles_degenerate_shapes() {
        // Every empty shape is fully sparse, regardless of which side is 0.
        assert_eq!(sparsity(0, 10, 0), 1.0);
        assert_eq!(sparsity(0, 0, 0), 1.0);
        assert_eq!(sparsity(7, 0, 0), 1.0, "nnz with no cells still reports 1");
        // Saturated and empty matrices hit the exact bounds.
        assert_eq!(sparsity(50, 5, 10), 0.0);
        assert_eq!(sparsity(0, 5, 10), 1.0);
        // Huge shapes must not overflow into garbage: stays within [0, 1].
        let s = sparsity(usize::MAX / 2, usize::MAX / 2, 2);
        assert!((0.0..=1.0).contains(&s));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds")]
    fn sparsity_flags_overfull_counts_in_debug() {
        let _ = sparsity(51, 5, 10);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn sparsity_clamps_overfull_counts_in_release() {
        // nnz > cells is a caller bug, but release builds must clamp
        // instead of reporting a negative sparsity.
        assert_eq!(sparsity(51, 5, 10), 0.0);
        assert_eq!(sparsity(usize::MAX, 2, 2), 0.0);
    }

    #[test]
    fn argsort_desc_orders_and_breaks_ties_by_index() {
        let v = [1.0f32, 3.0, 2.0, 3.0];
        assert_eq!(argsort_desc(&v), vec![1, 3, 2, 0]);
        assert!(argsort_desc(&[]).is_empty());
    }

    #[test]
    fn topk_truncates_and_handles_short_slices() {
        let v = [0.1f32, 0.9, 0.5];
        assert_eq!(topk_indices(&v, 2), vec![1, 2]);
        assert_eq!(topk_indices(&v, 10), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn argsort_rejects_nan() {
        let _ = argsort_desc(&[0.0, f32::NAN]);
    }
}

//! Laptop-scale presets mirroring the paper's Amazon setup (Tables I-II).
//!
//! The paper uses Electronics, Movies and Music as source domains and Books
//! and CDs as target domains. These presets reproduce the *relative*
//! structure at a scale a CPU can train in seconds per experiment:
//!
//! * **Books** is the large, long-tailed target; **CDs** is the small,
//!   sparse target on which the paper's baselines struggle (§V-B).
//! * **Movies** shares the most users with both targets, **Music** the
//!   fewest with Books — matching the ordering of Table I (37,387 Movies
//!   vs 1,952 Music shared users with Books; Music is relatively closer
//!   to CDs).
//! * Sparsity lands around 98-99% (the paper's 99.97-99.99% is unreachable
//!   at this scale while keeping ≥5-rating users, but the long tail and the
//!   cold-start populations the protocol needs are preserved).
//!
//! `scaled(f)` variants shrink or grow every population by a factor — the
//! scalability experiment (Fig. 6) sweeps item counts at 10%..100%.

use crate::config::{DomainConfig, WorldConfig};

/// Shared hyper-parameters of the synthetic space.
fn base(
    target: DomainConfig,
    sources: Vec<DomainConfig>,
    shared: Vec<usize>,
    seed: u64,
) -> WorldConfig {
    WorldConfig {
        latent_dim: 12,
        content_dim: 48,
        n_topics: 8,
        content_gap: 0.35,
        target,
        sources,
        shared_users: shared,
        seed,
    }
}

/// The three source-domain configs, at laptop scale.
fn source_domains() -> Vec<DomainConfig> {
    vec![
        DomainConfig::new("Electronics", 700, 500, 14.0),
        DomainConfig::new("Movies", 900, 450, 16.0),
        DomainConfig::new("Music", 250, 200, 10.0),
    ]
}

/// The Books world: the larger target domain with all three sources.
///
/// Shared-user ordering follows Table I: Movies > Electronics >> Music.
pub fn books_world(seed: u64) -> WorldConfig {
    base(DomainConfig::new("Books", 1000, 700, 9.0), source_domains(), vec![220, 300, 40], seed)
}

/// The CDs world: the smaller, sparser target with all three sources.
///
/// Shared-user ordering follows Table I: Movies > Electronics > Music, with
/// Music relatively closer to CDs than to Books.
pub fn cds_world(seed: u64) -> WorldConfig {
    base(DomainConfig::new("CDs", 400, 350, 6.0), source_domains(), vec![90, 140, 70], seed)
}

/// A miniature world for unit/integration tests: trains in well under a
/// second but still produces every cold-start population.
pub fn tiny_world(seed: u64) -> WorldConfig {
    base(
        DomainConfig::new("TinyTarget", 150, 100, 7.0),
        vec![
            DomainConfig::new("TinySourceA", 120, 80, 9.0),
            DomainConfig::new("TinySourceB", 100, 70, 8.0),
        ],
        vec![45, 35],
        seed,
    )
}

/// Books world with **only the item catalogues** scaled by `fraction`,
/// matching the paper's Fig. 6 protocol ("we choose items in Books
/// randomly with different percentages"): user counts stay fixed, so
/// Block 1's cost tracks the catalogue while Blocks 2-3 (whose networks
/// touch only content-width vectors per user) stay constant.
///
/// # Panics
/// Panics if `fraction` is not in `(0, 1]`.
pub fn books_world_items_scaled(seed: u64, fraction: f32) -> WorldConfig {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1], got {fraction}");
    let mut cfg = books_world(seed);
    let scale = |n: usize| ((n as f32 * fraction).round() as usize).max(30);
    cfg.target.n_items = scale(cfg.target.n_items);
    for s in &mut cfg.sources {
        s.n_items = scale(s.n_items);
    }
    let cap = (cfg.target.n_items as f32 / 4.0).max(2.0);
    cfg.target.mean_ratings_per_user = cfg.target.mean_ratings_per_user.min(cap);
    for s in &mut cfg.sources {
        let cap = (s.n_items as f32 / 4.0).max(2.0);
        s.mean_ratings_per_user = s.mean_ratings_per_user.min(cap);
    }
    cfg
}

/// Books world with the item catalogue (and proportionally the user base)
/// scaled by `fraction` — a whole-world shrink used by tests and smoke
/// runs (Fig. 6 itself uses [`books_world_items_scaled`]).
///
/// # Panics
/// Panics if `fraction` is not in `(0, 1]`.
pub fn books_world_scaled(seed: u64, fraction: f32) -> WorldConfig {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1], got {fraction}");
    let mut cfg = books_world(seed);
    let scale = |n: usize| ((n as f32 * fraction).round() as usize).max(30);
    cfg.target.n_items = scale(cfg.target.n_items);
    cfg.target.n_users = scale(cfg.target.n_users);
    for s in &mut cfg.sources {
        s.n_items = scale(s.n_items);
        s.n_users = scale(s.n_users);
    }
    for (shared, s) in cfg.shared_users.iter_mut().zip(cfg.sources.iter()) {
        *shared = ((*shared as f32 * fraction).round() as usize)
            .clamp(4, s.n_users.min(cfg.target.n_users));
    }
    // Keep density feasible after shrinking the catalogue.
    let cap = (cfg.target.n_items as f32 / 4.0).max(2.0);
    cfg.target.mean_ratings_per_user = cfg.target.mean_ratings_per_user.min(cap);
    for s in &mut cfg.sources {
        let cap = (s.n_items as f32 / 4.0).max(2.0);
        s.mean_ratings_per_user = s.mean_ratings_per_user.min(cap);
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_world;
    use crate::splits::{ScenarioKind, SplitConfig, Splitter};

    #[test]
    fn presets_validate() {
        books_world(1).validate();
        cds_world(1).validate();
        tiny_world(1).validate();
        for f in [0.1f32, 0.5, 1.0] {
            books_world_scaled(1, f).validate();
        }
    }

    #[test]
    fn shared_user_ordering_follows_table_one() {
        let b = books_world(1);
        // Movies (idx 1) > Electronics (idx 0) > Music (idx 2) for Books.
        assert!(b.shared_users[1] > b.shared_users[0]);
        assert!(b.shared_users[0] > b.shared_users[2]);
        let c = cds_world(1);
        // Music shares relatively more with CDs than with Books.
        let music_books = b.shared_users[2] as f32 / b.target.n_users as f32;
        let music_cds = c.shared_users[2] as f32 / c.target.n_users as f32;
        assert!(music_cds > music_books);
    }

    #[test]
    fn tiny_world_produces_all_cold_populations() {
        let w = generate_world(&tiny_world(3));
        let sp = Splitter::new(&w.target, SplitConfig::default());
        for kind in ScenarioKind::ALL {
            let s = sp.scenario(kind);
            assert!(!s.eval.is_empty(), "{kind:?} needs eval instances");
            assert!(!s.train_tasks.is_empty(), "{kind:?} needs training tasks");
        }
    }

    #[test]
    fn scaled_world_shrinks_monotonically() {
        let full = books_world_scaled(1, 1.0);
        let half = books_world_scaled(1, 0.5);
        let tenth = books_world_scaled(1, 0.1);
        assert!(half.target.n_items < full.target.n_items);
        assert!(tenth.target.n_items < half.target.n_items);
        assert_eq!(full.target.n_items, books_world(1).target.n_items);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn scaled_world_rejects_zero() {
        let _ = books_world_scaled(1, 0.0);
    }
}

//! Dataset statistics (Tables I and II of the paper).

use metadpa_tensor::stats::sparsity;

use crate::domain::{Domain, World};

/// Summary statistics for one domain, the columns of Tables I-II.
#[derive(Clone, Debug, PartialEq)]
pub struct DomainStats {
    /// Domain name.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of positive interactions.
    pub n_ratings: usize,
    /// `1 - ratings / (users * items)`.
    pub sparsity: f64,
}

/// Computes the Table-II style statistics of a domain.
pub fn domain_stats(domain: &Domain) -> DomainStats {
    let n_ratings = domain.n_ratings();
    DomainStats {
        name: domain.name.clone(),
        n_users: domain.n_users(),
        n_items: domain.n_items(),
        n_ratings,
        sparsity: sparsity(n_ratings, domain.n_users(), domain.n_items()),
    }
}

/// The Table-I style row for one source: shared-user count with the target
/// plus the source's own statistics.
#[derive(Clone, Debug)]
pub struct SourceStats {
    /// Source domain statistics.
    pub stats: DomainStats,
    /// Number of users shared with the target domain.
    pub shared_with_target: usize,
}

/// Computes per-source statistics for a world (Table I).
pub fn source_stats(world: &World) -> Vec<SourceStats> {
    world
        .sources
        .iter()
        .zip(world.shared_users.iter())
        .map(|(s, pairs)| SourceStats { stats: domain_stats(s), shared_with_target: pairs.len() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metadpa_tensor::Matrix;

    fn domain() -> Domain {
        Domain {
            name: "d".into(),
            interactions: vec![vec![0, 1], vec![2], vec![0, 1, 2]],
            user_content: Matrix::zeros(3, 4),
            item_content: Matrix::zeros(3, 4),
        }
    }

    #[test]
    fn stats_count_correctly() {
        let s = domain_stats(&domain());
        assert_eq!(s.n_users, 3);
        assert_eq!(s.n_items, 3);
        assert_eq!(s.n_ratings, 6);
        // 6 of 9 cells filled -> sparsity 1/3.
        assert!((s.sparsity - (1.0 - 6.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn source_stats_report_shared_counts() {
        let w = World {
            target: domain(),
            sources: vec![domain()],
            shared_users: vec![vec![(0, 1), (2, 0)]],
        };
        let ss = source_stats(&w);
        assert_eq!(ss.len(), 1);
        assert_eq!(ss[0].shared_with_target, 2);
        assert_eq!(ss[0].stats.n_ratings, 6);
    }
}

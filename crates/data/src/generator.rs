//! The SynthAmazon world generator.
//!
//! Generative model (see crate docs for the motivation of each mechanism):
//!
//! 1. Every *person* has a global latent taste `u ∈ R^d ~ N(0, I)`. A domain
//!    observes tastes through its own transform `M_dom` (a random linear
//!    map), so preference signal transfers across domains without being
//!    identical — exactly the domain-shared vs. domain-specific split the
//!    Dual-CVAE is designed to separate.
//! 2. Item latents `v_i ~ N(0, I)` and a Zipf-like popularity weight
//!    `(rank+1)^-skew` determine interaction probabilities: user `u` rates
//!    item `i` with weight `exp(α · uᵀ M_dom v_i) · pop_i`. Rating counts
//!    per user are log-normal, producing the long tail that yields genuine
//!    cold-start users and items under the ≥5-rating rule.
//! 3. Review content lives in a `content_dim`-dimensional bag-of-words
//!    space. Each domain has a topic model (`n_topics` rows over the
//!    vocabulary); an item's topic mixture is a softmax projection of its
//!    latent, and its content is the mixture-weighted topic blend plus
//!    `content_gap` noise. A user's content is the mean of their rated
//!    items' content plus gap noise — so content predicts preference
//!    imperfectly, the inconsistency the paper motivates augmentation with.

use metadpa_tensor::{Matrix, SeededRng};

use crate::config::{DomainConfig, WorldConfig};
use crate::domain::{Domain, World};

/// Sharpness of the affinity term in the interaction sampler. Larger values
/// make interactions more predictable from latents (easier transfer);
/// smaller values make them more popularity-driven.
const AFFINITY_SHARPNESS: f32 = 1.2;

/// Log-normal shape parameter for ratings-per-user counts.
const COUNT_SIGMA: f32 = 0.7;

/// Temperature of the latent-to-topic softmax.
const TOPIC_TEMPERATURE: f32 = 0.8;

/// Generates a full multi-domain world from a configuration.
///
/// Deterministic in `config.seed`: identical configurations produce
/// identical worlds.
///
/// # Panics
/// Panics if the configuration is invalid (see [`WorldConfig::validate`]).
pub fn generate_world(config: &WorldConfig) -> World {
    config.validate();
    let mut rng = SeededRng::new(config.seed);

    // ------------------------------------------------------------------
    // 1. People: latent tastes for target users, then per-source users
    //    with shared people copied from the target.
    // ------------------------------------------------------------------
    let mut latent_rng = rng.fork(1);
    let target_latents = latent_rng.normal_matrix(config.target.n_users, config.latent_dim);

    let mut shared_pairs: Vec<Vec<(usize, usize)>> = Vec::with_capacity(config.sources.len());
    let mut source_latents: Vec<Matrix> = Vec::with_capacity(config.sources.len());
    for (s_idx, (s_cfg, &n_shared)) in
        config.sources.iter().zip(config.shared_users.iter()).enumerate()
    {
        let mut pair_rng = rng.fork(100 + s_idx as u64);
        let shared_target = pair_rng.sample_indices(config.target.n_users, n_shared);
        let shared_source = pair_rng.sample_indices(s_cfg.n_users, n_shared);
        let pairs: Vec<(usize, usize)> =
            shared_source.iter().copied().zip(shared_target.iter().copied()).collect();

        let mut latents = pair_rng.normal_matrix(s_cfg.n_users, config.latent_dim);
        for &(su, tu) in &pairs {
            latents.row_mut(su).copy_from_slice(target_latents.row(tu));
        }
        shared_pairs.push(pairs);
        source_latents.push(latents);
    }

    // ------------------------------------------------------------------
    // 2. Materialize each domain.
    // ------------------------------------------------------------------
    let target = generate_domain(&config.target, &target_latents, config, &mut rng.fork(2));
    let sources: Vec<Domain> = config
        .sources
        .iter()
        .zip(source_latents.iter())
        .enumerate()
        .map(|(s_idx, (s_cfg, latents))| {
            generate_domain(s_cfg, latents, config, &mut rng.fork(200 + s_idx as u64))
        })
        .collect();

    let world = World { target, sources, shared_users: shared_pairs };
    world.validate();
    world
}

/// Materializes a single domain given its users' latent tastes.
fn generate_domain(
    cfg: &DomainConfig,
    user_latents: &Matrix,
    world_cfg: &WorldConfig,
    rng: &mut SeededRng,
) -> Domain {
    let d = world_cfg.latent_dim;
    let n_users = cfg.n_users;
    let n_items = cfg.n_items;

    // Domain transform and item latents.
    let transform = rng.normal_matrix(d, d).scale(1.0 / (d as f32).sqrt());
    let item_latents = rng.normal_matrix(n_items, d);

    // Zipf-like popularity, assigned to items in random order.
    let mut ranks: Vec<usize> = (0..n_items).collect();
    rng.shuffle(&mut ranks);
    let mut popularity = vec![0.0f32; n_items];
    for (rank, &item) in ranks.iter().enumerate() {
        popularity[item] = ((rank + 1) as f32).powf(-cfg.popularity_skew);
    }

    // Affinities: users x items through the domain transform.
    let projected = user_latents.matmul(&transform); // n_users x d
    let affinity = projected.matmul_nt(&item_latents); // n_users x n_items

    // Interactions.
    let max_count = (n_items / 3).max(1);
    let mut interactions: Vec<Vec<usize>> = Vec::with_capacity(n_users);
    for u in 0..n_users {
        // Log-normal count with mean ~ mean_ratings_per_user.
        let z = rng.normal();
        let raw =
            cfg.mean_ratings_per_user * (COUNT_SIGMA * z - COUNT_SIGMA * COUNT_SIGMA / 2.0).exp();
        let count = (raw.round() as usize).clamp(1, max_count);

        // Sampling weights: exp(sharpness * normalized affinity) * popularity.
        let aff_row = affinity.row(u);
        let max_aff = aff_row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut weights: Vec<f32> = aff_row
            .iter()
            .zip(popularity.iter())
            .map(|(&a, &p)| (AFFINITY_SHARPNESS * (a - max_aff)).exp() * p)
            .collect();

        // Sample `count` distinct items by categorical draws with removal.
        let mut chosen = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = rng.categorical(&weights);
            chosen.push(idx);
            weights[idx] = 0.0;
        }
        chosen.sort_unstable();
        interactions.push(chosen);
    }

    // ------------------------------------------------------------------
    // Content: domain topic model over the shared vocabulary space.
    // ------------------------------------------------------------------
    let topics = {
        // Positive, row-normalized topic-word distributions.
        let raw = rng.normal_matrix(world_cfg.n_topics, world_cfg.content_dim);
        let mut t = raw.map(|v| (v * 1.2).exp());
        for r in 0..t.rows() {
            let total: f32 = t.row(r).iter().sum();
            let inv = 1.0 / total;
            for v in t.row_mut(r).iter_mut() {
                *v *= inv;
            }
        }
        t
    };
    let topic_proj = rng.normal_matrix(d, world_cfg.n_topics).scale(1.0 / (d as f32).sqrt());

    // Item content: softmax(topic projection of latent) @ topics + gap noise.
    let item_topic_logits = item_latents.matmul(&topic_proj).scale(1.0 / TOPIC_TEMPERATURE);
    let item_mixtures = metadpa_softmax_rows(&item_topic_logits);
    let item_signal = item_mixtures.matmul(&topics);
    let item_content = blend_with_noise(&item_signal, world_cfg.content_gap, rng);

    // User content: mean of rated items' *signal* content + gap noise.
    let mut user_signal = Matrix::zeros(n_users, world_cfg.content_dim);
    for (u, items) in interactions.iter().enumerate() {
        let inv = 1.0 / items.len().max(1) as f32;
        for &i in items {
            let src = item_signal.row(i);
            for (dst, &v) in user_signal.row_mut(u).iter_mut().zip(src.iter()) {
                *dst += v * inv;
            }
        }
    }
    let user_content = blend_with_noise(&user_signal, world_cfg.content_gap, rng);

    Domain { name: cfg.name.clone(), interactions, user_content, item_content }
}

/// Row-wise softmax, local to the generator (avoids depending on
/// `metadpa-nn` from the data crate).
fn metadpa_softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            total += *v;
        }
        let inv = 1.0 / total;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Mixes a non-negative signal matrix with non-negative noise of matched
/// scale: `(1-gap) * signal + gap * noise`, then L2-normalizes each row.
/// Unit-norm rows keep content features at a scale where Xavier-initialized
/// encoders receive meaningful activations (L1 normalization over a
/// 48-word vocabulary would shrink entries to ~0.02 and starve every
/// content model of signal).
fn blend_with_noise(signal: &Matrix, gap: f32, rng: &mut SeededRng) -> Matrix {
    let noise = rng
        .uniform_matrix(signal.rows(), signal.cols(), 0.0, 1.0)
        .map(|v| v / signal.cols() as f32);
    let mut out = signal.zip_map(&noise, |s, n| (1.0 - gap) * s + gap * n);
    for r in 0..out.rows() {
        let norm: f32 = out.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for v in out.row_mut(r).iter_mut() {
                *v *= inv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DomainConfig;
    use metadpa_tensor::stats::pearson;

    fn small_config(seed: u64) -> WorldConfig {
        WorldConfig {
            latent_dim: 8,
            content_dim: 24,
            n_topics: 5,
            content_gap: 0.3,
            target: DomainConfig::new("T", 120, 80, 8.0),
            sources: vec![
                DomainConfig::new("S1", 100, 60, 10.0),
                DomainConfig::new("S2", 90, 70, 9.0),
            ],
            shared_users: vec![40, 30],
            seed,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_world(&small_config(7));
        let b = generate_world(&small_config(7));
        assert_eq!(a.target.interactions, b.target.interactions);
        assert_eq!(a.target.user_content, b.target.user_content);
        assert_eq!(a.shared_users, b.shared_users);
        assert_eq!(a.sources[1].interactions, b.sources[1].interactions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_world(&small_config(1));
        let b = generate_world(&small_config(2));
        assert_ne!(a.target.interactions, b.target.interactions);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = small_config(3);
        let w = generate_world(&cfg);
        assert_eq!(w.target.n_users(), 120);
        assert_eq!(w.target.n_items(), 80);
        assert_eq!(w.target.user_content.shape(), (120, 24));
        assert_eq!(w.target.item_content.shape(), (80, 24));
        assert_eq!(w.sources.len(), 2);
        assert_eq!(w.shared_users[0].len(), 40);
        assert_eq!(w.shared_users[1].len(), 30);
    }

    #[test]
    fn every_user_has_at_least_one_rating() {
        let w = generate_world(&small_config(4));
        for d in std::iter::once(&w.target).chain(w.sources.iter()) {
            assert!(d.interactions.iter().all(|v| !v.is_empty()), "{}", d.name);
        }
    }

    #[test]
    fn mean_rating_count_is_plausible() {
        let cfg = small_config(5);
        let w = generate_world(&cfg);
        let mean = w.target.n_ratings() as f32 / w.target.n_users() as f32;
        // Log-normal with clamping: allow generous tolerance.
        assert!((mean - 8.0).abs() < 3.0, "mean ratings {mean} should be near configured 8");
    }

    #[test]
    fn rating_counts_are_long_tailed() {
        // Some users should fall below the paper's 5-rating threshold
        // (cold users) and some should be well above it.
        let w = generate_world(&small_config(6));
        let cold = w.target.interactions.iter().filter(|v| v.len() < 5).count();
        let heavy = w.target.interactions.iter().filter(|v| v.len() >= 10).count();
        assert!(cold > 0, "need some cold-start users");
        assert!(heavy > 0, "need some heavy users");
    }

    #[test]
    fn popular_items_receive_more_ratings() {
        let w = generate_world(&small_config(8));
        let counts = w.target.item_rating_counts();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Top decile of items should hold a disproportionate share.
        let top = sorted.iter().take(counts.len() / 10).sum::<usize>() as f32;
        let total = sorted.iter().sum::<usize>() as f32;
        assert!(top / total > 0.2, "top-decile share {}", top / total);
    }

    #[test]
    fn shared_users_have_correlated_cross_domain_ratings() {
        // The transfer signal: a shared person's affinity pattern in the
        // source should predict their target pattern better than a random
        // user's. We compare item-content-projected rating profiles via the
        // latent-free proxy of common popularity-adjusted behaviour:
        // correlation of rating vectors is meaningless across different
        // catalogues, so instead check that the *content* of shared users
        // (driven by their shared latent) correlates across domains more
        // than for non-shared pairs.
        let w = generate_world(&small_config(9));
        let pairs = &w.shared_users[0];
        let src = &w.sources[0];
        let mut shared_corr = 0.0f32;
        for &(su, tu) in pairs {
            shared_corr += pearson(src.user_content.row(su), w.target.user_content.row(tu));
        }
        shared_corr /= pairs.len() as f32;

        let mut random_corr = 0.0f32;
        let mut n = 0;
        for (k, &(su, _)) in pairs.iter().enumerate() {
            let tu = (k * 7 + 3) % w.target.n_users();
            // Skip accidental true pairs.
            if pairs.iter().any(|&(s2, t2)| s2 == su && t2 == tu) {
                continue;
            }
            random_corr += pearson(src.user_content.row(su), w.target.user_content.row(tu));
            n += 1;
        }
        random_corr /= n as f32;
        assert!(
            shared_corr > random_corr,
            "shared users should correlate more: shared {shared_corr} vs random {random_corr}"
        );
    }

    #[test]
    fn content_rows_are_unit_l2_normalized() {
        let w = generate_world(&small_config(10));
        for r in 0..w.target.item_content.rows() {
            let norm: f32 = w.target.item_content.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "row {r} has norm {norm}");
        }
    }

    #[test]
    fn higher_content_gap_weakens_user_item_content_alignment() {
        let make = |gap: f32| {
            let mut cfg = small_config(11);
            cfg.content_gap = gap;
            generate_world(&cfg)
        };
        let aligned = make(0.0);
        let noisy = make(0.95);
        // Alignment proxy: cosine between a user's content and the mean
        // content of their rated items.
        let score = |w: &World| {
            let d = &w.target;
            let mut total = 0.0f32;
            for u in 0..d.n_users() {
                let items = &d.interactions[u];
                let mut mean_item = vec![0.0f32; d.item_content.cols()];
                for &i in items {
                    for (m, &v) in mean_item.iter_mut().zip(d.item_content.row(i)) {
                        *m += v / items.len() as f32;
                    }
                }
                total += metadpa_tensor::stats::cosine(d.user_content.row(u), &mean_item);
            }
            total / d.n_users() as f32
        };
        assert!(
            score(&aligned) > score(&noisy),
            "gap=0 alignment {} should beat gap=0.95 {}",
            score(&aligned),
            score(&noisy)
        );
    }
}

//! Meta-learning tasks and evaluation instances.
//!
//! Following §III-B of the paper, a *task* is one user's preference over
//! items, split into a support set (for the MAML inner update / cold-start
//! fine-tuning) and a query set (for the outer update / testing). Labels are
//! `f32` because augmented tasks (Eq. 10) carry *continuous* generated
//! ratings in `[0, 1]`, not just the binary originals.

/// One user-preference task: `(item, label)` pairs split into support and
/// query sets (paper Eq. 12).
#[derive(Clone, Debug, PartialEq)]
pub struct Task {
    /// The target-domain user this task belongs to.
    pub user: usize,
    /// Support set: `(item, label)` pairs used for the local/inner update.
    pub support: Vec<(usize, f32)>,
    /// Query set: `(item, label)` pairs used for the global/outer update.
    pub query: Vec<(usize, f32)>,
}

impl Task {
    /// Total number of labelled examples in the task.
    pub fn len(&self) -> usize {
        self.support.len() + self.query.len()
    }

    /// True when both sets are empty.
    pub fn is_empty(&self) -> bool {
        self.support.is_empty() && self.query.is_empty()
    }

    /// Returns a copy with the labels of both sets replaced by
    /// `new_labels`, which must be keyed by item id. Used to build the
    /// augmented tasks of Eq. 10 (same items/content, generated ratings).
    ///
    /// # Panics
    /// Panics if `new_labels` is shorter than the largest referenced item.
    pub fn with_labels_from(&self, new_labels: &[f32]) -> Task {
        let relabel = |pairs: &[(usize, f32)]| {
            pairs
                .iter()
                .map(|&(item, _)| {
                    assert!(
                        item < new_labels.len(),
                        "with_labels_from: item {item} beyond label vector of {}",
                        new_labels.len()
                    );
                    (item, new_labels[item])
                })
                .collect()
        };
        Task { user: self.user, support: relabel(&self.support), query: relabel(&self.query) }
    }
}

/// One leave-one-out evaluation instance: a held-out positive ranked
/// against sampled negatives (99 in the paper's protocol).
#[derive(Clone, Debug, PartialEq)]
pub struct EvalInstance {
    /// The user under evaluation.
    pub user: usize,
    /// The held-out positive item.
    pub positive: usize,
    /// The sampled unobserved negatives.
    pub negatives: Vec<usize>,
}

impl EvalInstance {
    /// All candidate items: the positive followed by the negatives.
    pub fn candidates(&self) -> Vec<usize> {
        let mut c = Vec::with_capacity(1 + self.negatives.len());
        c.push(self.positive);
        c.extend_from_slice(&self.negatives);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_len_counts_both_sets() {
        let t = Task { user: 0, support: vec![(1, 1.0), (2, 0.0)], query: vec![(3, 1.0)] };
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn relabelling_preserves_items() {
        let t = Task { user: 5, support: vec![(0, 1.0), (2, 0.0)], query: vec![(1, 1.0)] };
        let labels = vec![0.9, 0.1, 0.4];
        let aug = t.with_labels_from(&labels);
        assert_eq!(aug.user, 5);
        assert_eq!(aug.support, vec![(0, 0.9), (2, 0.4)]);
        assert_eq!(aug.query, vec![(1, 0.1)]);
    }

    #[test]
    #[should_panic(expected = "beyond label vector")]
    fn relabelling_rejects_short_labels() {
        let t = Task { user: 0, support: vec![(10, 1.0)], query: vec![] };
        let _ = t.with_labels_from(&[0.5]);
    }

    #[test]
    fn candidates_lead_with_positive() {
        let e = EvalInstance { user: 1, positive: 7, negatives: vec![3, 4] };
        assert_eq!(e.candidates(), vec![7, 3, 4]);
    }
}

//! Chunked streaming SynthAmazon generation for million-user catalogues.
//!
//! [`generate_world`](crate::generate_world) materializes a dense
//! `n_users x n_items` affinity matrix before sampling interactions. That is
//! the right trade for the paper-scale worlds the training pipeline consumes
//! (hundreds of users), but it caps the generator well below realistic
//! catalogue sizes: at 1M users x 100k items the affinity matrix alone would
//! be 400 GB. This module generates the same *family* of worlds one
//! user-chunk at a time with O(n_items + chunk) peak memory:
//!
//! * Item-side state (latents, Zipf popularity CDF, topic model, content) is
//!   precomputed once — O(n_items · dim) floats.
//! * Each user draws from their own RNG stream derived purely from
//!   `(seed, user index)`, so the output is **bit-identical for every chunk
//!   size** — chunking is a memory decision, not a statistical one.
//! * Interactions are sampled by proposal/acceptance instead of a dense
//!   affinity row: propose an item from the popularity CDF (binary search),
//!   accept with probability `sigmoid(α · uᵀ M v_i)`. The stationary
//!   distribution is `pop_i · σ(α a_i)` — the same popularity-times-affinity
//!   tilt as the dense sampler's `pop_i · exp(α (a_i - max))` weights, at
//!   O(d) per candidate instead of O(n_items) per draw.
//! * Chunks emit interactions as binary [`CsrMatrix`] blocks; nothing dense
//!   of width `n_items` is ever allocated per user.

use metadpa_tensor::{CsrBuilder, CsrMatrix, Matrix, SeededRng};

use crate::config::DomainConfig;
use crate::domain::Domain;

/// Sharpness of the affinity tilt, matching the dense generator.
const AFFINITY_SHARPNESS: f32 = 1.2;

/// Log-normal shape parameter for ratings-per-user counts, matching the
/// dense generator.
const COUNT_SIGMA: f32 = 0.7;

/// Temperature of the latent-to-topic softmax, matching the dense generator.
const TOPIC_TEMPERATURE: f32 = 0.8;

/// Proposal attempts per interaction slot before the deterministic
/// linear-probe fallback kicks in. High-affinity users accept on the first
/// or second proposal; the fallback only matters for tiny catalogues where
/// a user rates a large fraction of all items.
const MAX_PROPOSALS: usize = 64;

/// Configuration for one streamed domain.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// The domain's population/catalogue/popularity parameters.
    pub domain: DomainConfig,
    /// Dimensionality of the latent taste space.
    pub latent_dim: usize,
    /// Dimensionality of the content (bag-of-words) space.
    pub content_dim: usize,
    /// Number of latent review topics.
    pub n_topics: usize,
    /// Content/preference inconsistency in `[0, 1]` (see
    /// [`WorldConfig::content_gap`](crate::WorldConfig)).
    pub content_gap: f32,
    /// Users per emitted chunk. Purely a memory knob: any value produces
    /// bit-identical users.
    pub chunk_users: usize,
    /// Master seed.
    pub seed: u64,
}

impl StreamConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on structurally invalid values.
    pub fn validate(&self) {
        self.domain.validate();
        assert!(self.latent_dim > 0, "latent_dim must be positive");
        assert!(self.content_dim > 0, "content_dim must be positive");
        assert!(self.n_topics > 0, "n_topics must be positive");
        assert!(
            (0.0..=1.0).contains(&self.content_gap),
            "content_gap must be in [0, 1], got {}",
            self.content_gap
        );
        assert!(self.chunk_users > 0, "chunk_users must be positive");
        assert!(
            self.domain.n_items <= u32::MAX as usize,
            "streamed catalogues are limited to u32 item ids"
        );
    }
}

/// One emitted block of users.
#[derive(Clone, Debug)]
pub struct UserChunk {
    /// Global index of the first user in this chunk.
    pub start_user: usize,
    /// Binary `chunk_rows x n_items` interaction block.
    pub interactions: CsrMatrix,
    /// `chunk_rows x content_dim` user review-content embeddings
    /// (unit-L2 rows, like the dense generator's).
    pub user_content: Matrix,
}

impl UserChunk {
    /// Number of users in this chunk.
    pub fn n_users(&self) -> usize {
        self.interactions.rows()
    }
}

/// Streaming single-domain generator. Construct with
/// [`StreamingDomainGenerator::new`], then pull chunks via the [`Iterator`]
/// impl (or [`next_chunk`](StreamingDomainGenerator::next_chunk)).
pub struct StreamingDomainGenerator {
    cfg: StreamConfig,
    /// Domain taste transform, `d x d`.
    transform: Matrix,
    /// Item latents, `n_items x d`.
    item_latents: Matrix,
    /// Cumulative popularity distribution; `cdf[i]` is the probability mass
    /// at or below item `i`, ending at 1.0.
    pop_cdf: Vec<f32>,
    /// Noise-free item content signal, `n_items x content_dim` (user content
    /// is a mean over these rows, as in the dense generator).
    item_signal: Matrix,
    /// Observed item content (signal + gap noise, unit-L2 rows).
    item_content: Matrix,
    next_user: usize,
}

impl StreamingDomainGenerator {
    /// Precomputes all item-side state (O(`n_items` · dim) memory) and
    /// positions the stream at user 0.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: StreamConfig) -> Self {
        cfg.validate();
        let d = cfg.latent_dim;
        let n_items = cfg.domain.n_items;

        // Item-side streams fork off the master seed exactly once, in a
        // fixed order; per-user streams never touch this RNG (see
        // `user_rng`), which is what makes chunk boundaries invisible.
        let mut rng = SeededRng::new(cfg.seed);
        let mut item_rng = rng.fork(1);

        let transform = item_rng.normal_matrix(d, d).scale(1.0 / (d as f32).sqrt());
        let item_latents = item_rng.normal_matrix(n_items, d);

        // Zipf popularity over a shuffled rank assignment, folded into a
        // prefix-sum CDF so proposals are a binary search.
        let mut ranks: Vec<usize> = (0..n_items).collect();
        item_rng.shuffle(&mut ranks);
        let mut weights = vec![0.0f32; n_items];
        for (rank, &item) in ranks.iter().enumerate() {
            weights[item] = ((rank + 1) as f32).powf(-cfg.domain.popularity_skew);
        }
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        let mut acc = 0.0f64;
        let mut pop_cdf = Vec::with_capacity(n_items);
        for &w in &weights {
            acc += w as f64 / total;
            pop_cdf.push(acc as f32);
        }
        if let Some(last) = pop_cdf.last_mut() {
            *last = 1.0;
        }

        // Topic model and item content, mirroring the dense generator.
        let topics = {
            let raw = item_rng.normal_matrix(cfg.n_topics, cfg.content_dim);
            let mut t = raw.map(|v| (v * 1.2).exp());
            for r in 0..t.rows() {
                let inv = 1.0 / t.row(r).iter().sum::<f32>();
                for v in t.row_mut(r).iter_mut() {
                    *v *= inv;
                }
            }
            t
        };
        let topic_proj = item_rng.normal_matrix(d, cfg.n_topics).scale(1.0 / (d as f32).sqrt());
        let item_topic_logits = item_latents.matmul(&topic_proj).scale(1.0 / TOPIC_TEMPERATURE);
        let item_mixtures = softmax_rows(&item_topic_logits);
        let item_signal = item_mixtures.matmul(&topics);
        let mut item_content = item_signal.clone();
        for r in 0..item_content.rows() {
            blend_row_with_noise(item_content.row_mut(r), cfg.content_gap, &mut item_rng);
        }

        Self { cfg, transform, item_latents, pop_cdf, item_signal, item_content, next_user: 0 }
    }

    /// The streamed configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Observed item content for the whole catalogue
    /// (`n_items x content_dim`, unit-L2 rows).
    pub fn item_content(&self) -> &Matrix {
        &self.item_content
    }

    /// Users emitted so far.
    pub fn users_emitted(&self) -> usize {
        self.next_user
    }

    /// Generates the next chunk of up to `chunk_users` users, or `None` once
    /// every user has been emitted.
    pub fn next_chunk(&mut self) -> Option<UserChunk> {
        let n_users = self.cfg.domain.n_users;
        if self.next_user >= n_users {
            return None;
        }
        let start = self.next_user;
        let end = (start + self.cfg.chunk_users).min(n_users);
        self.next_user = end;

        let d = self.cfg.latent_dim;
        let n_items = self.cfg.domain.n_items;
        let max_count = (n_items / 3).max(1);

        let mut builder = CsrBuilder::new(n_items);
        let mut user_content = Matrix::zeros(end - start, self.cfg.content_dim);
        let mut latent = vec![0.0f32; d];
        let mut projected = vec![0.0f32; d];
        let mut chosen: Vec<usize> = Vec::new();

        for u in start..end {
            let mut rng = user_rng(self.cfg.seed, u);

            // Latent taste and its domain projection (uᵀ M, O(d²)).
            for l in latent.iter_mut() {
                *l = rng.normal();
            }
            projected.fill(0.0);
            for (k, &lk) in latent.iter().enumerate() {
                for (p, &t) in projected.iter_mut().zip(self.transform.row(k)) {
                    *p += lk * t;
                }
            }

            // Log-normal rating count, same law as the dense generator.
            let z = rng.normal();
            let raw = self.cfg.domain.mean_ratings_per_user
                * (COUNT_SIGMA * z - COUNT_SIGMA * COUNT_SIGMA / 2.0).exp();
            let count = (raw.round() as usize).clamp(1, max_count);

            // Popularity-proposal / affinity-acceptance sampling without
            // replacement. `chosen` stays sorted so the dedup check and the
            // final CSR push are both cheap.
            chosen.clear();
            for _ in 0..count {
                let mut picked = None;
                for _ in 0..MAX_PROPOSALS {
                    let x = rng.uniform();
                    let item = self.pop_cdf.partition_point(|&c| c <= x).min(n_items - 1);
                    if chosen.binary_search(&item).is_ok() {
                        continue;
                    }
                    let affinity: f32 = projected
                        .iter()
                        .zip(self.item_latents.row(item))
                        .map(|(&p, &v)| p * v)
                        .sum();
                    if rng.uniform() < sigmoid(AFFINITY_SHARPNESS * affinity) {
                        picked = Some(item);
                        break;
                    }
                }
                // Deterministic fallback for near-saturated users: probe
                // upward from a popularity proposal for the first free item.
                let item = picked.unwrap_or_else(|| {
                    let x = rng.uniform();
                    let mut probe = self.pop_cdf.partition_point(|&c| c <= x).min(n_items - 1);
                    while chosen.binary_search(&probe).is_ok() {
                        probe = (probe + 1) % n_items;
                    }
                    probe
                });
                let slot = chosen.binary_search(&item).unwrap_err();
                chosen.insert(slot, item);
            }
            builder.push_row(&chosen);

            // Content: mean of rated items' signal rows, then per-user gap
            // noise + L2 normalization — the per-row form of the dense
            // generator's `blend_with_noise`.
            let row = user_content.row_mut(u - start);
            let inv = 1.0 / chosen.len().max(1) as f32;
            for &i in &chosen {
                for (dst, &v) in row.iter_mut().zip(self.item_signal.row(i)) {
                    *dst += v * inv;
                }
            }
            blend_row_with_noise(row, self.cfg.content_gap, &mut rng);
        }

        Some(UserChunk { start_user: start, interactions: builder.finish(), user_content })
    }

    /// Drains the stream into a materialized [`Domain`]. Convenience for
    /// tests and paper-scale shapes — at million-user scale, consume chunks
    /// instead.
    pub fn collect_domain(mut self) -> Domain {
        let n_users = self.cfg.domain.n_users;
        let mut interactions: Vec<Vec<usize>> = Vec::with_capacity(n_users);
        let mut user_content = Matrix::zeros(n_users, self.cfg.content_dim);
        while let Some(chunk) = self.next_chunk() {
            for r in 0..chunk.n_users() {
                interactions
                    .push(chunk.interactions.row_indices(r).iter().map(|&c| c as usize).collect());
                user_content
                    .row_mut(chunk.start_user + r)
                    .copy_from_slice(chunk.user_content.row(r));
            }
        }
        let domain = Domain {
            name: self.cfg.domain.name.clone(),
            interactions,
            user_content,
            item_content: self.item_content,
        };
        domain.validate();
        domain
    }
}

impl Iterator for StreamingDomainGenerator {
    type Item = UserChunk;

    fn next(&mut self) -> Option<UserChunk> {
        self.next_chunk()
    }
}

/// Per-user RNG derived purely from `(seed, user)` via a SplitMix64
/// finalizer. Because no state is shared between users, user `u`'s draws are
/// identical whether the stream is pulled in chunks of 1 or 1M.
fn user_rng(seed: u64, user: usize) -> SeededRng {
    let mut z = seed ^ (user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    SeededRng::new(z ^ (z >> 31))
}

/// Logistic acceptance curve for the affinity tilt.
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Row-wise softmax (same as the dense generator's local helper).
fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            total += *v;
        }
        let inv = 1.0 / total;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// In-place single-row form of the dense generator's `blend_with_noise`:
/// `(1-gap) * signal + gap * noise` with `noise ~ U[0,1)/cols`, then L2
/// normalization.
fn blend_row_with_noise(row: &mut [f32], gap: f32, rng: &mut SeededRng) {
    let inv_cols = 1.0 / row.len() as f32;
    for v in row.iter_mut() {
        let noise = rng.uniform() * inv_cols;
        *v = (1.0 - gap) * *v + gap * noise;
    }
    let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 0.0 {
        let inv = 1.0 / norm;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64, chunk_users: usize) -> StreamConfig {
        StreamConfig {
            domain: DomainConfig::new("stream", 150, 90, 8.0),
            latent_dim: 8,
            content_dim: 24,
            n_topics: 5,
            content_gap: 0.3,
            chunk_users,
            seed,
        }
    }

    #[test]
    fn chunked_output_is_bit_identical_across_chunk_sizes() {
        let whole = StreamingDomainGenerator::new(small_config(7, 150)).collect_domain();
        for chunk in [1usize, 7, 64, 1000] {
            let chunked = StreamingDomainGenerator::new(small_config(7, chunk)).collect_domain();
            assert_eq!(whole.interactions, chunked.interactions, "chunk size {chunk}");
            assert_eq!(whole.user_content, chunked.user_content, "chunk size {chunk}");
            assert_eq!(whole.item_content, chunked.item_content, "chunk size {chunk}");
        }
    }

    #[test]
    fn chunk_boundaries_and_shapes_line_up() {
        let mut gen = StreamingDomainGenerator::new(small_config(3, 40));
        let mut seen = 0usize;
        let mut sizes = Vec::new();
        while let Some(chunk) = gen.next_chunk() {
            assert_eq!(chunk.start_user, seen);
            assert_eq!(chunk.interactions.cols(), 90);
            assert!(chunk.interactions.is_binary());
            assert_eq!(chunk.user_content.shape(), (chunk.n_users(), 24));
            seen += chunk.n_users();
            sizes.push(chunk.n_users());
        }
        assert_eq!(seen, 150);
        assert_eq!(sizes, vec![40, 40, 40, 30]);
        assert_eq!(gen.users_emitted(), 150);
        assert!(gen.next_chunk().is_none(), "stream stays exhausted");
    }

    #[test]
    fn seeds_matter_and_generation_is_deterministic() {
        let a = StreamingDomainGenerator::new(small_config(1, 32)).collect_domain();
        let b = StreamingDomainGenerator::new(small_config(1, 32)).collect_domain();
        let c = StreamingDomainGenerator::new(small_config(2, 32)).collect_domain();
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.user_content, b.user_content);
        assert_ne!(a.interactions, c.interactions);
    }

    #[test]
    fn streamed_domain_has_dense_generator_statistics() {
        let d = StreamingDomainGenerator::new(small_config(11, 50)).collect_domain();
        assert!(d.interactions.iter().all(|v| !v.is_empty()), "every user rates something");

        let mean = d.n_ratings() as f32 / d.n_users() as f32;
        assert!((mean - 8.0).abs() < 3.0, "mean ratings {mean} should be near configured 8");

        let cold = d.interactions.iter().filter(|v| v.len() < 5).count();
        let heavy = d.interactions.iter().filter(|v| v.len() >= 10).count();
        assert!(cold > 0 && heavy > 0, "long tail: {cold} cold, {heavy} heavy");

        let counts = d.item_rating_counts();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top = sorted.iter().take(counts.len() / 10).sum::<usize>() as f32;
        assert!(
            top / d.n_ratings() as f32 > 0.2,
            "top-decile share {}",
            top / d.n_ratings() as f32
        );

        for r in 0..d.item_content.rows() {
            let norm: f32 = d.item_content.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "item row {r} has norm {norm}");
        }
        for r in 0..d.user_content.rows() {
            let norm: f32 = d.user_content.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "user row {r} has norm {norm}");
        }
    }

    #[test]
    fn saturated_catalogue_still_terminates() {
        // mean far above the count clamp forces the linear-probe fallback.
        let mut cfg = small_config(5, 16);
        cfg.domain = DomainConfig::new("dense", 30, 12, 3.9);
        let d = StreamingDomainGenerator::new(cfg).collect_domain();
        for items in &d.interactions {
            assert!(items.len() <= 4, "count clamp is n_items/3 = 4, got {}", items.len());
            assert!(items.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "chunk_users")]
    fn rejects_zero_chunk() {
        StreamConfig { chunk_users: 0, ..small_config(1, 1) }.validate();
    }
}

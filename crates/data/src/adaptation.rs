//! Shared-user data assembly for the multi-source domain-adaptation block.
//!
//! Phase 1 of the paper (§V-A1) trains one Dual-CVAE per (source, target)
//! pair on their *shared users*: each training example is one person's
//! dense rating vector and content embedding in both domains. The paper
//! discards users/items with too few positive ratings for this phase and
//! splits shared users 80/20 into train/eval.

use metadpa_tensor::{CsrBuilder, CsrMatrix, Matrix, SeededRng};

use crate::domain::{Domain, World};

/// The aligned shared-user tensors for one (source, target) pair.
#[derive(Clone, Debug)]
pub struct AdaptationPair {
    /// Source domain name (for reporting).
    pub source_name: String,
    /// `n_shared x n_source_items` binary rating matrix (`r_s`), stored
    /// sparse: at Amazon scale a dense copy of this pair alone would dwarf
    /// the model. Dense rows materialize only in per-batch workspaces via
    /// [`AdaptationPair::gather_ratings_into`].
    pub source_ratings: CsrMatrix,
    /// `n_shared x n_target_items` binary rating matrix (`r_t`), sparse
    /// like [`AdaptationPair::source_ratings`].
    pub target_ratings: CsrMatrix,
    /// `n_shared x content_dim` source-domain user content (`x_s`).
    pub source_content: Matrix,
    /// `n_shared x content_dim` target-domain user content (`x_t`).
    pub target_content: Matrix,
    /// Target-domain user ids of the shared users, aligned with rows.
    pub target_user_ids: Vec<usize>,
    /// Row indices used for adaptation training (80%).
    pub train_rows: Vec<usize>,
    /// Row indices held out for adaptation evaluation (20%).
    pub eval_rows: Vec<usize>,
}

impl AdaptationPair {
    /// Number of aligned shared users.
    pub fn n_shared(&self) -> usize {
        self.target_user_ids.len()
    }

    /// Gathers the training-row slices of all four tensors:
    /// `(r_s, r_t, x_s, x_t)`, densifying the rating rows. Allocates four
    /// fresh matrices — tests and one-shot callers only; the training loop
    /// batches through [`AdaptationPair::gather_ratings_into`] instead so
    /// no dense `n_shared x n_items` matrix ever exists.
    pub fn train_batch(&self) -> (Matrix, Matrix, Matrix, Matrix) {
        self.dense_batch(&self.train_rows)
    }

    /// Gathers the evaluation-row slices of all four tensors (the 20%
    /// held-out split — small by construction, so densifying is fine).
    pub fn eval_batch(&self) -> (Matrix, Matrix, Matrix, Matrix) {
        self.dense_batch(&self.eval_rows)
    }

    fn dense_batch(&self, rows: &[usize]) -> (Matrix, Matrix, Matrix, Matrix) {
        let mut r_s = Matrix::default();
        let mut r_t = Matrix::default();
        self.gather_ratings_into(rows, &mut r_s, &mut r_t);
        (r_s, r_t, self.source_content.gather_rows(rows), self.target_content.gather_rows(rows))
    }

    /// Densifies the selected shared-user rating rows into two reused
    /// `rows.len() x n_items` workspaces — the per-batch materialization
    /// point of the Dual-CVAE input path. Steady-state allocates nothing.
    pub fn gather_ratings_into(&self, rows: &[usize], r_s: &mut Matrix, r_t: &mut Matrix) {
        self.source_ratings.gather_rows_dense_into(rows, r_s);
        self.target_ratings.gather_rows_dense_into(rows, r_t);
    }
}

/// Configuration for adaptation-pair assembly.
#[derive(Clone, Copy, Debug)]
pub struct AdaptationConfig {
    /// Shared users with fewer than this many positives in *either* domain
    /// are dropped (the paper uses 20 at Amazon scale; presets use a value
    /// scaled to the synthetic world).
    pub min_positives: usize,
    /// Fraction of shared users assigned to the training split.
    pub train_fraction: f32,
    /// Seed for the split shuffle.
    pub seed: u64,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        Self { min_positives: 3, train_fraction: 0.8, seed: 0xADA7 }
    }
}

/// Builds one [`AdaptationPair`] per source domain in the world.
///
/// Pairs whose filtered shared-user set is smaller than 4 are returned
/// empty-rowed; callers should check [`AdaptationPair::n_shared`].
pub fn build_adaptation_pairs(world: &World, config: &AdaptationConfig) -> Vec<AdaptationPair> {
    assert!((0.0..=1.0).contains(&config.train_fraction), "train_fraction must be in [0, 1]");
    world
        .sources
        .iter()
        .zip(world.shared_users.iter())
        .enumerate()
        .map(|(idx, (source, pairs))| build_pair(source, &world.target, pairs, config, idx as u64))
        .collect()
}

fn build_pair(
    source: &Domain,
    target: &Domain,
    pairs: &[(usize, usize)],
    config: &AdaptationConfig,
    stream: u64,
) -> AdaptationPair {
    // Filter by minimum positive counts in both domains.
    let kept: Vec<(usize, usize)> = pairs
        .iter()
        .copied()
        .filter(|&(su, tu)| {
            source.interactions[su].len() >= config.min_positives
                && target.interactions[tu].len() >= config.min_positives
        })
        .collect();

    let n = kept.len();
    let mut source_builder = CsrBuilder::new(source.n_items());
    let mut target_builder = CsrBuilder::new(target.n_items());
    let mut source_content = Matrix::zeros(n, source.user_content.cols());
    let mut target_content = Matrix::zeros(n, target.user_content.cols());
    let mut target_user_ids = Vec::with_capacity(n);

    for (row, &(su, tu)) in kept.iter().enumerate() {
        source_builder.push_row(&source.interactions[su]);
        target_builder.push_row(&target.interactions[tu]);
        source_content.row_mut(row).copy_from_slice(source.user_content.row(su));
        target_content.row_mut(row).copy_from_slice(target.user_content.row(tu));
        target_user_ids.push(tu);
    }
    let source_ratings = source_builder.finish();
    let target_ratings = target_builder.finish();

    // 80/20 shuffle split.
    let mut rng = SeededRng::new(config.seed.wrapping_add(stream));
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let n_train = ((n as f32) * config.train_fraction).round() as usize;
    let n_train = n_train.min(n);
    let (train_rows, eval_rows) = order.split_at(n_train);

    AdaptationPair {
        source_name: source.name.clone(),
        source_ratings,
        target_ratings,
        source_content,
        target_content,
        target_user_ids,
        train_rows: train_rows.to_vec(),
        eval_rows: eval_rows.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DomainConfig, WorldConfig};
    use crate::generator::generate_world;

    fn world() -> World {
        generate_world(&WorldConfig {
            latent_dim: 8,
            content_dim: 24,
            n_topics: 5,
            content_gap: 0.3,
            target: DomainConfig::new("T", 150, 100, 9.0),
            sources: vec![
                DomainConfig::new("S1", 120, 80, 10.0),
                DomainConfig::new("S2", 100, 60, 8.0),
            ],
            shared_users: vec![40, 25],
            seed: 11,
        })
    }

    #[test]
    fn one_pair_per_source_with_consistent_shapes() {
        let w = world();
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        assert_eq!(pairs.len(), 2);
        for (p, src) in pairs.iter().zip(w.sources.iter()) {
            assert_eq!(p.source_name, src.name);
            assert_eq!(p.source_ratings.cols(), src.n_items());
            assert_eq!(p.target_ratings.cols(), w.target.n_items());
            assert_eq!(p.source_ratings.rows(), p.n_shared());
            assert_eq!(p.train_rows.len() + p.eval_rows.len(), p.n_shared());
        }
    }

    #[test]
    fn ratings_rows_match_interactions() {
        let w = world();
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        let p = &pairs[0];
        // Find the original pairing for row 0 via target_user_ids.
        let tu = p.target_user_ids[0];
        let mut row = vec![0.0f32; p.target_ratings.cols()];
        p.target_ratings.row_to_dense_into(0, &mut row);
        for (i, &v) in row.iter().enumerate() {
            let rated = w.target.has_interaction(tu, i);
            assert_eq!(v == 1.0, rated, "target item {i}");
        }
        assert_eq!(p.target_ratings.row_nnz(0), w.target.interactions[tu].len());
        assert!(p.target_ratings.is_binary(), "implicit feedback takes the binary fast path");
    }

    #[test]
    fn min_positives_filter_applies_to_both_sides() {
        let w = world();
        let cfg = AdaptationConfig { min_positives: 8, ..AdaptationConfig::default() };
        let pairs = build_adaptation_pairs(&w, &cfg);
        for p in &pairs {
            for row in 0..p.n_shared() {
                let s_pos = p.source_ratings.row_nnz(row);
                let t_pos = p.target_ratings.row_nnz(row);
                assert!(s_pos >= 8, "source positives {s_pos}");
                assert!(t_pos >= 8, "target positives {t_pos}");
            }
        }
    }

    #[test]
    fn split_is_disjoint_and_80_20() {
        let w = world();
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        for p in &pairs {
            let mut all: Vec<usize> =
                p.train_rows.iter().chain(p.eval_rows.iter()).copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), p.n_shared(), "rows must be disjoint and cover all");
            let frac = p.train_rows.len() as f32 / p.n_shared() as f32;
            assert!((frac - 0.8).abs() < 0.1, "train fraction {frac}");
        }
    }

    #[test]
    fn train_batch_gathers_expected_rows() {
        let w = world();
        let pairs = build_adaptation_pairs(&w, &AdaptationConfig::default());
        let p = &pairs[0];
        let (rs, rt, xs, xt) = p.train_batch();
        assert_eq!(rs.rows(), p.train_rows.len());
        assert_eq!(rt.rows(), p.train_rows.len());
        assert_eq!(xs.rows(), p.train_rows.len());
        assert_eq!(xt.rows(), p.train_rows.len());
        let mut expect = vec![0.0f32; p.source_ratings.cols()];
        p.source_ratings.row_to_dense_into(p.train_rows[0], &mut expect);
        assert_eq!(rs.row(0), &expect[..]);
        // The zero-alloc workspace gather agrees with the allocating path.
        let (mut ws_s, mut ws_t) = (Matrix::default(), Matrix::default());
        p.gather_ratings_into(&p.train_rows, &mut ws_s, &mut ws_t);
        assert_eq!(ws_s, rs);
        assert_eq!(ws_t, rt);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = world();
        let a = build_adaptation_pairs(&w, &AdaptationConfig::default());
        let b = build_adaptation_pairs(&w, &AdaptationConfig::default());
        assert_eq!(a[0].train_rows, b[0].train_rows);
        assert_eq!(a[1].eval_rows, b[1].eval_rows);
    }
}

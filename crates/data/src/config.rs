//! Configuration for the SynthAmazon world generator.

/// Parameters of one synthetic domain (a product category in the paper's
/// Amazon terms).
#[derive(Clone, Debug)]
pub struct DomainConfig {
    /// Human-readable domain name ("Books", "Electronics", ...).
    pub name: String,
    /// Number of users native to the domain.
    pub n_users: usize,
    /// Number of items in the domain's catalogue.
    pub n_items: usize,
    /// Mean of the (long-tailed) ratings-per-user distribution. Actual
    /// counts are sampled per user, so some users land below the
    /// existing-user threshold and become cold-start users.
    pub mean_ratings_per_user: f32,
    /// Popularity skew exponent: item base popularity follows
    /// `rank^-skew`. Higher values concentrate interactions on few items.
    pub popularity_skew: f32,
}

impl DomainConfig {
    /// Creates a domain config with the default popularity skew of 0.8.
    pub fn new(name: &str, n_users: usize, n_items: usize, mean_ratings_per_user: f32) -> Self {
        Self {
            name: name.to_string(),
            n_users,
            n_items,
            mean_ratings_per_user,
            popularity_skew: 0.8,
        }
    }

    /// Validates the configuration, panicking with a descriptive message on
    /// nonsense values.
    pub fn validate(&self) {
        assert!(self.n_users >= 2, "domain {}: need at least 2 users", self.name);
        assert!(self.n_items >= 10, "domain {}: need at least 10 items", self.name);
        assert!(
            self.mean_ratings_per_user >= 1.0,
            "domain {}: mean ratings per user must be >= 1",
            self.name
        );
        assert!(
            (self.mean_ratings_per_user as usize) < self.n_items,
            "domain {}: mean ratings per user must be below the catalogue size",
            self.name
        );
        assert!(self.popularity_skew >= 0.0, "domain {}: popularity skew must be >= 0", self.name);
    }
}

/// Parameters of the whole multi-domain world: one target domain plus k
/// source domains, with pairwise shared users.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Dimensionality of the global latent taste space.
    pub latent_dim: usize,
    /// Dimensionality of the bag-of-words content vectors (the "dense
    /// embedding" granularity of review text).
    pub content_dim: usize,
    /// Number of latent review topics per domain.
    pub n_topics: usize,
    /// Strength of the content/preference inconsistency in `[0, 1]`:
    /// 0 means content is a deterministic function of latent taste, 1 means
    /// content is pure noise. The paper's motivation (§I) corresponds to a
    /// middling value; presets use 0.35.
    pub content_gap: f32,
    /// The target domain (Books or CDs in the paper).
    pub target: DomainConfig,
    /// The k source domains.
    pub sources: Vec<DomainConfig>,
    /// Number of users shared between each source and the target
    /// (one entry per source; clamped to the smaller domain's user count).
    pub shared_users: Vec<usize>,
    /// Master seed for the generator.
    pub seed: u64,
}

impl WorldConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on structurally invalid configurations (mismatched lengths,
    /// zero dimensions, out-of-range gap).
    pub fn validate(&self) {
        assert!(self.latent_dim > 0, "latent_dim must be positive");
        assert!(self.content_dim > 0, "content_dim must be positive");
        assert!(self.n_topics > 0, "n_topics must be positive");
        assert!(
            (0.0..=1.0).contains(&self.content_gap),
            "content_gap must be in [0, 1], got {}",
            self.content_gap
        );
        assert_eq!(
            self.sources.len(),
            self.shared_users.len(),
            "shared_users must have one entry per source domain ({} vs {})",
            self.sources.len(),
            self.shared_users.len()
        );
        assert!(!self.sources.is_empty(), "need at least one source domain");
        self.target.validate();
        for s in &self.sources {
            s.validate();
        }
        for (s, &n) in self.sources.iter().zip(self.shared_users.iter()) {
            assert!(
                n <= s.n_users && n <= self.target.n_users,
                "shared users between {} and {} ({n}) exceed a domain's user count",
                s.name,
                self.target.name
            );
            assert!(n >= 2, "need at least 2 shared users between {} and target", s.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> WorldConfig {
        WorldConfig {
            latent_dim: 8,
            content_dim: 32,
            n_topics: 6,
            content_gap: 0.3,
            target: DomainConfig::new("T", 100, 80, 8.0),
            sources: vec![DomainConfig::new("S", 100, 60, 8.0)],
            shared_users: vec![30],
            seed: 1,
        }
    }

    #[test]
    fn valid_config_passes() {
        valid().validate();
    }

    #[test]
    #[should_panic(expected = "content_gap")]
    fn rejects_out_of_range_gap() {
        let mut c = valid();
        c.content_gap = 1.5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "one entry per source")]
    fn rejects_mismatched_shared_users() {
        let mut c = valid();
        c.shared_users = vec![];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "exceed a domain's user count")]
    fn rejects_too_many_shared_users() {
        let mut c = valid();
        c.shared_users = vec![1000];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "below the catalogue size")]
    fn rejects_dense_domain() {
        let mut c = valid();
        c.target.mean_ratings_per_user = 100.0;
        c.validate();
    }
}

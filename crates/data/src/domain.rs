//! The materialized dataset types produced by the generator.

use metadpa_tensor::{CsrMatrix, Matrix};

/// FNV-1a accumulator used by the structural fingerprints below.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100000001b3);
    }
}

/// One materialized domain: implicit-feedback interactions plus review
/// content for every user and item.
#[derive(Clone, Debug)]
pub struct Domain {
    /// Domain name.
    pub name: String,
    /// Per-user sorted item-id lists (the positive interactions). Implicit
    /// feedback: presence means `r_ui = 1`.
    pub interactions: Vec<Vec<usize>>,
    /// `n_users x content_dim` dense user review-content embeddings
    /// (the paper's `c_u`, a bag-of-words over the user's reviews).
    pub user_content: Matrix,
    /// `n_items x content_dim` dense item review-content embeddings
    /// (the paper's `c_i`).
    pub item_content: Matrix,
}

impl Domain {
    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.interactions.len()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.item_content.rows()
    }

    /// Total number of positive interactions.
    pub fn n_ratings(&self) -> usize {
        self.interactions.iter().map(Vec::len).sum()
    }

    /// True when user `u` has rated item `i`.
    pub fn has_interaction(&self, u: usize, i: usize) -> bool {
        self.interactions[u].binary_search(&i).is_ok()
    }

    /// Dense 0/1 rating vector of user `u` over the full catalogue
    /// (the CVAE input `r` of the paper). Allocates a fresh `1 x n_items`
    /// row — fine for tests and tiny catalogues; hot paths use
    /// [`Domain::rating_vector_into`] over a reused workspace instead.
    pub fn rating_vector(&self, u: usize) -> Matrix {
        let mut r = Matrix::default();
        self.rating_vector_into(u, &mut r);
        r
    }

    /// Zero-alloc variant of [`Domain::rating_vector`]: resizes `out` to
    /// `1 x n_items` in place (no allocation once it has reached capacity),
    /// zero-fills it, and scatters user `u`'s positives.
    pub fn rating_vector_into(&self, u: usize, out: &mut Matrix) {
        out.resize_for_overwrite(1, self.n_items());
        let row = out.row_mut(0);
        row.fill(0.0);
        for &item in &self.interactions[u] {
            row[item] = 1.0;
        }
    }

    /// The interactions as a binary CSR matrix (`n_users x n_items`,
    /// 4 bytes per interaction) — the sparse view the CVAE input path and
    /// the adaptation pairs consume. Built on demand in O(nnz); the
    /// per-user lists stay the storage of record.
    pub fn interactions_csr(&self) -> CsrMatrix {
        CsrMatrix::from_rows(self.n_items(), &self.interactions)
    }

    /// Number of ratings received by each item.
    pub fn item_rating_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_items()];
        for items in &self.interactions {
            for &i in items {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Structural fingerprint of this domain: an FNV-1a hash over the
    /// name, population sizes, rating count and content dimensionality.
    /// Two domains with the same fingerprint have compatible index spaces
    /// (same user/item/content ranges), which is what a serving artifact
    /// needs to check before answering by-id requests — it deliberately
    /// ignores the floating-point content values themselves.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        fnv1a(&mut h, self.name.as_bytes());
        for v in [
            self.n_users() as u64,
            self.n_items() as u64,
            self.n_ratings() as u64,
            self.user_content.cols() as u64,
            self.item_content.cols() as u64,
        ] {
            fnv1a(&mut h, &v.to_le_bytes());
        }
        h
    }

    /// Checks internal consistency (sorted, deduplicated, in-range
    /// interactions; matching matrix shapes). Used by tests and debug
    /// assertions.
    pub fn validate(&self) {
        assert_eq!(
            self.user_content.rows(),
            self.n_users(),
            "domain {}: user_content rows must match user count",
            self.name
        );
        for (u, items) in self.interactions.iter().enumerate() {
            assert!(
                items.windows(2).all(|w| w[0] < w[1]),
                "domain {}: user {u} interactions must be sorted and unique",
                self.name
            );
            if let Some(&last) = items.last() {
                assert!(
                    last < self.n_items(),
                    "domain {}: user {u} references item {last} beyond catalogue",
                    self.name
                );
            }
        }
    }
}

/// A full multi-domain world: the target domain, its k source domains, and
/// the shared-user alignment between each source and the target.
#[derive(Clone, Debug)]
pub struct World {
    /// The target domain (where recommendations are evaluated).
    pub target: Domain,
    /// The k source domains.
    pub sources: Vec<Domain>,
    /// For each source, the list of `(source_user, target_user)` index pairs
    /// referring to the same underlying person.
    pub shared_users: Vec<Vec<(usize, usize)>>,
}

impl World {
    /// Number of source domains.
    pub fn n_sources(&self) -> usize {
        self.sources.len()
    }

    /// Structural fingerprint of the whole world: the target's and every
    /// source's [`Domain::fingerprint`] plus the shared-user counts, FNV-1a
    /// combined. Exported model artifacts embed this so a server can refuse
    /// to pair an artifact with a dataset of a different shape.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.target.fingerprint();
        for (s, pairs) in self.sources.iter().zip(self.shared_users.iter()) {
            fnv1a(&mut h, &s.fingerprint().to_le_bytes());
            fnv1a(&mut h, &(pairs.len() as u64).to_le_bytes());
        }
        h
    }

    /// The fingerprint as the fixed-width hex string stored in artifacts.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Checks cross-domain consistency.
    pub fn validate(&self) {
        assert_eq!(self.sources.len(), self.shared_users.len());
        self.target.validate();
        for (s, pairs) in self.sources.iter().zip(self.shared_users.iter()) {
            s.validate();
            for &(su, tu) in pairs {
                assert!(su < s.n_users(), "shared source user {su} out of range in {}", s.name);
                assert!(tu < self.target.n_users(), "shared target user {tu} out of range");
            }
            // A person appears at most once per pairing.
            let mut src_ids: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            src_ids.sort_unstable();
            src_ids.dedup();
            assert_eq!(src_ids.len(), pairs.len(), "duplicate shared source users in {}", s.name);
            let mut tgt_ids: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            tgt_ids.sort_unstable();
            tgt_ids.dedup();
            assert_eq!(tgt_ids.len(), pairs.len(), "duplicate shared target users for {}", s.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_domain() -> Domain {
        Domain {
            name: "tiny".into(),
            interactions: vec![vec![0, 2], vec![1], vec![]],
            user_content: Matrix::zeros(3, 4),
            item_content: Matrix::zeros(3, 4),
        }
    }

    #[test]
    fn counts_and_lookup() {
        let d = tiny_domain();
        assert_eq!(d.n_users(), 3);
        assert_eq!(d.n_items(), 3);
        assert_eq!(d.n_ratings(), 3);
        assert!(d.has_interaction(0, 2));
        assert!(!d.has_interaction(0, 1));
        assert!(!d.has_interaction(2, 0));
    }

    #[test]
    fn rating_vector_is_dense_binary() {
        let d = tiny_domain();
        let r = d.rating_vector(0);
        assert_eq!(r.as_slice(), &[1.0, 0.0, 1.0]);
        let empty = d.rating_vector(2);
        assert_eq!(empty.sum(), 0.0);
    }

    #[test]
    fn rating_vector_into_reuses_workspace_and_matches_csr_view() {
        let d = tiny_domain();
        let mut ws = Matrix::default();
        d.rating_vector_into(0, &mut ws);
        assert_eq!(ws.as_slice(), &[1.0, 0.0, 1.0]);
        // Reuse with stale contents: the workspace must be fully rewritten.
        d.rating_vector_into(2, &mut ws);
        assert_eq!(ws.as_slice(), &[0.0, 0.0, 0.0]);

        let csr = d.interactions_csr();
        assert_eq!(csr.shape(), (3, 3));
        assert_eq!(csr.nnz(), d.n_ratings());
        assert!(csr.is_binary());
        for u in 0..d.n_users() {
            assert_eq!(csr.to_dense().row(u), d.rating_vector(u).as_slice(), "user {u}");
        }
    }

    #[test]
    fn item_rating_counts_sum_to_total() {
        let d = tiny_domain();
        let counts = d.item_rating_counts();
        assert_eq!(counts, vec![1, 1, 1]);
        assert_eq!(counts.iter().sum::<usize>(), d.n_ratings());
    }

    #[test]
    fn fingerprint_tracks_structure_not_values() {
        let d = tiny_domain();
        let mut same_shape = tiny_domain();
        same_shape.user_content.set(0, 0, 42.0);
        assert_eq!(d.fingerprint(), same_shape.fingerprint(), "content values are ignored");

        let mut renamed = tiny_domain();
        renamed.name = "other".into();
        assert_ne!(d.fingerprint(), renamed.fingerprint());

        let mut grown = tiny_domain();
        grown.interactions.push(vec![1]);
        grown.user_content = Matrix::zeros(4, 4);
        assert_ne!(d.fingerprint(), grown.fingerprint());

        let w = World { target: d, sources: vec![tiny_domain()], shared_users: vec![vec![(0, 1)]] };
        assert_eq!(w.fingerprint_hex().len(), 16);
        let w2 = World {
            target: tiny_domain(),
            sources: vec![tiny_domain()],
            shared_users: vec![vec![(0, 1), (1, 2)]],
        };
        assert_ne!(w.fingerprint(), w2.fingerprint(), "shared-user count is structural");
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn validate_rejects_unsorted_interactions() {
        let mut d = tiny_domain();
        d.interactions[0] = vec![2, 0];
        d.validate();
    }

    #[test]
    #[should_panic(expected = "beyond catalogue")]
    fn validate_rejects_out_of_range_item() {
        let mut d = tiny_domain();
        d.interactions[1] = vec![99];
        d.validate();
    }
}
